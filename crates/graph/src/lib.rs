//! # mdtw-graph
//!
//! Graphs for the *Monadic Datalog over Finite Structures with Bounded
//! Treewidth* reproduction: the input domain of the §5.1 3-Colorability
//! algorithm, bounded-treewidth generators (random partial k-trees,
//! decomposition-first as in the paper's §6 workloads), exact exponential
//! 3-coloring baselines and the τ = {e} structure encoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod encode;
pub mod generators;
#[allow(clippy::module_inception)]
mod graph;

pub use coloring::{
    is_proper_coloring, is_three_colorable_exact, three_color_backtracking, Coloring,
};
pub use encode::{encode_graph, graph_signature};
pub use generators::{complete, cycle, grid, partial_k_tree, path, petersen, wheel};
pub use graph::Graph;
