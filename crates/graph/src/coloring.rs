//! Exact 3-coloring baselines: the NP-complete problem the paper's §5.1
//! FPT algorithm is compared against.

use crate::graph::Graph;

/// A proper coloring: `colors[v] ∈ {0, 1, 2}`.
pub type Coloring = Vec<u8>;

/// True if `colors` is a proper coloring of `g` with colors `< palette`.
pub fn is_proper_coloring(g: &Graph, colors: &[u8], palette: u8) -> bool {
    if colors.len() != g.len() {
        return false;
    }
    if colors.iter().any(|&c| c >= palette) {
        return false;
    }
    g.edges()
        .iter()
        .all(|&(a, b)| colors[a as usize] != colors[b as usize])
}

/// Exact 3-colorability by backtracking with degree-ordered vertices.
/// Exponential in the worst case — this is the baseline against which the
/// linear FPT algorithm is benchmarked. Returns a witness coloring.
pub fn three_color_backtracking(g: &Graph) -> Option<Coloring> {
    let n = g.len();
    if n == 0 {
        return Some(Vec::new());
    }
    // Order vertices by decreasing degree (classic heuristic).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut colors: Vec<u8> = vec![u8::MAX; n];

    fn assign(g: &Graph, order: &[u32], pos: usize, colors: &mut Vec<u8>) -> bool {
        if pos == order.len() {
            return true;
        }
        let v = order[pos];
        // Symmetry breaking: the first vertex tries one color, the second
        // at most two.
        let limit = if pos == 0 {
            1
        } else if pos == 1 {
            2
        } else {
            3
        };
        'colors: for c in 0..limit {
            for &u in g.neighbors(v) {
                if colors[u as usize] == c {
                    continue 'colors;
                }
            }
            colors[v as usize] = c;
            if assign(g, order, pos + 1, colors) {
                return true;
            }
            colors[v as usize] = u8::MAX;
        }
        false
    }

    if assign(g, &order, 0, &mut colors) {
        debug_assert!(is_proper_coloring(g, &colors, 3));
        Some(colors)
    } else {
        None
    }
}

/// Decision form of [`three_color_backtracking`].
pub fn is_three_colorable_exact(g: &Graph) -> bool {
    three_color_backtracking(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, grid, path, petersen, wheel};

    #[test]
    fn known_yes_instances() {
        assert!(is_three_colorable_exact(&path(6)));
        assert!(is_three_colorable_exact(&cycle(5))); // odd cycle: 3 colors
        assert!(is_three_colorable_exact(&cycle(6)));
        assert!(is_three_colorable_exact(&grid(4, 4)));
        assert!(is_three_colorable_exact(&complete(3)));
        assert!(is_three_colorable_exact(&petersen()));
    }

    #[test]
    fn known_no_instances() {
        assert!(!is_three_colorable_exact(&complete(4)));
        // Odd wheel: hub + odd cycle needs 4 colors.
        assert!(!is_three_colorable_exact(&wheel(5)));
        assert!(!is_three_colorable_exact(&wheel(7)));
        // Even wheel is 3-colorable.
        assert!(is_three_colorable_exact(&wheel(6)));
    }

    #[test]
    fn witness_is_proper() {
        let g = petersen();
        let colors = three_color_backtracking(&g).unwrap();
        assert!(is_proper_coloring(&g, &colors, 3));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_three_colorable_exact(&Graph::new(0)));
        assert!(is_three_colorable_exact(&Graph::new(1)));
    }

    #[test]
    fn proper_coloring_validation() {
        let g = cycle(4);
        assert!(is_proper_coloring(&g, &[0, 1, 0, 1], 3));
        assert!(!is_proper_coloring(&g, &[0, 0, 1, 1], 3));
        assert!(!is_proper_coloring(&g, &[0, 1, 0], 3)); // wrong length
        assert!(!is_proper_coloring(&g, &[0, 3, 0, 1], 3)); // bad palette
    }
}
