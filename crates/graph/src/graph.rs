//! Simple undirected graphs (the input domain of the paper's §5.1
//! 3-Colorability algorithm).

use mdtw_structure::fx::FxHashSet;
use std::fmt;

/// An undirected graph on vertices `0..n`.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<u32>>,
    edges: FxHashSet<(u32, u32)>,
}

impl Graph {
    /// Creates an edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            adj: vec![Vec::new(); n],
            edges: FxHashSet::default(),
        }
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Self::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge; self-loops and duplicates are ignored.
    /// Returns `true` if the edge was new.
    pub fn add_edge(&mut self, a: u32, b: u32) -> bool {
        assert!(
            (a as usize) < self.n && (b as usize) < self.n,
            "edge ({a},{b}) outside vertex range 0..{}",
            self.n
        );
        if a == b {
            return false;
        }
        let key = (a.min(b), a.max(b));
        if !self.edges.insert(key) {
            return false;
        }
        self.adj[a as usize].push(b);
        self.adj[b as usize].push(a);
        true
    }

    /// Removes an edge if present; returns `true` if it existed.
    pub fn remove_edge(&mut self, a: u32, b: u32) -> bool {
        let key = (a.min(b), a.max(b));
        if !self.edges.remove(&key) {
            return false;
        }
        self.adj[a as usize].retain(|&x| x != b);
        self.adj[b as usize].retain(|&x| x != a);
        true
    }

    /// True if `{a, b}` is an edge.
    #[inline]
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Iterates over edges as `(min, max)` pairs, sorted.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = self.edges.iter().copied().collect();
        out.sort_unstable();
        out
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph: {} vertices, {} edges", self.n, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0)); // duplicate (undirected)
        assert!(!g.add_edge(2, 2)); // self-loop ignored
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn remove_edge() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    #[should_panic(expected = "outside vertex range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn edges_are_sorted_canonical() {
        let g = Graph::from_edges(4, &[(3, 2), (1, 0), (2, 1)]);
        assert_eq!(g.edges(), vec![(0, 1), (1, 2), (2, 3)]);
    }
}
