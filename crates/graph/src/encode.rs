//! Encoding graphs as τ-structures with τ = {e} (paper §5.1).

use crate::graph::Graph;
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use std::sync::Arc;

/// The signature τ = {e} with a binary edge relation.
pub fn graph_signature() -> Signature {
    Signature::from_pairs([("e", 2)])
}

/// Encodes an undirected graph: vertex `v` becomes element `v`, and each
/// edge contributes both `e(u, v)` and `e(v, u)` (the paper's MSO sentence
/// quantifies over ordered pairs, and symmetric storage keeps the datalog
/// programs free of orientation case splits).
pub fn encode_graph(g: &Graph) -> Structure {
    let sig = Arc::new(graph_signature());
    let dom = Domain::from_names((0..g.len()).map(|i| format!("v{i}")));
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    for (a, b) in g.edges() {
        s.insert(e, &[ElemId(a), ElemId(b)]);
        s.insert(e, &[ElemId(b), ElemId(a)]);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::cycle;
    use mdtw_decomp::{decompose, Heuristic};

    #[test]
    fn symmetric_encoding() {
        let g = cycle(4);
        let s = encode_graph(&g);
        let e = s.signature().lookup("e").unwrap();
        assert_eq!(s.relation(e).len(), 8);
        assert!(s.holds(e, &[ElemId(0), ElemId(1)]));
        assert!(s.holds(e, &[ElemId(1), ElemId(0)]));
        assert!(!s.holds(e, &[ElemId(0), ElemId(2)]));
    }

    #[test]
    fn heuristic_decomposition_of_cycle() {
        let g = cycle(8);
        let s = encode_graph(&g);
        let td = decompose(&s, Heuristic::MinDegree);
        assert_eq!(td.validate(&s), Ok(()));
        assert_eq!(td.width(), 2);
    }
}
