//! Graph families: fixed topologies for tests and random partial k-trees
//! (the canonical bounded-treewidth workload) for benchmarks.

use crate::graph::Graph;
use mdtw_decomp::TreeDecomposition;
use mdtw_structure::ElemId;
use rand::rngs::SmallRng;
use rand::Rng;

/// The cycle `C_n` (treewidth 2 for `n ≥ 3`).
pub fn cycle(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i as u32, ((i + 1) % n) as u32);
    }
    g
}

/// The path `P_n` (treewidth 1).
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n.saturating_sub(1) {
        g.add_edge(i as u32, i as u32 + 1);
    }
    g
}

/// The complete graph `K_n` (treewidth n−1; 3-colorable iff n ≤ 3).
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            g.add_edge(i, j);
        }
    }
    g
}

/// The `r × c` grid (treewidth min(r, c); always 2-colorable).
pub fn grid(r: usize, c: usize) -> Graph {
    let mut g = Graph::new(r * c);
    let id = |i: usize, j: usize| (i * c + j) as u32;
    for i in 0..r {
        for j in 0..c {
            if i + 1 < r {
                g.add_edge(id(i, j), id(i + 1, j));
            }
            if j + 1 < c {
                g.add_edge(id(i, j), id(i, j + 1));
            }
        }
    }
    g
}

/// The Petersen graph (3-chromatic, treewidth 4).
pub fn petersen() -> Graph {
    let mut g = Graph::new(10);
    for i in 0..5u32 {
        g.add_edge(i, (i + 1) % 5); // outer cycle
        g.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
        g.add_edge(i, 5 + i); // spokes
    }
    g
}

/// An odd wheel `W_n` (hub + odd cycle): not 3-colorable for odd `n ≥ 3`
/// is false — the wheel over an odd cycle needs 4 colors. Treewidth 3.
pub fn wheel(n: usize) -> Graph {
    let mut g = cycle(n);
    let mut out = Graph::new(n + 1);
    for (a, b) in g.edges() {
        out.add_edge(a, b);
    }
    for i in 0..n as u32 {
        out.add_edge(n as u32, i);
    }
    g = out;
    g
}

/// A random k-tree plus edge deletion: the classical generator of graphs
/// with treewidth ≤ k. Returns the graph together with the natural
/// width-k tree decomposition built during generation (decomposition-first,
/// like the paper's §6 workloads).
///
/// `keep_prob` is the probability of keeping each k-tree edge (1.0 gives
/// a full k-tree).
pub fn partial_k_tree(
    rng: &mut SmallRng,
    n: usize,
    k: usize,
    keep_prob: f64,
) -> (Graph, TreeDecomposition) {
    assert!(n > k, "need at least k+1 vertices");
    assert!(k >= 1);
    let mut g = Graph::new(n);
    // Seed clique on vertices 0..=k.
    for i in 0..=k as u32 {
        for j in i + 1..=k as u32 {
            g.add_edge(i, j);
        }
    }
    let seed_bag: Vec<ElemId> = (0..=k as u32).map(ElemId).collect();
    let mut td = TreeDecomposition::singleton(seed_bag.clone());
    // cliques[i] = (k-clique vertices, td node the clique lives in).
    let mut cliques: Vec<(Vec<u32>, mdtw_decomp::NodeId)> = Vec::new();
    for drop in 0..=k {
        let mut c: Vec<u32> = (0..=k as u32).collect();
        c.remove(drop);
        cliques.push((c, td.root()));
    }
    for v in (k + 1) as u32..n as u32 {
        let (clique, host) = cliques[rng.random_range(0..cliques.len())].clone();
        for &u in &clique {
            g.add_edge(v, u);
        }
        let mut bag: Vec<ElemId> = clique.iter().map(|&u| ElemId(u)).collect();
        bag.push(ElemId(v));
        let node = td.add_child(host, bag);
        // New k-cliques: {v} ∪ (clique ∖ {u}) for each u.
        for drop in 0..clique.len() {
            let mut c = clique.clone();
            c[drop] = v;
            c.sort_unstable();
            cliques.push((c, node));
        }
    }
    // Edge deletion preserves the decomposition's validity.
    if keep_prob < 1.0 {
        for (a, b) in g.edges() {
            if rng.random::<f64>() > keep_prob {
                g.remove_edge(a, b);
            }
        }
    }
    (g, td)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_graph;
    use rand::SeedableRng;

    #[test]
    fn fixed_families_have_expected_sizes() {
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(grid(3, 4).edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(petersen().edge_count(), 15);
        assert_eq!(wheel(5).edge_count(), 10);
    }

    #[test]
    fn partial_k_tree_decomposition_is_valid() {
        let mut rng = SmallRng::seed_from_u64(1);
        for (n, k, p) in [(8, 2, 1.0), (20, 3, 0.7), (30, 1, 0.5)] {
            let (g, td) = partial_k_tree(&mut rng, n, k, p);
            assert_eq!(g.len(), n);
            assert!(td.width() <= k);
            let enc = encode_graph(&g);
            assert_eq!(td.validate(&enc), Ok(()), "n={n} k={k} p={p}");
        }
    }

    #[test]
    fn full_k_tree_has_expected_edges() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (g, _) = partial_k_tree(&mut rng, 10, 2, 1.0);
        // k-tree edge count: C(k+1,2) + k*(n-k-1).
        assert_eq!(g.edge_count(), 3 + 2 * 7);
    }
}
