//! Scan vs. indexed joins: the ablation behind the indexed join engine.
//!
//! The same semi-naive fixpoint is computed by the pre-index engine
//! (`Engine::SemiNaiveScan`: nested-loop joins, full relation scans on
//! every body literal, one shared delta set) and the indexed engine
//! (`Engine::SemiNaiveIndexed`: greedy join plans probing
//! argument-position hash indexes, per-predicate delta relations,
//! textbook rule split). On the
//! transitive-closure chain the scan engine is superlinear in the chain
//! length per round while the indexed engine touches only matching tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdtw_datalog::{parse_program, Engine, EvalOptions, Evaluator, Program};
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn chain(n: usize) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2)]));
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    s
}

fn tc_linear(s: &Structure) -> Program {
    parse_program(
        "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).",
        s,
    )
    .unwrap()
}

fn tc_nonlinear(s: &Structure) -> Program {
    parse_program(
        "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).",
        s,
    )
    .unwrap()
}

fn bench_linear_tc(c: &mut Criterion) {
    let mut group = c.benchmark_group("join/linear_tc");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [200usize, 400, 800] {
        let s = chain(n);
        let p = tc_linear(&s);
        let mut scan =
            Evaluator::with_options(p.clone(), EvalOptions::new().engine(Engine::SemiNaiveScan))
                .expect("semipositive");
        let mut indexed = Evaluator::new(p).expect("semipositive");
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| black_box(scan.evaluate(&s).unwrap().store.fact_count()));
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| black_box(indexed.evaluate(&s).unwrap().store.fact_count()));
        });
    }
    group.finish();
}

fn bench_nonlinear_tc(c: &mut Criterion) {
    let mut group = c.benchmark_group("join/nonlinear_tc");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [100usize, 200] {
        let s = chain(n);
        let p = tc_nonlinear(&s);
        let mut scan =
            Evaluator::with_options(p.clone(), EvalOptions::new().engine(Engine::SemiNaiveScan))
                .expect("semipositive");
        let mut indexed = Evaluator::new(p).expect("semipositive");
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| black_box(scan.evaluate(&s).unwrap().store.fact_count()));
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| black_box(indexed.evaluate(&s).unwrap().store.fact_count()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_linear_tc, bench_nonlinear_tc);
criterion_main!(benches);
