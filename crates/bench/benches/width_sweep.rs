//! Width-sensitivity ablation (the `f(w)` constant of Theorems 5.1/5.3):
//! fixed graph size, growing treewidth. Also quantifies §6 optimization
//! (1): the reachable DP table vs the fully materialized ground monadic
//! program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdtw_core::{ground_three_col, ThreeColSolver};
use mdtw_decomp::{NiceOptions, NiceTd};
use mdtw_graph::partial_k_tree;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_dp_by_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("width_sweep/figure5_dp");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for w in [1usize, 2, 3, 4, 5] {
        let mut rng = SmallRng::seed_from_u64(42);
        let (g, td) = partial_k_tree(&mut rng, 80, w, 0.8);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| black_box(ThreeColSolver::run(&g, &nice).is_colorable()));
        });
    }
    group.finish();
}

fn bench_grounding_by_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("width_sweep/ground_monadic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for w in [1usize, 2, 3, 4, 5] {
        let mut rng = SmallRng::seed_from_u64(42);
        let (g, td) = partial_k_tree(&mut rng, 80, w, 0.8);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| {
                let ground = ground_three_col(&g, &nice);
                black_box(ground.succeeds())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp_by_width, bench_grounding_by_width);
criterion_main!(benches);
