//! Criterion version of Table 1 (paper §6): PRIMALITY decision time for
//! the block-tree workloads, monadic datalog vs the MSO baseline.
//!
//! The MD series must grow linearly in the instance size; the MSO series
//! blows up and is only measured on the first rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdtw_core::is_prime_fpt_with_td;
use mdtw_mso::{eval_unary, primality, Budget, IndVar};
use mdtw_schema::{block_tree_instance, encode_schema};
use std::hint::black_box;
use std::time::Duration;

fn bench_md(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/md");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for k in [1usize, 3, 7, 15, 31] {
        let inst = block_tree_instance(k);
        let target = inst.schema.attr("u0").unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let enc = encode_schema(&inst.schema);
                black_box(is_prime_fpt_with_td(enc, inst.td.clone(), target))
            });
        });
    }
    group.finish();
}

fn bench_mona(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/mona_sim");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    // Only the rows the exponential baseline can finish.
    for k in [1usize, 2, 3] {
        let inst = block_tree_instance(k);
        let target = inst.schema.attr("u0").unwrap();
        let elem = inst.encoding.elem_of_attr(target);
        let phi = primality();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut budget = Budget::unlimited();
                black_box(
                    eval_unary(&phi, IndVar(0), &inst.encoding.structure, elem, &mut budget)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_md, bench_mona);
criterion_main!(benches);
