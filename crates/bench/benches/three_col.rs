//! 3-Colorability (paper §5.1, Figure 5): the FPT dynamic program vs the
//! exponential backtracking baseline vs the tree-automaton run, on random
//! partial 3-trees of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdtw_core::ThreeColSolver;
use mdtw_decomp::{NiceOptions, NiceTd};
use mdtw_fta::nfta_3col;
use mdtw_graph::{is_three_colorable_exact, partial_k_tree, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn instances() -> Vec<(usize, Graph, NiceTd)> {
    let mut rng = SmallRng::seed_from_u64(1234);
    [50usize, 100, 200, 400]
        .into_iter()
        .map(|n| {
            let (g, td) = partial_k_tree(&mut rng, n, 3, 0.85);
            let nice = NiceTd::from_td(&td, NiceOptions::default());
            (n, g, nice)
        })
        .collect()
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("three_col/figure5_dp");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (n, g, nice) in instances() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ThreeColSolver::run(&g, &nice).is_colorable()));
        });
    }
    group.finish();
}

fn bench_backtracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("three_col/backtracking");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    // The exponential baseline is only run on the smaller inputs.
    for (n, g, _) in instances().into_iter().take(2) {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(is_three_colorable_exact(&g)));
        });
    }
    group.finish();
}

fn bench_nfta(c: &mut Criterion) {
    let mut group = c.benchmark_group("three_col/nfta_run");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (n, g, nice) in instances() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(nfta_3col(&g, &nice)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp, bench_backtracking, bench_nfta);
criterion_main!(benches);
