//! NP-hard baselines vs the FPT algorithms: where the crossover falls.
//!
//! PRIMALITY is NP-complete in general (paper §2.1); with bounded
//! treewidth the Figure 6 program is linear. This bench shows the
//! brute-force `2^|R|` check and the Lucchesi–Osborn key enumeration
//! against the FPT solver on the block-tree family, plus the MONA-style
//! determinization cost for 3-Colorability against the linear automaton
//! run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdtw_core::is_prime_fpt_with_td;
use mdtw_decomp::{NiceOptions, NiceTd};
use mdtw_fta::{mona_style_3col, nfta_3col, DetBudget};
use mdtw_graph::partial_k_tree;
use mdtw_schema::{block_tree_instance, encode_schema};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_primality_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/primality");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for k in [2usize, 4, 6] {
        let inst = block_tree_instance(k);
        let target = inst.schema.attr("u0").unwrap();
        group.bench_with_input(BenchmarkId::new("fpt", k), &k, |b, _| {
            b.iter(|| {
                let enc = encode_schema(&inst.schema);
                black_box(is_prime_fpt_with_td(enc, inst.td.clone(), target))
            });
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", k), &k, |b, _| {
            b.iter(|| black_box(inst.schema.is_prime_bruteforce(target)));
        });
        group.bench_with_input(BenchmarkId::new("lucchesi_osborn", k), &k, |b, _| {
            b.iter(|| black_box(inst.schema.is_prime_exact(target)));
        });
    }
    group.finish();
}

fn bench_fta_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/fta_3col");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for w in [1usize, 2] {
        let mut rng = SmallRng::seed_from_u64(7);
        let (g, td) = partial_k_tree(&mut rng, 40, w, 0.8);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        group.bench_with_input(BenchmarkId::new("nfta_linear", w), &w, |b, _| {
            b.iter(|| black_box(nfta_3col(&g, &nice)));
        });
        group.bench_with_input(BenchmarkId::new("mona_determinize", w), &w, |b, _| {
            b.iter(|| {
                let budget = DetBudget {
                    max_states: 50_000,
                    max_transitions: 1 << 22,
                };
                black_box(mona_style_3col(&g, &nice, budget).map(|(ok, _)| ok))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primality_baselines, bench_fta_baseline);
criterion_main!(benches);
