//! The stratified evaluation pipeline against its semipositive core.
//!
//! `stratified/negation_chain` runs the 3-stratum reach/unreach/settled
//! workload through a stratified `Evaluator` session (stratified once at
//! construction; each evaluation rewrites, extends the structure
//! copy-on-write and runs three semi-naive passes).
//! `stratified/positive_core` runs
//! just the semipositive reachability sub-program through the plain
//! semi-naive engine, so the gap between the two series is the cost of
//! the stratification machinery — per-stratum planning, materialization
//! into the extended structure, and the negative checks themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdtw_bench::stratified_workload;
use mdtw_datalog::{parse_program, Evaluator};
use std::hint::black_box;
use std::time::Duration;

fn bench_stratified(c: &mut Criterion) {
    let mut group = c.benchmark_group("stratified/negation_chain");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [200usize, 400, 800] {
        let (s, p) = stratified_workload(n);
        let mut session = Evaluator::new(p).expect("stratifiable");
        group.bench_with_input(BenchmarkId::new("stratified", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    session
                        .evaluate(&s)
                        .expect("stratifiable")
                        .store
                        .fact_count(),
                )
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("stratified/positive_core");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [200usize, 400, 800] {
        let (s, _) = stratified_workload(n);
        let core = parse_program("reach(X) :- first(X).\nreach(Y) :- reach(X), e(X, Y).", &s)
            .expect("semipositive core parses");
        let mut session = Evaluator::new(core).expect("semipositive");
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| black_box(session.evaluate(&s).unwrap().store.fact_count()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stratified);
criterion_main!(benches);
