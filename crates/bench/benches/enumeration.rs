//! §5.3 ablation: the linear-time PRIMALITY *enumeration* (one bottom-up
//! plus one top-down pass) against the naive quadratic alternative the
//! section opens with ("one can consider the tree decomposition as rooted
//! at various nodes … obviously quadratic time complexity"): re-running
//! the §5.2 decision once per attribute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdtw_core::{enumerate_primes, is_prime_fpt_with_td, PrimalityContext};
use mdtw_schema::{block_tree_instance, encode_schema};
use std::hint::black_box;
use std::time::Duration;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration/solve_down");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for k in [2usize, 4, 8, 16] {
        let inst = block_tree_instance(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let ctx =
                    PrimalityContext::from_parts(encode_schema(&inst.schema), inst.td.clone());
                black_box(enumerate_primes(&ctx).0.len())
            });
        });
    }
    group.finish();
}

fn bench_repeated_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration/repeated_decision");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for k in [2usize, 4, 8, 16] {
        let inst = block_tree_instance(k);
        let attrs: Vec<_> = inst.schema.attrs().collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut primes = 0usize;
                for &a in &attrs {
                    let enc = encode_schema(&inst.schema);
                    if is_prime_fpt_with_td(enc, inst.td.clone(), a) {
                        primes += 1;
                    }
                }
                black_box(primes)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_repeated_decision);
criterion_main!(benches);
