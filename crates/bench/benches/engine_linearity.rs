//! Theorem 4.4 ablation: quasi-guarded evaluation runs in `O(|P| · |𝒜|)`.
//!
//! A fixed reachability program is evaluated over chains of growing
//! length with (a) the quasi-guarded grounding + LTUR pipeline and (b)
//! the general semi-naive engine. The quasi-guarded series must scale
//! linearly in `|𝒜|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdtw_datalog::{parse_program, EvalOptions, Evaluator, FdCatalog, Program};
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn chain(n: usize) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("next", 2), ("first", 1)]));
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let next = s.signature().lookup("next").unwrap();
    let first = s.signature().lookup("first").unwrap();
    s.insert(first, &[ElemId(0)]);
    for i in 0..n - 1 {
        s.insert(next, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    s
}

fn program(s: &Structure) -> (Program, FdCatalog) {
    let p = parse_program(
        "reach(X) :- first(X).\nreach(Y) :- reach(X), next(X, Y).\n\
         inner(X) :- reach(X), next(X, Y), !first(X).",
        s,
    )
    .unwrap();
    let mut cat = FdCatalog::new();
    let next = s.signature().lookup("next").unwrap();
    cat.declare(next, vec![0], vec![1]);
    cat.declare(next, vec![1], vec![0]);
    (p, cat)
}

fn bench_quasi_guarded(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/quasi_guarded");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [1_000usize, 2_000, 4_000, 8_000] {
        let s = chain(n);
        let (p, cat) = program(&s);
        let mut session =
            Evaluator::with_options(p, EvalOptions::new().fd_catalog(cat)).expect("quasi-guarded");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(session.evaluate(&s).unwrap().store.fact_count()));
        });
    }
    group.finish();
}

fn bench_seminaive(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/seminaive");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    // With the indexed join engine the semi-naive series now scales to the
    // same sizes as the quasi-guarded pipeline.
    for n in [1_000usize, 2_000, 4_000, 8_000] {
        let s = chain(n);
        let (p, _) = program(&s);
        let mut session = Evaluator::new(p).expect("semipositive");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(session.evaluate(&s).unwrap().store.fact_count()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quasi_guarded, bench_seminaive);
criterion_main!(benches);
