//! Smoke coverage for the §6 harness: `cargo test` (not only `cargo
//! bench`) exercises [`mdtw_bench::measure_row`] on the first two Table 1
//! rows and re-checks the decision they time.

use mdtw_bench::measure_row;
use mdtw_core::is_prime_fpt_with_td;
use mdtw_schema::{block_tree_instance, encode_schema, TABLE1_FD_COUNTS};

/// The first two rows of Table 1 measure something real: `u0` is decided
/// prime by the Figure 6 solver, widths stay ≤ 3, and sizes grow.
#[test]
fn first_two_rows_decide_u0_prime() {
    let mut prev_tn = 0usize;
    for &k in &TABLE1_FD_COUNTS[..2] {
        // Independent re-check of the decision measure_row times.
        let inst = block_tree_instance(k);
        let target = inst.schema.attr("u0").expect("u0 exists");
        assert!(
            is_prime_fpt_with_td(encode_schema(&inst.schema), inst.td.clone(), target),
            "u0 must be decided prime for Table 1 row k={k}"
        );

        let row = measure_row(k, false);
        assert!(row.tw <= 3, "Table 1 is the treewidth-3 workload");
        assert_eq!(row.n_fd, k);
        assert!(row.md_micros > 0.0);
        assert!(
            row.n_tn > prev_tn,
            "decomposition size must grow down the table"
        );
        prev_tn = row.n_tn;
    }
}

/// The MSO baseline still completes on row 1 and agrees with MD (the
/// agreement assertion lives inside `measure_row`).
#[test]
fn first_row_mona_baseline_completes() {
    let row = measure_row(TABLE1_FD_COUNTS[0], true);
    assert!(row.mona_micros.is_some(), "row 1 is tiny; no budget blowup");
}
