//! Shared harness code for regenerating the paper's evaluation (§6).
//!
//! The single measured artifact in the paper is **Table 1**: PRIMALITY
//! processing time at treewidth 3 for growing schemas, monadic datalog
//! ("MD") against MONA-style MSO model checking ("MONA", which runs out
//! of memory beyond the third row). [`table1`] reproduces the table with
//! our from-scratch substitutes: the Figure 6 solver for MD and the naive
//! MSO model checker (budgeted) for MONA.

use mdtw_core::{is_prime_fpt_with_td, PrimalityContext};
use mdtw_mso::{eval_unary, primality, Budget, IndVar, Mso};
use mdtw_schema::{block_tree_instance, GeneratedInstance, TABLE1_FD_COUNTS};
use std::time::Instant;

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Treewidth of the generated decomposition (always ≤ 3).
    pub tw: usize,
    /// Number of attributes.
    pub n_att: usize,
    /// Number of FDs.
    pub n_fd: usize,
    /// Number of (nice) decomposition tree nodes.
    pub n_tn: usize,
    /// Monadic-datalog decision time, microseconds.
    pub md_micros: f64,
    /// MSO model-checking time in microseconds, or `None` when the step
    /// budget (the stand-in for the paper's 512 MB) was exhausted — the
    /// "–" entries of the paper.
    pub mona_micros: Option<f64>,
}

/// The step budget granted to the MSO baseline per query. Calibrated so
/// the first rows finish and later rows exceed it, like MONA's
/// out-of-memory failures in the paper.
pub const MONA_STEP_BUDGET: u64 = 20_000_000;

/// Builds the workload of one row (`k` = number of FDs = blocks).
pub fn row_instance(k: usize) -> GeneratedInstance {
    block_tree_instance(k)
}

/// Measures one row. The queried attribute is `u0` (prime, so both
/// engines do full work: the certificate must be verified everywhere).
pub fn measure_row(k: usize, with_mona: bool) -> Table1Row {
    let inst = row_instance(k);
    let target = inst.schema.attr("u0").expect("u0 exists");

    // Monadic datalog (Figure 6) — decision, including the context setup
    // from the generated decomposition, as in the paper's measurements.
    let md_start = Instant::now();
    let enc2 = mdtw_schema::encode_schema(&inst.schema);
    let is_prime = is_prime_fpt_with_td(enc2, inst.td.clone(), target);
    let md_micros = md_start.elapsed().as_secs_f64() * 1e6;
    assert!(is_prime, "u0 is prime by construction");

    // Decomposition statistics for the #tn column.
    let ctx =
        PrimalityContext::from_parts(mdtw_schema::encode_schema(&inst.schema), inst.td.clone());
    let n_tn = ctx.nice.len();
    let tw = ctx.nice.width();

    let mona_micros = if with_mona {
        let phi: Mso = primality();
        let elem = inst.encoding.elem_of_attr(target);
        let mut budget = Budget::new(MONA_STEP_BUDGET);
        let mona_start = Instant::now();
        match eval_unary(&phi, IndVar(0), &inst.encoding.structure, elem, &mut budget) {
            Ok(answer) => {
                assert!(answer, "MSO and MD must agree");
                Some(mona_start.elapsed().as_secs_f64() * 1e6)
            }
            Err(_) => None,
        }
    } else {
        None
    };

    Table1Row {
        tw,
        n_att: inst.schema.attr_count(),
        n_fd: inst.schema.fd_count(),
        n_tn,
        md_micros,
        mona_micros,
    }
}

/// Regenerates all rows of Table 1. `mona_rows` limits how many rows the
/// exponential baseline is attempted on (it only ever completes the first
/// few, but attempting all of them costs the full budget each time).
pub fn table1(mona_rows: usize) -> Vec<Table1Row> {
    TABLE1_FD_COUNTS
        .iter()
        .enumerate()
        .map(|(i, &k)| measure_row(k, i < mona_rows))
        .collect()
}

/// Renders rows in the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("tw  #Att  #FD  #tn   MD(us)      MONA(us)\n");
    for r in rows {
        let mona = match r.mona_micros {
            Some(us) => format!("{us:.0}"),
            None => "-".to_owned(),
        };
        out.push_str(&format!(
            "{:<3} {:<5} {:<4} {:<5} {:<11.0} {}\n",
            r.tw, r.n_att, r.n_fd, r.n_tn, r.md_micros, mona
        ));
    }
    out
}

/// Renders rows as a machine-readable JSON array (hand-rolled: the build
/// environment has no serde). `mona_us` is `null` for budget-exhausted
/// rows. Consumed by cross-commit perf tracking of the `table1` bin's
/// `--json` mode.
pub fn render_table1_json(rows: &[Table1Row]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mona = match r.mona_micros {
            Some(us) => format!("{us:.1}"),
            None => "null".to_owned(),
        };
        out.push_str(&format!(
            "\n  {{\"tw\": {}, \"n_att\": {}, \"n_fd\": {}, \"n_tn\": {}, \
             \"md_us\": {:.1}, \"mona_us\": {}}}",
            r.tw, r.n_att, r.n_fd, r.n_tn, r.md_micros, mona
        ));
    }
    out.push_str("\n]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_measurement_smoke() {
        let row = measure_row(1, true);
        assert_eq!(row.n_att, 3);
        assert_eq!(row.n_fd, 1);
        assert!(row.tw <= 3);
        assert!(row.md_micros > 0.0);
        // Row 1 is tiny: the MSO baseline finishes.
        assert!(row.mona_micros.is_some());
    }

    #[test]
    fn render_is_well_formed() {
        let rows = vec![Table1Row {
            tw: 3,
            n_att: 3,
            n_fd: 1,
            n_tn: 10,
            md_micros: 42.0,
            mona_micros: None,
        }];
        let s = render_table1(&rows);
        assert!(s.contains("MD(us)"));
        assert!(s.contains('-'));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let rows = vec![
            Table1Row {
                tw: 3,
                n_att: 3,
                n_fd: 1,
                n_tn: 10,
                md_micros: 42.25,
                mona_micros: Some(7.5),
            },
            Table1Row {
                tw: 3,
                n_att: 5,
                n_fd: 2,
                n_tn: 20,
                md_micros: 84.0,
                mona_micros: None,
            },
        ];
        let s = render_table1_json(&rows);
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("\"md_us\": 42.2") || s.contains("\"md_us\": 42.3"));
        assert!(s.contains("\"mona_us\": 7.5"));
        assert!(s.contains("\"mona_us\": null"));
        assert_eq!(s.matches("{\"tw\"").count(), 2);
    }
}
