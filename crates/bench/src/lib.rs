//! Shared harness code for regenerating the paper's evaluation (§6).
//!
//! The single measured artifact in the paper is **Table 1**: PRIMALITY
//! processing time at treewidth 3 for growing schemas, monadic datalog
//! ("MD") against MONA-style MSO model checking ("MONA", which runs out
//! of memory beyond the third row). [`table1`] reproduces the table with
//! our from-scratch substitutes: the Figure 6 solver for MD and the naive
//! MSO model checker (budgeted) for MONA.

use mdtw_core::{is_prime_fpt_with_td, PrimalityContext};
use mdtw_mso::{eval_unary, primality, Budget, IndVar, Mso};
use mdtw_schema::{block_tree_instance, GeneratedInstance, TABLE1_FD_COUNTS};
use std::time::Instant;

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Treewidth of the generated decomposition (always ≤ 3).
    pub tw: usize,
    /// Number of attributes.
    pub n_att: usize,
    /// Number of FDs.
    pub n_fd: usize,
    /// Number of (nice) decomposition tree nodes.
    pub n_tn: usize,
    /// Monadic-datalog decision time, microseconds.
    pub md_micros: f64,
    /// MSO model-checking time in microseconds, or `None` when the step
    /// budget (the stand-in for the paper's 512 MB) was exhausted — the
    /// "–" entries of the paper.
    pub mona_micros: Option<f64>,
    /// Governor checkpoints run by the row's governed datalog
    /// cross-check (see [`fd_component_readbacks`]).
    pub limit_checks: usize,
    /// Fuel the cross-check consumed against its budget.
    pub fuel_spent: u64,
}

/// The governed datalog cross-check run per Table 1 row: the connected
/// component of the queried attribute in the FD incidence graph of the
/// row's τ-structure encoding (`lh`/`rh` edges between attribute and FD
/// elements). Attributes outside this component can never influence the
/// target's primality, so a full-domain component certifies the
/// generated instance exercises the whole schema — and, since the
/// evaluation runs under an [`EvalLimits`](mdtw_datalog::EvalLimits)
/// budget, its meter readbacks give Table 1 rows real
/// `limit_checks` / `fuel_spent` observability data that scales with the
/// encoded instance.
pub const FD_COMPONENT_PROGRAM: &str = "touched(A) :- target(A).\n\
     touched(F) :- touched(A), lh(F, A).\n\
     touched(F) :- touched(A), rh(F, A).\n\
     touched(A) :- touched(F), lh(F, A).\n\
     touched(A) :- touched(F), rh(F, A).";

/// Evaluates [`FD_COMPONENT_PROGRAM`] (governed, effectively unlimited
/// fuel) over `structure` extended with a `target/1` relation holding
/// `target`, and returns `(component_size, limit_checks, fuel_spent)`.
pub fn fd_component_readbacks(
    structure: &mdtw_structure::Structure,
    target: mdtw_structure::ElemId,
) -> (usize, usize, u64) {
    use mdtw_datalog::{EvalLimits, EvalOptions, Evaluator};
    let (mut s, _) = structure.extended([("target", 1)]);
    let target_p = s.signature().lookup("target").expect("just declared");
    s.insert(target_p, &[target]);
    let program = mdtw_datalog::parse_program(FD_COMPONENT_PROGRAM, &s).expect("inline program");
    let budget = EvalLimits::new().fuel(u64::MAX >> 1);
    let mut session = Evaluator::with_options(program, EvalOptions::new().limits(budget))
        .expect("semipositive program");
    let r = session.evaluate(&s).expect("budget never trips");
    (
        r.store.fact_count(),
        r.stats.limit_checks,
        r.stats.fuel_spent,
    )
}

/// The step budget granted to the MSO baseline per query. Calibrated so
/// the first rows finish and later rows exceed it, like MONA's
/// out-of-memory failures in the paper.
pub const MONA_STEP_BUDGET: u64 = 20_000_000;

/// Builds the workload of one row (`k` = number of FDs = blocks).
pub fn row_instance(k: usize) -> GeneratedInstance {
    block_tree_instance(k)
}

/// Measures one row. The queried attribute is `u0` (prime, so both
/// engines do full work: the certificate must be verified everywhere).
pub fn measure_row(k: usize, with_mona: bool) -> Table1Row {
    let inst = row_instance(k);
    let target = inst.schema.attr("u0").expect("u0 exists");

    // Monadic datalog (Figure 6) — decision, including the context setup
    // from the generated decomposition, as in the paper's measurements.
    let md_start = Instant::now();
    let enc2 = mdtw_schema::encode_schema(&inst.schema);
    let is_prime = is_prime_fpt_with_td(enc2, inst.td.clone(), target);
    let md_micros = md_start.elapsed().as_secs_f64() * 1e6;
    assert!(is_prime, "u0 is prime by construction");

    // Decomposition statistics for the #tn column.
    let ctx =
        PrimalityContext::from_parts(mdtw_schema::encode_schema(&inst.schema), inst.td.clone());
    let n_tn = ctx.nice.len();
    let tw = ctx.nice.width();

    let mona_micros = if with_mona {
        let phi: Mso = primality();
        let elem = inst.encoding.elem_of_attr(target);
        let mut budget = Budget::new(MONA_STEP_BUDGET);
        let mona_start = Instant::now();
        match eval_unary(&phi, IndVar(0), &inst.encoding.structure, elem, &mut budget) {
            Ok(answer) => {
                assert!(answer, "MSO and MD must agree");
                Some(mona_start.elapsed().as_secs_f64() * 1e6)
            }
            Err(_) => None,
        }
    } else {
        None
    };

    let (_, limit_checks, fuel_spent) =
        fd_component_readbacks(&inst.encoding.structure, inst.encoding.elem_of_attr(target));

    Table1Row {
        tw,
        n_att: inst.schema.attr_count(),
        n_fd: inst.schema.fd_count(),
        n_tn,
        md_micros,
        mona_micros,
        limit_checks,
        fuel_spent,
    }
}

/// Regenerates all rows of Table 1. `mona_rows` limits how many rows the
/// exponential baseline is attempted on (it only ever completes the first
/// few, but attempting all of them costs the full budget each time).
pub fn table1(mona_rows: usize) -> Vec<Table1Row> {
    TABLE1_FD_COUNTS
        .iter()
        .enumerate()
        .map(|(i, &k)| measure_row(k, i < mona_rows))
        .collect()
}

/// Renders rows in the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("tw  #Att  #FD  #tn   MD(us)      MONA(us)\n");
    for r in rows {
        let mona = match r.mona_micros {
            Some(us) => format!("{us:.0}"),
            None => "-".to_owned(),
        };
        out.push_str(&format!(
            "{:<3} {:<5} {:<4} {:<5} {:<11.0} {}\n",
            r.tw, r.n_att, r.n_fd, r.n_tn, r.md_micros, mona
        ));
    }
    out
}

/// Renders rows as a machine-readable JSON array (hand-rolled: the build
/// environment has no serde). `mona_us` is `null` for budget-exhausted
/// rows. Consumed by cross-commit perf tracking of the `table1` bin's
/// `--json` mode.
pub fn render_table1_json(rows: &[Table1Row]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mona = match r.mona_micros {
            Some(us) => format!("{us:.1}"),
            None => "null".to_owned(),
        };
        out.push_str(&format!(
            "\n  {{\"tw\": {}, \"n_att\": {}, \"n_fd\": {}, \"n_tn\": {}, \
             \"md_us\": {:.1}, \"mona_us\": {}, \
             \"limit_checks\": {}, \"fuel_spent\": {}}}",
            r.tw, r.n_att, r.n_fd, r.n_tn, r.md_micros, mona, r.limit_checks, r.fuel_spent
        ));
    }
    out.push_str("\n]");
    out
}

// ---------------------------------------------------------------------------
// Join-engine perf report (`bench_report` bin)
// ---------------------------------------------------------------------------

/// One measured row of the join-engine performance report: a workload at a
/// fixed size, evaluated by one engine, with wall-clock and work counters.
/// Written to `BENCH_joins.json` by the `bench_report` bin so the perf
/// trajectory of the semi-naive engine is recorded across PRs.
#[derive(Debug, Clone)]
pub struct JoinBenchRow {
    /// Workload name (`linear_tc`, `budgeted_tc`, `reach_linearity`,
    /// `stratified_reach`, `magic_point_query` or `per_candidate`).
    pub workload: String,
    /// Engine name (`indexed`, `scan`, `governed`, `stratified`, `full`,
    /// `magic`, `session` or `per_call`).
    pub engine: String,
    /// Structure size (chain length).
    pub n: usize,
    /// Distinct facts derived by the evaluation.
    pub facts: usize,
    /// Mean nanoseconds per full evaluation.
    pub nanos_per_eval: f64,
    /// Mean nanoseconds per derived fact (the headline metric).
    pub ns_per_fact: f64,
    /// Work counters of one evaluation.
    pub stats: mdtw_datalog::EvalStats,
}

fn chain_structure_for_bench(n: usize, preds: &[(&str, usize)]) -> mdtw_structure::Structure {
    use mdtw_structure::{Domain, Signature, Structure};
    let sig = std::sync::Arc::new(Signature::from_pairs(preds.iter().copied()));
    let dom = Domain::anonymous(n);
    Structure::new(sig, dom)
}

/// Inline program of the `linear_tc` workload.
pub const LINEAR_TC_PROGRAM: &str = "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).";

/// Inline program of the `reach_linearity` workload (`_Y` marks the
/// intentionally-unused join variable for the singleton-variable lint).
pub const REACH_PROGRAM: &str = "reach(X) :- first(X).\nreach(Y) :- reach(X), next(X, Y).\n\
     inner(X) :- reach(X), next(X, _Y), !first(X).";

/// Inline program of the `stratified_reach` and `per_candidate`
/// workloads: a 3-stratum negation chain.
pub const STRATIFIED_PROGRAM: &str = "reach(X) :- first(X).\nreach(Y) :- reach(X), e(X, Y).\n\
     unreach(X) :- node(X), !reach(X).\n\
     settled(X) :- node(X), !unreach(X), !first(X).";

/// Inline program of the `magic_point_query` workload: transitive closure
/// probed from a single source — the shape the magic-set demand
/// transformation is built for.
pub const POINT_QUERY_PROGRAM: &str = "path(X, Y) :- e(X, Y).\n\
     path(X, Z) :- path(X, Y), e(Y, Z).\n\
     answer(Y) :- source(X), path(X, Y).";

/// The point-query workload: a chain of `n` edges with a single `source`
/// fact at element 0, asking for everything reachable from it. The full
/// engine materializes all Θ(n²) `path` facts; the magic rewrite only
/// the Θ(n) demanded ones.
pub fn point_query_workload(n: usize) -> (mdtw_structure::Structure, mdtw_datalog::Program) {
    use mdtw_structure::ElemId;
    let mut s = chain_structure_for_bench(n, &[("e", 2), ("source", 1)]);
    let e = s.signature().lookup("e").unwrap();
    let source = s.signature().lookup("source").unwrap();
    s.insert(source, &[ElemId(0)]);
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    let p = mdtw_datalog::parse_program(POINT_QUERY_PROGRAM, &s).unwrap();
    (s, p)
}

fn linear_tc_workload(n: usize) -> (mdtw_structure::Structure, mdtw_datalog::Program) {
    use mdtw_structure::ElemId;
    let mut s = chain_structure_for_bench(n, &[("e", 2)]);
    let e = s.signature().lookup("e").unwrap();
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    let p = mdtw_datalog::parse_program(LINEAR_TC_PROGRAM, &s).unwrap();
    (s, p)
}

fn reach_workload(n: usize) -> (mdtw_structure::Structure, mdtw_datalog::Program) {
    use mdtw_structure::ElemId;
    let mut s = chain_structure_for_bench(n, &[("next", 2), ("first", 1)]);
    let next = s.signature().lookup("next").unwrap();
    let first = s.signature().lookup("first").unwrap();
    s.insert(first, &[ElemId(0)]);
    for i in 0..n - 1 {
        s.insert(next, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    let p = mdtw_datalog::parse_program(REACH_PROGRAM, &s).unwrap();
    (s, p)
}

/// The stratified workload: reachability from a mid-chain source, its
/// complement through negation, and a third stratum negating the
/// complement — a 3-stratum negation chain with Θ(n) facts per stratum.
pub fn stratified_workload(n: usize) -> (mdtw_structure::Structure, mdtw_datalog::Program) {
    use mdtw_structure::ElemId;
    let mut s = chain_structure_for_bench(n, &[("e", 2), ("node", 1), ("first", 1)]);
    let e = s.signature().lookup("e").unwrap();
    let node = s.signature().lookup("node").unwrap();
    let first = s.signature().lookup("first").unwrap();
    for i in 0..n {
        s.insert(node, &[ElemId(i as u32)]);
    }
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    s.insert(first, &[ElemId(n as u32 / 2)]);
    let p = mdtw_datalog::parse_program(STRATIFIED_PROGRAM, &s).unwrap();
    (s, p)
}

/// Segment length of the [`incremental_tc_workload`] chain: edges never
/// cross segment boundaries, so the TC fixpoint is Θ(n·L) rather than
/// Θ(n²) and the workload stays measurable at n = 8000.
pub const INCREMENTAL_SEGMENT: usize = 100;

/// The incremental-maintenance workload, built by
/// [`incremental_tc_workload`]: a segmented chain materialized once as a
/// [`MaterializedView`](mdtw_datalog::MaterializedView), then maintained
/// under the two complementary mixed batches.
#[derive(Debug, Clone)]
pub struct IncrementalTcWorkload {
    /// The initial base structure (odd segments carry their flip edge,
    /// even segments start without theirs).
    pub structure: mdtw_structure::Structure,
    /// The base structure after [`Self::batch_a`] — what the `recompute`
    /// baseline evaluates from scratch.
    pub mutated: mdtw_structure::Structure,
    /// [`LINEAR_TC_PROGRAM`] parsed against the workload signature.
    pub program: mdtw_datalog::Program,
    /// The forward batch: inserts even-segment flip edges, retracts
    /// odd-segment ones — ≈1 % of the base facts, half inserts, half
    /// retracts.
    pub batch_a: mdtw_datalog::Update,
    /// The exact inverse of [`Self::batch_a`]; applying A then B returns
    /// the view to its initial state, so batches can alternate forever.
    pub batch_b: mdtw_datalog::Update,
    /// Edges toggled per batch.
    pub flips: usize,
    /// Base facts in the initial structure.
    pub base_facts: usize,
}

/// Builds the `incremental_tc` workload: a chain of `n` nodes cut into
/// [`INCREMENTAL_SEGMENT`]-node segments (no edges across boundaries),
/// with one *flip* edge near the end of each segment — present initially
/// only in odd segments. Each batch toggles the flip edges of the first
/// `flips` segments (capped at 1 % of the base facts), so one batch mixes
/// inserts and retracts and each toggle moves Θ(L) derived TC facts.
pub fn incremental_tc_workload(n: usize) -> IncrementalTcWorkload {
    use mdtw_datalog::Update;
    use mdtw_structure::ElemId;
    assert!(n >= 4, "the segmented chain needs at least 4 elements");
    let seg = n.min(INCREMENTAL_SEGMENT);
    let segments = n / seg;
    let mut s = chain_structure_for_bench(n, &[("e", 2)]);
    let e = s.signature().lookup("e").unwrap();
    let flip_edge = |k: usize| {
        let p = (k * seg + seg - 2) as u32;
        [ElemId(p), ElemId(p + 1)]
    };
    for i in 0..n - 1 {
        if (i + 1) % seg == 0 {
            continue; // no edges across segment boundaries
        }
        if i % seg == seg - 2 && (i / seg).is_multiple_of(2) && i / seg < segments {
            continue; // even segments start without their flip edge
        }
        s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    let base_facts = s.relation(e).len();
    let flips = segments.min((base_facts / 100).max(1));
    let (mut batch_a, mut batch_b) = (Update::new(), Update::new());
    let mut mutated = s.clone();
    for k in 0..flips {
        let t = flip_edge(k);
        if k.is_multiple_of(2) {
            batch_a.push_insert(e, &t);
            batch_b.push_retract(e, &t);
            mutated.insert(e, &t);
        } else {
            batch_a.push_retract(e, &t);
            batch_b.push_insert(e, &t);
            mutated.retract(e, &t);
        }
    }
    let program = mdtw_datalog::parse_program(LINEAR_TC_PROGRAM, &s).unwrap();
    IncrementalTcWorkload {
        structure: s,
        mutated,
        program,
        batch_a,
        batch_b,
        flips,
        base_facts,
    }
}

/// Fail-fast static analysis of every inline workload program, run by the
/// `table1` and `bench_report` bins before they measure anything.
///
/// Each program is parsed by its workload builder (so the spans refer to
/// the `*_PROGRAM` consts) and pushed through the
/// [`analyze`](mdtw_datalog::analyze) battery. Error-level findings
/// (unsafe rules, unstratifiable negation, …) abort with the rendered
/// rustc-style diagnostics; warnings are returned for the caller to print
/// without blocking the run (notes — e.g. the expected non-monadicity of
/// `path/2` — are dropped).
pub fn preflight() -> Result<Vec<String>, String> {
    use mdtw_datalog::{analyze, AnalysisOptions, Severity};
    type Build = fn(usize) -> (mdtw_structure::Structure, mdtw_datalog::Program);
    let checks: [(&str, &str, Build); 4] = [
        ("linear_tc", LINEAR_TC_PROGRAM, linear_tc_workload),
        ("reach_linearity", REACH_PROGRAM, reach_workload),
        ("stratified_reach", STRATIFIED_PROGRAM, stratified_workload),
        (
            "magic_point_query",
            POINT_QUERY_PROGRAM,
            point_query_workload,
        ),
    ];
    let mut notes = Vec::new();
    for (name, source, build) in checks {
        let (s, program) = build(6);
        let report = analyze(
            &program,
            &AnalysisOptions::new().edb_signature(std::sync::Arc::clone(s.signature())),
        );
        let mut errors = Vec::new();
        for d in &report.diagnostics {
            match d.severity {
                Severity::Error => errors.push(d.render(Some(source), name)),
                Severity::Warning => notes.push(d.render(Some(source), name)),
                Severity::Note => {}
            }
        }
        if !errors.is_empty() {
            return Err(errors.join("\n\n"));
        }
    }
    Ok(notes)
}

/// Times `eval` until at least ~200 ms or 50 iterations have elapsed
/// (after one warm-up run) and returns mean nanoseconds per evaluation.
fn time_eval(mut eval: impl FnMut() -> usize) -> f64 {
    let _ = eval(); // warm-up (builds lazy indexes, faults pages)
    let budget = std::time::Duration::from_millis(200);
    let start = Instant::now();
    let mut iters = 0u32;
    while iters < 50 && (iters < 3 || start.elapsed() < budget) {
        std::hint::black_box(eval());
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Candidate count of the `per_candidate` workload.
pub const PER_CANDIDATE_K: usize = 8;

/// The per-candidate workload: `PER_CANDIDATE_K` copies of the 3-stratum
/// reachability chain, each with its `first` source at a different
/// position — the shape of the §5 solvers, which evaluate one program
/// against many candidate structures. Returns the candidate structures
/// and the (shared) program.
pub fn per_candidate_workload(n: usize) -> (Vec<mdtw_structure::Structure>, mdtw_datalog::Program) {
    use mdtw_structure::ElemId;
    let mut structures = Vec::with_capacity(PER_CANDIDATE_K);
    let mut program = None;
    for k in 0..PER_CANDIDATE_K {
        let mut s = chain_structure_for_bench(n, &[("e", 2), ("node", 1), ("first", 1)]);
        let e = s.signature().lookup("e").unwrap();
        let node = s.signature().lookup("node").unwrap();
        let first = s.signature().lookup("first").unwrap();
        for i in 0..n {
            s.insert(node, &[ElemId(i as u32)]);
        }
        for i in 0..n - 1 {
            s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
        }
        s.insert(first, &[ElemId((k * n / PER_CANDIDATE_K) as u32)]);
        if program.is_none() {
            program = Some(mdtw_datalog::parse_program(STRATIFIED_PROGRAM, &s).unwrap());
        }
        structures.push(s);
    }
    (structures, program.expect("at least one candidate"))
}

/// Field-wise sum of two stat sets for multi-candidate rows: the additive
/// counters via [`mdtw_datalog::EvalStats::merge_counters`], `strata` kept
/// as the per-evaluation stratum count rather than summed.
fn add_stats(total: &mut mdtw_datalog::EvalStats, part: &mdtw_datalog::EvalStats) {
    total.merge_counters(part);
    total.strata = part.strata;
}

/// Measures the join/linearity workloads at the given chain sizes, each
/// through a reused [`Evaluator`](mdtw_datalog::Evaluator) session.
///
/// The indexed engine runs at every size; the scan baseline only at sizes
/// ≤ `scan_cap` (it is superlinear and would dominate the wall-clock).
/// The `per_candidate` workload contrasts one session reused across
/// [`PER_CANDIDATE_K`] candidate structures (`session`) with a fresh
/// session per candidate (`per_call`) — the setup cost the session API
/// amortizes.
pub fn join_report(sizes: &[usize], scan_cap: usize) -> Vec<JoinBenchRow> {
    join_report_with_limits(sizes, scan_cap, None)
}

/// [`join_report`] with an explicit budget for the `budgeted_tc` row's
/// governor (from `bench_report --fuel` / `--timeout-ms`). `None` grants
/// an effectively unlimited fuel budget, so every checkpoint runs but
/// never trips — the row then measures the pure overhead of governance
/// against the ungoverned `linear_tc`/`indexed` row. A budget that *does*
/// trip records the partial result's fact count instead (each size gets a
/// fresh meter).
pub fn join_report_with_limits(
    sizes: &[usize],
    scan_cap: usize,
    limits: Option<&mdtw_datalog::EvalLimits>,
) -> Vec<JoinBenchRow> {
    use mdtw_datalog::{Engine, EvalError, EvalLimits, EvalOptions, EvalStats, Evaluator};
    let mut rows = Vec::new();
    let measure = |workload: &str,
                   engine: &str,
                   n: usize,
                   rows: &mut Vec<JoinBenchRow>,
                   eval: &mut dyn FnMut() -> (usize, EvalStats)| {
        // Stats come from a *second* evaluation so the recorded counters
        // reflect steady state (e.g. `plan_cache_hits` = 1 once warm).
        let (facts, _) = eval();
        let (_, stats) = eval();
        let nanos = time_eval(|| eval().0);
        rows.push(JoinBenchRow {
            workload: workload.into(),
            engine: engine.into(),
            n,
            facts,
            nanos_per_eval: nanos,
            ns_per_fact: nanos / facts.max(1) as f64,
            stats,
        });
    };
    for &n in sizes {
        let (s, p) = linear_tc_workload(n);
        let scan_program = (n <= scan_cap).then(|| p.clone());
        let mut session = Evaluator::new(p).expect("semipositive");
        measure("linear_tc", "indexed", n, &mut rows, &mut || {
            let r = session.evaluate(&s).expect("semipositive");
            (r.store.fact_count(), r.stats)
        });
        if let Some(p) = scan_program {
            let mut session =
                Evaluator::with_options(p, EvalOptions::new().engine(Engine::SemiNaiveScan))
                    .expect("semipositive");
            measure("linear_tc", "scan", n, &mut rows, &mut || {
                let r = session.evaluate(&s).expect("semipositive");
                (r.store.fact_count(), r.stats)
            });
        }

        // Governor-overhead ablation: the same linear TC under an
        // evaluation budget. The default (no --fuel/--timeout-ms) budget
        // is effectively unlimited, so every amortized checkpoint runs
        // but never trips — comparing this row's ns/eval against the
        // ungoverned `linear_tc`/`indexed` row above isolates the cost
        // of governance itself.
        let (s, p) = linear_tc_workload(n);
        let budget =
            limits.map_or_else(|| EvalLimits::new().fuel(u64::MAX >> 1), EvalLimits::fresh);
        let mut session =
            Evaluator::with_options(p, EvalOptions::new().limits(budget)).expect("semipositive");
        measure(
            "budgeted_tc",
            "governed",
            n,
            &mut rows,
            &mut || match session.evaluate(&s) {
                Ok(r) => (r.store.fact_count(), r.stats),
                Err(EvalError::LimitExceeded { stats, partial, .. }) => (
                    partial.as_ref().map_or(0, |p| p.store.fact_count()).max(1),
                    stats,
                ),
                Err(e) => panic!("budgeted_tc: unexpected evaluation error: {e}"),
            },
        );

        let (s, p) = reach_workload(n);
        let mut session = Evaluator::new(p).expect("semipositive");
        measure("reach_linearity", "indexed", n, &mut rows, &mut || {
            let r = session.evaluate(&s).expect("semipositive");
            (r.store.fact_count(), r.stats)
        });

        let (s, p) = stratified_workload(n);
        let mut session = Evaluator::new(p).expect("stratifiable");
        measure("stratified_reach", "stratified", n, &mut rows, &mut || {
            let r = session.evaluate(&s).expect("stratifiable");
            (r.store.fact_count(), r.stats)
        });

        // Magic-set ablation: the same point query with full
        // materialization vs. the demand-transformed program.
        let (s, p) = point_query_workload(n);
        let mut session =
            Evaluator::with_options(p.clone(), EvalOptions::new().outputs(["answer"]))
                .expect("semipositive");
        measure("magic_point_query", "full", n, &mut rows, &mut || {
            let r = session.evaluate(&s).expect("semipositive");
            (r.store.fact_count(), r.stats)
        });
        let mut session =
            Evaluator::with_options(p, EvalOptions::new().outputs(["answer"]).magic_sets(true))
                .expect("semipositive");
        measure("magic_point_query", "magic", n, &mut rows, &mut || {
            let r = session.evaluate(&s).expect("semipositive");
            (r.store.fact_count(), r.stats)
        });

        // Incremental maintenance vs. full recomputation: the segmented
        // chain is materialized once, then each "evaluation" absorbs one
        // mixed batch (≈1 % of the base facts, half inserts half
        // retracts, alternating the forward batch and its inverse so the
        // view oscillates between two states). The `recompute` baseline
        // evaluates the post-batch structure from scratch through a warm
        // session; the ratio of the two rows' ns_per_eval is the
        // maintenance speedup.
        let w = incremental_tc_workload(n);
        let mut view = Evaluator::new(w.program.clone())
            .expect("semipositive")
            .materialize(&w.structure)
            .expect("indexed engine");
        let mut forward = true;
        measure("incremental_tc", "maintain", n, &mut rows, &mut || {
            let batch = if forward { &w.batch_a } else { &w.batch_b };
            forward = !forward;
            view.apply(batch);
            (view.store().fact_count(), EvalStats::default())
        });
        let mut session = Evaluator::new(w.program.clone()).expect("semipositive");
        measure("incremental_tc", "recompute", n, &mut rows, &mut || {
            let r = session.evaluate(&w.mutated).expect("semipositive");
            (r.store.fact_count(), r.stats)
        });

        // Per-candidate ablation: one evaluation = all K candidates.
        let (candidates, p) = per_candidate_workload(n);
        measure("per_candidate", "session", n, &mut rows, &mut || {
            let mut session = Evaluator::new(p.clone()).expect("stratifiable");
            let (mut facts, mut total) = (0usize, EvalStats::default());
            for s in &candidates {
                let r = session.evaluate(s).expect("stratifiable");
                facts += r.store.fact_count();
                add_stats(&mut total, &r.stats);
            }
            (facts, total)
        });
        measure("per_candidate", "per_call", n, &mut rows, &mut || {
            let (mut facts, mut total) = (0usize, EvalStats::default());
            for s in &candidates {
                let mut session = Evaluator::new(p.clone()).expect("stratifiable");
                let r = session.evaluate(s).expect("stratifiable");
                facts += r.store.fact_count();
                add_stats(&mut total, &r.stats);
            }
            (facts, total)
        });
    }
    rows
}

/// The profiler-overhead ablation (`bench_report --profiler-overhead`):
/// `linear_tc` and `stratified_reach`, each evaluated at
/// [`ProfileDetail`](mdtw_datalog::ProfileDetail) `Off`, `Rules`, and
/// `Literals`, with the detail level recorded in the engine column
/// (`profile_off`, `profile_rules`, `profile_literals`). The `Off` rows
/// must sit at parity with the plain `indexed`/`stratified` rows of
/// [`join_report`] — profiling disabled is a single `Option` test — and
/// the `Literals` rows bound the cost of full selectivity tracing.
pub fn profiler_overhead_report(sizes: &[usize]) -> Vec<JoinBenchRow> {
    use mdtw_datalog::{EvalOptions, Evaluator, ProfileDetail};
    let mut rows = Vec::new();
    for &n in sizes {
        for detail in [
            ProfileDetail::Off,
            ProfileDetail::Rules,
            ProfileDetail::Literals,
        ] {
            let engine = format!("profile_{}", detail.as_str());
            for (workload, (s, p)) in [
                ("linear_tc", linear_tc_workload(n)),
                ("stratified_reach", stratified_workload(n)),
            ] {
                let mut session = Evaluator::with_options(p, EvalOptions::new().profile(detail))
                    .expect("stratifiable");
                let mut eval = || {
                    let r = session.evaluate(&s).expect("stratifiable");
                    (r.store.fact_count(), r.stats)
                };
                let (facts, _) = eval();
                let (_, stats) = eval();
                let nanos = time_eval(|| eval().0);
                rows.push(JoinBenchRow {
                    workload: workload.into(),
                    engine: engine.clone(),
                    n,
                    facts,
                    nanos_per_eval: nanos,
                    ns_per_fact: nanos / facts.max(1) as f64,
                    stats,
                });
            }
        }
    }
    rows
}

/// Profiled evaluations of the `linear_tc` and `stratified_reach`
/// workloads at full literal detail, rendered as a JSON array of
/// `{"workload", "n", "profile", "stats"}` objects — the payload of
/// `bench_report --profile <file.json>`. Serializes through the
/// dependency-free JSON layer of `mdtw_datalog::lint`, so the emitted
/// profiles round-trip through
/// [`EvalProfile::from_json`](mdtw_datalog::EvalProfile::from_json).
pub fn profile_workloads_json(n: usize) -> String {
    use mdtw_datalog::lint::{eval_stats_json, json::Json};
    use mdtw_datalog::{EvalOptions, Evaluator, ProfileDetail};
    let mut items = Vec::new();
    for (workload, (s, p)) in [
        ("linear_tc", linear_tc_workload(n)),
        ("stratified_reach", stratified_workload(n)),
    ] {
        let mut session =
            Evaluator::with_options(p, EvalOptions::new().profile(ProfileDetail::Literals))
                .expect("stratifiable");
        let r = session.evaluate(&s).expect("stratifiable");
        let profile = r.profile.expect("profiling enabled");
        items.push(Json::Obj(vec![
            ("workload".into(), Json::Str(workload.into())),
            ("n".into(), Json::Num(n as f64)),
            ("profile".into(), profile.to_json()),
            ("stats".into(), eval_stats_json(&r.stats)),
        ]));
    }
    Json::Arr(items).render()
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). The workload/engine fields are
/// internal constants, but the record label comes from the command line.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one labelled record of join-bench rows as JSON (hand-rolled:
/// no serde in the build environment).
pub fn render_join_record_json(label: &str, rows: &[JoinBenchRow]) -> String {
    let mut out = format!("{{\"label\": \"{}\", \"rows\": [", escape_json(label));
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"workload\": \"{}\", \"engine\": \"{}\", \"n\": {}, \
             \"facts\": {}, \"ns_per_eval\": {:.0}, \"ns_per_fact\": {:.1}, \
             \"firings\": {}, \"index_probes\": {}, \"full_scans\": {}, \
             \"tuples_considered\": {}, \"interned_hits\": {}, \
             \"plan_cache_hits\": {}, \"negative_checks\": {}, \"strata\": {}, \
             \"limit_checks\": {}, \"fuel_spent\": {}}}",
            r.workload,
            r.engine,
            r.n,
            r.facts,
            r.nanos_per_eval,
            r.ns_per_fact,
            r.stats.firings,
            r.stats.index_probes,
            r.stats.full_scans,
            r.stats.tuples_considered,
            r.stats.interned_hits,
            r.stats.plan_cache_hits,
            r.stats.negative_checks,
            r.stats.strata,
            r.stats.limit_checks,
            r.stats.fuel_spent,
        ));
    }
    out.push_str("\n  ]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preflight_accepts_the_shipped_workloads() {
        let warnings = preflight().expect("inline workload programs are clean");
        assert!(
            warnings.is_empty(),
            "shipped programs must be warning-free: {warnings:#?}"
        );
    }

    #[test]
    fn row_measurement_smoke() {
        let row = measure_row(1, true);
        assert_eq!(row.n_att, 3);
        assert_eq!(row.n_fd, 1);
        assert!(row.tw <= 3);
        assert!(row.md_micros > 0.0);
        // Row 1 is tiny: the MSO baseline finishes.
        assert!(row.mona_micros.is_some());
    }

    #[test]
    fn render_is_well_formed() {
        let rows = vec![Table1Row {
            tw: 3,
            n_att: 3,
            n_fd: 1,
            n_tn: 10,
            md_micros: 42.0,
            mona_micros: None,
            limit_checks: 2,
            fuel_spent: 11,
        }];
        let s = render_table1(&rows);
        assert!(s.contains("MD(us)"));
        assert!(s.contains('-'));
    }

    #[test]
    fn join_report_smoke_and_json_shape() {
        let rows = join_report(&[40], 40);
        // indexed + scan on linear_tc, governed on budgeted_tc, indexed
        // on reach_linearity, stratified on stratified_reach, full +
        // magic on magic_point_query, maintain + recompute on
        // incremental_tc, session + per_call on per_candidate.
        assert_eq!(rows.len(), 11);
        for r in &rows {
            assert!(r.facts > 0);
            assert!(r.ns_per_fact > 0.0);
        }
        // Steady-state stats: the indexed rows ran against their session's
        // warm plan cache.
        assert!(rows
            .iter()
            .filter(|r| r.engine == "indexed")
            .all(|r| r.stats.plan_cache_hits == 1));
        // The stratified workload really crosses three strata and checks
        // its negations (and hits the session cache once per stratum).
        let strat = rows
            .iter()
            .find(|r| r.engine == "stratified")
            .expect("stratified row");
        assert_eq!(strat.stats.strata, 3);
        assert!(strat.stats.negative_checks > 0);
        assert_eq!(strat.stats.plan_cache_hits, 3);
        // Per-candidate: the reused session hits its cache from the
        // second candidate on — always for stratum 0 (the base structures
        // share a cardinality shape), and for higher strata whenever the
        // materialized lower-stratum sizes land in the same power-of-two
        // bucket. A fresh session per candidate never hits.
        let session = rows
            .iter()
            .find(|r| r.engine == "session")
            .expect("session row");
        assert!(
            session.stats.plan_cache_hits >= PER_CANDIDATE_K - 1,
            "warm candidates must reuse at least the stratum-0 plans, got {} hits",
            session.stats.plan_cache_hits
        );
        let per_call = rows
            .iter()
            .find(|r| r.engine == "per_call")
            .expect("per_call row");
        assert_eq!(per_call.stats.plan_cache_hits, 0);
        assert_eq!(session.facts, per_call.facts, "same fixpoints either way");
        // The demand transformation must strictly shrink the fixpoint on
        // the point query (Θ(n²) path facts down to Θ(n) demanded ones).
        let full = rows
            .iter()
            .find(|r| r.workload == "magic_point_query" && r.engine == "full")
            .expect("full row");
        let magic = rows
            .iter()
            .find(|r| r.workload == "magic_point_query" && r.engine == "magic")
            .expect("magic row");
        assert!(
            magic.stats.facts * 2 < full.stats.facts,
            "magic must at least halve derived facts: {} vs {}",
            magic.stats.facts,
            full.stats.facts
        );
        // The maintained view and the from-scratch recomputation agree on
        // the post-batch fixpoint size (both rows report the state after
        // the forward batch).
        let maintain = rows
            .iter()
            .find(|r| r.workload == "incremental_tc" && r.engine == "maintain")
            .expect("maintain row");
        let recompute = rows
            .iter()
            .find(|r| r.workload == "incremental_tc" && r.engine == "recompute")
            .expect("recompute row");
        assert_eq!(maintain.facts, recompute.facts, "view diverged");
        let json = render_join_record_json("test", &rows);
        assert!(json.starts_with("{\"label\": \"test\""));
        // Hostile labels are escaped, not interpolated raw.
        let hostile = render_join_record_json("a\"b\\c\n", &rows);
        assert!(hostile.starts_with("{\"label\": \"a\\\"b\\\\c\\u000a\""));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"workload\"").count(), 11);
        // The governed row derives the same fixpoint as the ungoverned
        // linear TC — an unlimited budget never changes the answer.
        let tc = rows
            .iter()
            .find(|r| r.workload == "linear_tc" && r.engine == "indexed")
            .expect("linear_tc row");
        let governed = rows
            .iter()
            .find(|r| r.engine == "governed")
            .expect("governed row");
        assert_eq!(governed.facts, tc.facts);
        assert!(json.contains("\"plan_cache_hits\": 1"));
        assert!(json.contains("\"negative_checks\""));
        assert!(json.contains("\"strata\": 3"));
    }

    #[test]
    fn incremental_workload_batches_are_small_and_invertible() {
        let w = incremental_tc_workload(800);
        assert!(w.flips >= 2, "a mixed batch needs inserts and retracts");
        assert_eq!(w.batch_a.len(), w.flips);
        assert_eq!(w.batch_b.len(), w.flips);
        // The small-batch contract: ≤ 1 % of the base facts per batch.
        assert!(
            w.flips * 100 <= w.base_facts,
            "{} flips exceed 1 % of {} base facts",
            w.flips,
            w.base_facts
        );
        // Applying the forward batch moves the fixpoint; applying its
        // inverse restores it exactly — the oscillation the measured
        // `maintain` row relies on.
        let mut view = mdtw_datalog::Evaluator::new(w.program.clone())
            .expect("semipositive")
            .materialize(&w.structure)
            .expect("indexed engine");
        let initial = view.store().fact_count();
        view.apply(&w.batch_a);
        assert_ne!(view.store().fact_count(), initial);
        let mut recompute = mdtw_datalog::Evaluator::new(w.program.clone()).unwrap();
        assert_eq!(
            view.store().fact_count(),
            recompute.evaluate(&w.mutated).unwrap().store.fact_count(),
            "maintained fixpoint diverged from scratch evaluation"
        );
        view.apply(&w.batch_b);
        assert_eq!(view.store().fact_count(), initial);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let rows = vec![
            Table1Row {
                tw: 3,
                n_att: 3,
                n_fd: 1,
                n_tn: 10,
                md_micros: 42.25,
                mona_micros: Some(7.5),
                limit_checks: 2,
                fuel_spent: 11,
            },
            Table1Row {
                tw: 3,
                n_att: 5,
                n_fd: 2,
                n_tn: 20,
                md_micros: 84.0,
                mona_micros: None,
                limit_checks: 3,
                fuel_spent: 23,
            },
        ];
        let s = render_table1_json(&rows);
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("\"md_us\": 42.2") || s.contains("\"md_us\": 42.3"));
        assert!(s.contains("\"mona_us\": 7.5"));
        assert!(s.contains("\"mona_us\": null"));
        assert!(s.contains("\"limit_checks\": 2"));
        assert!(s.contains("\"fuel_spent\": 23"));
        assert_eq!(s.matches("{\"tw\"").count(), 2);
    }

    #[test]
    fn fd_component_covers_block_tree_instances() {
        // The generated block-tree schemas are FD-connected from the
        // queried attribute, and the governed cross-check really spends
        // fuel and runs checkpoints.
        let inst = row_instance(2);
        let target = inst.schema.attr("u0").expect("u0 exists");
        let (component, limit_checks, fuel_spent) =
            fd_component_readbacks(&inst.encoding.structure, inst.encoding.elem_of_attr(target));
        assert_eq!(
            component,
            inst.schema.attr_count() + inst.schema.fd_count(),
            "every attribute and FD element is FD-connected to u0"
        );
        assert!(limit_checks > 0);
        assert!(fuel_spent > 0);
    }

    #[test]
    fn profiler_overhead_rows_are_identical_across_detail_levels() {
        let rows = profiler_overhead_report(&[60]);
        // 2 workloads × 3 detail levels.
        assert_eq!(rows.len(), 6);
        for workload in ["linear_tc", "stratified_reach"] {
            let per_level: Vec<&JoinBenchRow> =
                rows.iter().filter(|r| r.workload == workload).collect();
            assert_eq!(per_level.len(), 3);
            let off = per_level
                .iter()
                .find(|r| r.engine == "profile_off")
                .expect("off row");
            for r in &per_level {
                // Profiling must never change the fixpoint or the work
                // counters — only observe them.
                assert_eq!(r.facts, off.facts, "{workload}/{}", r.engine);
                assert_eq!(r.stats, off.stats, "{workload}/{}", r.engine);
            }
        }
        let json = render_join_record_json("overhead", &rows);
        assert!(json.contains("\"engine\": \"profile_literals\""));
        assert!(json.contains("\"limit_checks\": 0"));
    }

    #[test]
    fn workload_profiles_round_trip_through_json() {
        use mdtw_datalog::lint::json::{self, Json};
        let rendered = profile_workloads_json(24);
        let value = json::parse(&rendered).expect("emitted profile JSON parses");
        let Json::Arr(items) = &value else {
            panic!("expected an array of workload profiles");
        };
        assert_eq!(items.len(), 2);
        for item in items {
            let profile =
                mdtw_datalog::EvalProfile::from_json(item.get("profile").expect("profile field"))
                    .expect("profile round-trips");
            assert!(!profile.strata.is_empty());
            // Literal detail: every recorded rule carries selectivity
            // observations.
            for s in &profile.strata {
                for r in &s.rules {
                    if r.firings > 0 {
                        assert!(!r.literals.is_empty(), "rule {} has no literals", r.rule);
                    }
                }
            }
        }
    }
}
