//! Machine-readable join-engine performance report.
//!
//! ```text
//! cargo run -p mdtw-bench --bin bench_report --release -- \
//!     [--out PATH] [--sizes N,N,...] [--label LABEL] [--append] \
//!     [--fuel N] [--timeout-ms N] [--profiler-overhead] [--profile FILE.json]
//! ```
//!
//! Runs the `join_indexing`/`engine_linearity` workloads, the 3-stratum
//! `stratified_reach` negation chain and the `magic_point_query`
//! full-vs-demand ablation at fixed chain sizes through the semi-naive
//! and stratified engines and writes one labelled
//! record of rows (ns/eval, ns/derived-fact, work counters) to `--out` (default
//! `BENCH_joins.json`). With `--append`, the record is appended to the
//! records array of an existing report file, so before/after measurements
//! of the same workloads accumulate in one place. I/O problems — an
//! unwritable output path, or an `--append` target that is not a
//! bench_report records file — render an error and exit with code 2
//! (before the measurement runs, where possible) instead of clobbering
//! or silently rewriting data.
//!
//! The `budgeted_tc` row runs the linear-TC workload under an evaluation
//! budget. By default the budget is effectively unlimited (checkpoints
//! run, nothing trips), so the row measures pure governor overhead;
//! `--fuel N` / `--timeout-ms N` replace it with a real budget, and a
//! tripped evaluation records its partial result instead of hanging.
//!
//! `--profiler-overhead` measures the profiler ablation instead of the
//! standard workloads: `linear_tc` and `stratified_reach` at every
//! `ProfileDetail` level, with the level in the engine column
//! (`profile_off` / `profile_rules` / `profile_literals`).
//!
//! `--profile FILE.json` additionally runs both workloads once at full
//! literal detail (at the smallest requested size) and writes the
//! collected `EvalProfile`s to `FILE.json`, after validating that the
//! emitted JSON round-trips through the parser.

use std::process::ExitCode;

const USAGE: &str =
    "usage: bench_report [--out PATH] [--sizes N,N,...] [--label LABEL] [--append]\n\
    \x20                   [--fuel N] [--timeout-ms N] [--profiler-overhead]\n\
    \x20                   [--profile FILE.json]\n\
    \n\
    --out PATH      output file (default BENCH_joins.json)\n\
    --sizes N,N,..  comma-separated chain sizes (default 1000,2000,4000,8000)\n\
    --label LABEL   record label (default `current`)\n\
    --append        append the record to an existing report file\n\
    --fuel N        budget the governed `budgeted_tc` row to N units of work\n\
    --timeout-ms N  deadline for the governed `budgeted_tc` row\n\
    --profiler-overhead  measure the ProfileDetail ablation instead of the workloads\n\
    --profile FILE  write literal-detail EvalProfiles of the workloads to FILE (JSON)";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("bench_report: {message}\n{USAGE}");
    ExitCode::from(2)
}

/// An I/O-level failure (unwritable output, corrupt `--append` target):
/// rendered to stderr, exit code 2 — distinguishable from a measurement
/// failure and safe to pattern-match in CI.
fn io_error(message: &str) -> ExitCode {
    eprintln!("bench_report: {message}");
    ExitCode::from(2)
}

/// The scan engine is superlinear; cap the sizes it is attempted on.
const SCAN_CAP: usize = 1000;

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_joins.json");
    let mut sizes: Vec<usize> = vec![1000, 2000, 4000, 8000];
    let mut label = String::from("current");
    let mut append = false;
    let mut fuel: Option<u64> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut profiler_overhead = false;
    let mut profile_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--append" => append = true,
            "--profiler-overhead" => profiler_overhead = true,
            "--profile" => match args.next() {
                Some(p) => profile_out = Some(p),
                None => return usage_error("--profile requires a path"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => return usage_error("--out requires a path"),
            },
            "--label" => match args.next() {
                Some(l) => label = l,
                None => return usage_error("--label requires a value"),
            },
            "--fuel" | "--timeout-ms" => {
                let flag = arg.clone();
                match args.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) if flag == "--fuel" => fuel = Some(v),
                    Some(v) => timeout_ms = Some(v),
                    None => return usage_error(&format!("{flag} requires a nonnegative integer")),
                }
            }
            "--sizes" => match args.next() {
                Some(list) => {
                    let parsed: Result<Vec<usize>, _> = list.split(',').map(str::parse).collect();
                    match parsed {
                        Ok(v) if !v.is_empty() && v.iter().all(|&n| n >= 2) => sizes = v,
                        _ => return usage_error(&format!("malformed --sizes `{list}`")),
                    }
                }
                None => return usage_error("--sizes requires a list"),
            },
            s => return usage_error(&format!("unknown argument `{s}`")),
        }
    }

    // Fail fast if any inline workload program regressed: spanned MD0xx
    // diagnostics beat a panic (or a silently wrong fixpoint) mid-run.
    match mdtw_bench::preflight() {
        Err(diagnostics) => {
            eprintln!(
                "bench_report: workload program rejected by static analysis\n\n{diagnostics}"
            );
            return ExitCode::from(2);
        }
        Ok(warnings) => {
            for w in warnings {
                eprintln!("{w}\n");
            }
        }
    }

    // Resolve the output file *before* the measurement runs: a corrupt
    // `--append` target or an unreadable path should cost an error
    // message, not minutes of discarded bench work. A missing file is
    // fine — the record starts a fresh report.
    let existing = if append {
        match std::fs::read_to_string(&out_path) {
            Ok(text) => {
                if splice_record(&text, "{}").is_none() {
                    return io_error(&format!(
                        "`{out_path}` is not a bench_report records file; refusing to \
                         append (fix or remove the file, or drop --append to rewrite it)"
                    ));
                }
                Some(text)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return io_error(&format!("cannot read `{out_path}`: {e}")),
        }
    } else {
        None
    };

    let limits = if fuel.is_some() || timeout_ms.is_some() {
        let mut l = mdtw_datalog::EvalLimits::new();
        if let Some(f) = fuel {
            l = l.fuel(f);
        }
        if let Some(ms) = timeout_ms {
            l = l.deadline(std::time::Duration::from_millis(ms));
        }
        Some(l)
    } else {
        None
    };
    let rows = if profiler_overhead {
        eprintln!("bench_report: measuring profiler-overhead ablation at sizes {sizes:?}…");
        mdtw_bench::profiler_overhead_report(&sizes)
    } else {
        eprintln!("bench_report: measuring sizes {sizes:?} (scan baseline capped at {SCAN_CAP})…");
        mdtw_bench::join_report_with_limits(&sizes, SCAN_CAP, limits.as_ref())
    };
    let record = mdtw_bench::render_join_record_json(&label, &rows);

    if let Some(profile_path) = &profile_out {
        let n = sizes.iter().copied().min().expect("sizes is non-empty");
        let rendered = mdtw_bench::profile_workloads_json(n);
        if let Err(e) = validate_profiles(&rendered) {
            eprintln!("bench_report: emitted profile JSON is invalid: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(profile_path, rendered + "\n") {
            return io_error(&format!("cannot write `{profile_path}`: {e}"));
        }
        eprintln!("bench_report: wrote workload profiles (n={n}) to {profile_path}");
    }

    let report = match &existing {
        Some(text) => splice_record(text, &record)
            .expect("append target validated before the measurement ran"),
        None => fresh_report(&record),
    };

    if let Err(e) = std::fs::write(&out_path, &report) {
        return io_error(&format!("cannot write `{out_path}`: {e}"));
    }
    for r in &rows {
        eprintln!(
            "  {:>16}/{:<8} n={:<6} facts={:<9} {:>10.1} ns/fact",
            r.workload, r.engine, r.n, r.facts, r.ns_per_fact
        );
    }
    eprintln!("bench_report: wrote {out_path}");
    ExitCode::SUCCESS
}

fn fresh_report(record: &str) -> String {
    format!("{{\"records\": [\n  {record}\n]}}\n")
}

/// Round-trip check of a `--profile` payload: the rendered text must
/// parse back through the dependency-free JSON parser, and each entry's
/// `profile` object must deserialize into an `EvalProfile`.
fn validate_profiles(rendered: &str) -> Result<(), String> {
    use mdtw_datalog::lint::json::{self, Json};
    let value = json::parse(rendered)?;
    let Json::Arr(items) = &value else {
        return Err("expected a JSON array of workload profiles".into());
    };
    for item in items {
        let profile = item
            .get("profile")
            .ok_or_else(|| "entry is missing its `profile` field".to_owned())?;
        mdtw_datalog::EvalProfile::from_json(profile)?;
    }
    Ok(())
}

/// Appends `record` to the records array of an existing report. The file
/// is always produced by this bin, so the splice point is the exact
/// closing text written by [`fresh_report`].
fn splice_record(existing: &str, record: &str) -> Option<String> {
    let trimmed = existing.trim_end();
    let body = trimmed.strip_suffix("\n]}")?;
    Some(format!("{body},\n  {record}\n]}}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_splices_into_records_array() {
        let first = fresh_report("{\"label\": \"a\", \"rows\": []}");
        let merged = splice_record(&first, "{\"label\": \"b\", \"rows\": []}").unwrap();
        assert_eq!(merged.matches("\"label\"").count(), 2);
        assert!(merged.trim_end().ends_with("]}"));
        // A third append still works on the merged output.
        let merged = splice_record(&merged, "{\"label\": \"c\", \"rows\": []}").unwrap();
        assert_eq!(merged.matches("\"label\"").count(), 3);
        // Arbitrary text is rejected rather than corrupted.
        assert!(splice_record("not a report", "{}").is_none());
    }
}
