//! Regenerates the paper's Table 1 (§6): PRIMALITY processing time,
//! monadic datalog vs MSO model checking (the MONA substitute).
//!
//! ```text
//! cargo run -p mdtw-bench --bin table1 --release [mona_rows]
//! ```
//!
//! `mona_rows` (default 4) caps how many rows the exponential baseline is
//! attempted on; rows beyond its budget print "-" like the paper's
//! out-of-memory entries.

fn main() {
    let mona_rows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    eprintln!("regenerating Table 1 (PRIMALITY, tw = 3); this runs the");
    eprintln!("exponential MSO baseline on the first {mona_rows} rows…");
    let rows = mdtw_bench::table1(mona_rows);
    println!("{}", mdtw_bench::render_table1(&rows));
    let linear_check: Vec<f64> = rows.iter().map(|r| r.md_micros / r.n_tn as f64).collect();
    println!(
        "MD microseconds per tree node (flat ⇒ linear data complexity): {:?}",
        linear_check
            .iter()
            .map(|x| (x * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
}
