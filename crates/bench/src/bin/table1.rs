//! Regenerates the paper's Table 1 (§6): PRIMALITY processing time,
//! monadic datalog vs MSO model checking (the MONA substitute).
//!
//! ```text
//! cargo run -p mdtw-bench --bin table1 --release [--json] [mona_rows]
//! ```
//!
//! `mona_rows` (default 4) caps how many rows the exponential baseline is
//! attempted on; rows beyond its budget print "-" like the paper's
//! out-of-memory entries. A malformed `mona_rows` is a usage error (exit
//! code 2), not a silent fallback to the default.
//!
//! `--json` emits the rows as a machine-readable JSON array (one object
//! per row) so the performance trajectory can be tracked across commits.

use std::process::ExitCode;

const USAGE: &str = "usage: table1 [--json] [mona_rows]\n\
    \n\
    mona_rows   non-negative integer (default 4): how many rows to\n\
    \x20           attempt the exponential MSO baseline on\n\
    --json      emit machine-readable JSON rows on stdout";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("table1: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            s if s.starts_with('-') => {
                return usage_error(&format!("unknown flag `{s}`"));
            }
            s => positional.push(s.to_owned()),
        }
    }
    if positional.len() > 1 {
        return usage_error(&format!(
            "expected at most one positional argument, got {}",
            positional.len()
        ));
    }
    let mona_rows: usize = match positional.first() {
        None => 4,
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => {
                return usage_error(&format!("malformed mona_rows `{s}`"));
            }
        },
    };

    // Fail fast if any inline workload program regressed: spanned MD0xx
    // diagnostics beat a panic (or a silently wrong fixpoint) mid-run.
    match mdtw_bench::preflight() {
        Err(diagnostics) => {
            eprintln!("table1: workload program rejected by static analysis\n\n{diagnostics}");
            return ExitCode::from(2);
        }
        Ok(warnings) => {
            for w in warnings {
                eprintln!("{w}\n");
            }
        }
    }

    eprintln!("regenerating Table 1 (PRIMALITY, tw = 3); this runs the");
    eprintln!("exponential MSO baseline on the first {mona_rows} rows…");
    let rows = mdtw_bench::table1(mona_rows);
    if json {
        println!("{}", mdtw_bench::render_table1_json(&rows));
        return ExitCode::SUCCESS;
    }
    println!("{}", mdtw_bench::render_table1(&rows));
    let linear_check: Vec<f64> = rows.iter().map(|r| r.md_micros / r.n_tn as f64).collect();
    println!(
        "MD microseconds per tree node (flat ⇒ linear data complexity): {:?}",
        linear_check
            .iter()
            .map(|x| (x * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    ExitCode::SUCCESS
}
