//! Nondeterministic bottom-up finite tree automata (NFTA).
//!
//! The FTA layer underlying the classical route to Courcelle's Theorem
//! (Thatcher–Wright / Doner, [29, 6] in the paper): MSO over trees equals
//! tree-automata recognizability. Running an NFTA over an input tree is
//! linear via on-the-fly subset simulation; building a *deterministic*
//! automaton (what MONA does internally) lives in the [`determinize`](mod@crate::determinize) module
//! and is where the state explosion happens.

use crate::tree::{ColoredTree, Symbol};
use mdtw_structure::fx::{FxHashMap, FxHashSet};

/// An automaton state.
pub type State = u32;

/// A nondeterministic bottom-up tree automaton.
#[derive(Debug, Clone, Default)]
pub struct Nfta {
    /// Number of states (states are `0..n_states`).
    pub n_states: u32,
    /// Leaf transitions: symbol → possible states.
    pub leaf: FxHashMap<Symbol, Vec<State>>,
    /// Unary transitions: (symbol, child state) → possible states.
    pub unary: FxHashMap<(Symbol, State), Vec<State>>,
    /// Binary transitions: (symbol, left, right) → possible states.
    pub binary: FxHashMap<(Symbol, State, State), Vec<State>>,
    /// Accepting (final) states.
    pub finals: FxHashSet<State>,
}

impl Nfta {
    /// Runs the automaton, returning the set of states reachable at the
    /// root (on-the-fly subset simulation; linear in `|tree| · |Q|²`).
    pub fn run(&self, tree: &ColoredTree) -> FxHashSet<State> {
        let mut state_sets: Vec<FxHashSet<State>> = vec![FxHashSet::default(); tree.len()];
        for i in tree.post_order() {
            let node = tree.node(i);
            let mut here = FxHashSet::default();
            match node.children.len() {
                0 => {
                    if let Some(qs) = self.leaf.get(&node.symbol) {
                        here.extend(qs.iter().copied());
                    }
                }
                1 => {
                    let child = &state_sets[node.children[0] as usize];
                    for &q in child {
                        if let Some(qs) = self.unary.get(&(node.symbol, q)) {
                            here.extend(qs.iter().copied());
                        }
                    }
                }
                2 => {
                    let left = &state_sets[node.children[0] as usize];
                    let right = &state_sets[node.children[1] as usize];
                    for &q1 in left {
                        for &q2 in right {
                            if let Some(qs) = self.binary.get(&(node.symbol, q1, q2)) {
                                here.extend(qs.iter().copied());
                            }
                        }
                    }
                }
                _ => unreachable!("colored trees are binary"),
            }
            state_sets[i as usize] = here;
        }
        std::mem::take(&mut state_sets[tree.root() as usize])
    }

    /// True if some accepting state is reachable at the root.
    pub fn accepts(&self, tree: &ColoredTree) -> bool {
        self.run(tree).iter().any(|q| self.finals.contains(q))
    }

    /// Total number of transitions (a size measure).
    pub fn transition_count(&self) -> usize {
        self.leaf.values().map(Vec::len).sum::<usize>()
            + self.unary.values().map(Vec::len).sum::<usize>()
            + self.binary.values().map(Vec::len).sum::<usize>()
    }

    /// The set of states reachable from leaves over the given alphabet
    /// (emptiness analysis: the language is nonempty iff a final state is
    /// reachable).
    pub fn reachable_states(&self, alphabet: &[(Symbol, u8)]) -> FxHashSet<State> {
        let mut reach: FxHashSet<State> = FxHashSet::default();
        for &(sym, rank) in alphabet {
            if rank == 0 {
                if let Some(qs) = self.leaf.get(&sym) {
                    reach.extend(qs.iter().copied());
                }
            }
        }
        loop {
            let snapshot: Vec<State> = reach.iter().copied().collect();
            let before = reach.len();
            for &(sym, rank) in alphabet {
                match rank {
                    1 => {
                        for &q in &snapshot {
                            if let Some(qs) = self.unary.get(&(sym, q)) {
                                reach.extend(qs.iter().copied());
                            }
                        }
                    }
                    2 => {
                        for &q1 in &snapshot {
                            for &q2 in &snapshot {
                                if let Some(qs) = self.binary.get(&(sym, q1, q2)) {
                                    reach.extend(qs.iter().copied());
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            if reach.len() == before {
                break;
            }
        }
        reach
    }

    /// True if the automaton accepts no tree over `alphabet`.
    pub fn is_empty(&self, alphabet: &[(Symbol, u8)]) -> bool {
        !self
            .reachable_states(alphabet)
            .iter()
            .any(|q| self.finals.contains(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::CtNode;

    /// An automaton over {a/0, f/1, g/2} accepting trees with an even
    /// number of `f` nodes. States: 0 = even, 1 = odd.
    fn parity() -> Nfta {
        let mut a = Nfta {
            n_states: 2,
            ..Default::default()
        };
        a.leaf.insert(0, vec![0]);
        a.unary.insert((1, 0), vec![1]);
        a.unary.insert((1, 1), vec![0]);
        // g combines parities by xor.
        a.binary.insert((2, 0, 0), vec![0]);
        a.binary.insert((2, 0, 1), vec![1]);
        a.binary.insert((2, 1, 0), vec![1]);
        a.binary.insert((2, 1, 1), vec![0]);
        a.finals.insert(0);
        a
    }

    fn tree_ffa() -> ColoredTree {
        // f(f(a)): two f's → even.
        ColoredTree::from_nodes(
            vec![
                CtNode {
                    symbol: 0,
                    children: vec![],
                },
                CtNode {
                    symbol: 1,
                    children: vec![0],
                },
                CtNode {
                    symbol: 1,
                    children: vec![1],
                },
            ],
            2,
        )
    }

    fn tree_g_fa_a() -> ColoredTree {
        // g(f(a), a): one f → odd.
        ColoredTree::from_nodes(
            vec![
                CtNode {
                    symbol: 0,
                    children: vec![],
                },
                CtNode {
                    symbol: 1,
                    children: vec![0],
                },
                CtNode {
                    symbol: 0,
                    children: vec![],
                },
                CtNode {
                    symbol: 2,
                    children: vec![1, 2],
                },
            ],
            3,
        )
    }

    #[test]
    fn parity_automaton_runs() {
        let a = parity();
        assert!(a.accepts(&tree_ffa()));
        assert!(!a.accepts(&tree_g_fa_a()));
    }

    #[test]
    fn reachability_and_emptiness() {
        let a = parity();
        let alphabet = vec![(0, 0), (1, 1), (2, 2)];
        let reach = a.reachable_states(&alphabet);
        assert_eq!(reach.len(), 2);
        assert!(!a.is_empty(&alphabet));
        // Without the leaf symbol nothing is reachable.
        let no_leaf = vec![(1, 1), (2, 2)];
        assert!(a.is_empty(&no_leaf));
    }

    #[test]
    fn nondeterminism_unions_states() {
        let mut a = Nfta {
            n_states: 2,
            ..Default::default()
        };
        a.leaf.insert(0, vec![0, 1]);
        a.finals.insert(1);
        let t = ColoredTree::from_nodes(
            vec![CtNode {
                symbol: 0,
                children: vec![],
            }],
            0,
        );
        assert_eq!(a.run(&t).len(), 2);
        assert!(a.accepts(&t));
    }

    #[test]
    fn missing_transitions_reject() {
        let a = parity();
        // Unknown leaf symbol 9: no run.
        let t = ColoredTree::from_nodes(
            vec![CtNode {
                symbol: 9,
                children: vec![],
            }],
            0,
        );
        assert!(a.run(&t).is_empty());
        assert!(!a.accepts(&t));
    }
}
