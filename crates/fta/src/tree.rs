//! Colored binary trees: the input language of bottom-up tree automata.
//!
//! The classical MSO-to-FTA route (paper §1, [2, 13]) first translates a
//! structure plus tree decomposition into a *colored tree* whose node
//! symbols describe the bag-local information; the MSO evaluation problem
//! then becomes tree-language recognition. This module provides the tree
//! type plus the encoding of a nice tree decomposition.

use mdtw_decomp::{NiceTd, NodeId};

/// An interned alphabet symbol.
pub type Symbol = u32;

/// One node of a colored tree (at most two children).
#[derive(Debug, Clone)]
pub struct CtNode {
    /// The node's symbol.
    pub symbol: Symbol,
    /// Children (0, 1 or 2).
    pub children: Vec<u32>,
}

/// A rooted colored tree with ≤ 2 children per node.
#[derive(Debug, Clone)]
pub struct ColoredTree {
    nodes: Vec<CtNode>,
    root: u32,
}

impl ColoredTree {
    /// Builds a tree isomorphic to `td` with symbols chosen by `color`.
    pub fn of_nice_td(td: &NiceTd, mut color: impl FnMut(NodeId) -> Symbol) -> Self {
        let nodes: Vec<CtNode> = td
            .node_ids()
            .map(|id| CtNode {
                symbol: color(id),
                children: td.node(id).children.iter().map(|c| c.0).collect(),
            })
            .collect();
        Self {
            nodes,
            root: td.root().0,
        }
    }

    /// Builds a tree from explicit nodes.
    ///
    /// # Panics
    /// Panics if a child index is out of range or a node has > 2 children.
    pub fn from_nodes(nodes: Vec<CtNode>, root: u32) -> Self {
        for n in &nodes {
            assert!(n.children.len() <= 2, "colored trees are binary");
            for &c in &n.children {
                assert!((c as usize) < nodes.len(), "dangling child");
            }
        }
        assert!((root as usize) < nodes.len());
        Self { nodes, root }
    }

    /// The root index.
    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node access.
    #[inline]
    pub fn node(&self, i: u32) -> &CtNode {
        &self.nodes[i as usize]
    }

    /// Post-order traversal (children before parents).
    pub fn post_order(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, 0usize)];
        while let Some(last) = stack.len().checked_sub(1) {
            let (node, cursor) = stack[last];
            let children = &self.nodes[node as usize].children;
            if cursor < children.len() {
                stack[last].1 += 1;
                stack.push((children[cursor], 0));
            } else {
                out.push(node);
                stack.pop();
            }
        }
        out
    }

    /// All distinct symbols with their observed ranks `(symbol, rank)`.
    pub fn alphabet(&self) -> Vec<(Symbol, u8)> {
        let mut seen: Vec<(Symbol, u8)> = self
            .nodes
            .iter()
            .map(|n| (n.symbol, n.children.len() as u8))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(symbol: Symbol) -> CtNode {
        CtNode {
            symbol,
            children: vec![],
        }
    }

    #[test]
    fn build_and_traverse() {
        // f(a, g(a))
        let nodes = vec![
            leaf(0), // 0: a
            leaf(0), // 1: a
            CtNode {
                symbol: 1,
                children: vec![1],
            }, // 2: g(a)
            CtNode {
                symbol: 2,
                children: vec![0, 2],
            }, // 3: f(a, g(a))
        ];
        let t = ColoredTree::from_nodes(nodes, 3);
        assert_eq!(t.len(), 4);
        let po = t.post_order();
        assert_eq!(*po.last().unwrap(), 3);
        assert_eq!(t.alphabet(), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn ternary_rejected() {
        let nodes = vec![
            leaf(0),
            leaf(0),
            leaf(0),
            CtNode {
                symbol: 1,
                children: vec![0, 1, 2],
            },
        ];
        ColoredTree::from_nodes(nodes, 3);
    }

    #[test]
    fn of_nice_td_shape() {
        use mdtw_decomp::{NiceOptions, TreeDecomposition};
        use mdtw_structure::ElemId;
        let mut td = TreeDecomposition::singleton(vec![ElemId(0), ElemId(1)]);
        td.add_child(td.root(), vec![ElemId(1)]);
        td.add_child(td.root(), vec![ElemId(0)]);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        let tree = ColoredTree::of_nice_td(&nice, |id| id.0);
        assert_eq!(tree.len(), nice.len());
        assert_eq!(tree.post_order().len(), nice.len());
    }
}
