//! Determinization — the step where MONA-style pipelines explode.
//!
//! The subset construction makes the automaton *total and deterministic*
//! over a given alphabet: DFTA states are sets of NFTA states, and the
//! transition tables are completed for **every** symbol and every (pair
//! of) reachable subset state(s). The paper's §1 and §6 recount how this
//! is precisely the "state explosion" that sinks the MSO-to-FTA approach
//! in practice (\[15, 26\]); the explicit [`DetBudget`] turns that blow-up
//! into a reportable condition instead of an out-of-memory crash.

use crate::automaton::{Nfta, State};
use crate::tree::{ColoredTree, Symbol};
use mdtw_structure::fx::FxHashMap;

/// Resource budget for determinization.
#[derive(Debug, Clone, Copy)]
pub struct DetBudget {
    /// Maximum number of subset states.
    pub max_states: usize,
    /// Maximum number of transition-table entries.
    pub max_transitions: usize,
}

impl Default for DetBudget {
    fn default() -> Self {
        Self {
            max_states: 1 << 16,
            max_transitions: 1 << 22,
        }
    }
}

/// Determinization failure: the automaton exceeded the budget (the
/// "out-of-memory" outcome of the paper's MONA experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploded {
    /// Subset states built before giving up.
    pub states: usize,
    /// Transitions built before giving up.
    pub transitions: usize,
}

impl std::fmt::Display for Exploded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "determinization exploded: {} states, {} transitions",
            self.states, self.transitions
        )
    }
}

impl std::error::Error for Exploded {}

/// A deterministic, total bottom-up tree automaton over an explicit
/// alphabet. States are `0..n_states`; state 0 need not be special.
#[derive(Debug, Clone)]
pub struct Dfta {
    /// Number of states.
    pub n_states: usize,
    /// The alphabet `(symbol, rank)` the automaton is total over.
    pub alphabet: Vec<(Symbol, u8)>,
    /// Leaf table: symbol → state.
    pub leaf: FxHashMap<Symbol, u32>,
    /// Unary table: (symbol, child) → state.
    pub unary: FxHashMap<(Symbol, u32), u32>,
    /// Binary table: (symbol, left, right) → state.
    pub binary: FxHashMap<(Symbol, u32, u32), u32>,
    /// Acceptance per state.
    pub accepting: Vec<bool>,
}

impl Dfta {
    /// Runs the automaton (deterministic, linear in the tree size).
    /// Returns the root state, or `None` on a symbol outside the alphabet.
    pub fn run(&self, tree: &ColoredTree) -> Option<u32> {
        let mut states: Vec<u32> = vec![0; tree.len()];
        for i in tree.post_order() {
            let node = tree.node(i);
            let q = match node.children.len() {
                0 => *self.leaf.get(&node.symbol)?,
                1 => *self
                    .unary
                    .get(&(node.symbol, states[node.children[0] as usize]))?,
                2 => *self.binary.get(&(
                    node.symbol,
                    states[node.children[0] as usize],
                    states[node.children[1] as usize],
                ))?,
                _ => unreachable!("colored trees are binary"),
            };
            states[i as usize] = q;
        }
        Some(states[tree.root() as usize])
    }

    /// Acceptance test.
    pub fn accepts(&self, tree: &ColoredTree) -> bool {
        self.run(tree).is_some_and(|q| self.accepting[q as usize])
    }

    /// Transition-table size.
    pub fn transition_count(&self) -> usize {
        self.leaf.len() + self.unary.len() + self.binary.len()
    }
}

/// Subset construction over `alphabet`, with budget.
pub fn determinize(
    nfta: &Nfta,
    alphabet: &[(Symbol, u8)],
    budget: DetBudget,
) -> Result<Dfta, Exploded> {
    // Subset states, canonically sorted.
    let mut subsets: Vec<Vec<State>> = Vec::new();
    let mut index: FxHashMap<Vec<State>, u32> = FxHashMap::default();
    let intern = |set: Vec<State>,
                  subsets: &mut Vec<Vec<State>>,
                  index: &mut FxHashMap<Vec<State>, u32>|
     -> u32 {
        if let Some(&i) = index.get(&set) {
            return i;
        }
        let i = subsets.len() as u32;
        index.insert(set.clone(), i);
        subsets.push(set);
        i
    };

    let mut dfta = Dfta {
        n_states: 0,
        alphabet: alphabet.to_vec(),
        leaf: FxHashMap::default(),
        unary: FxHashMap::default(),
        binary: FxHashMap::default(),
        accepting: Vec::new(),
    };

    // Leaf states.
    for &(sym, rank) in alphabet {
        if rank != 0 {
            continue;
        }
        let mut set: Vec<State> = nfta.leaf.get(&sym).cloned().unwrap_or_default();
        set.sort_unstable();
        set.dedup();
        let i = intern(set, &mut subsets, &mut index);
        dfta.leaf.insert(sym, i);
    }

    // Saturate: totality means every (symbol, state…) combination gets an
    // entry — the cross product that blows up.
    let mut processed = 0usize;
    while processed < subsets.len() {
        if subsets.len() > budget.max_states || dfta.transition_count() > budget.max_transitions {
            return Err(Exploded {
                states: subsets.len(),
                transitions: dfta.transition_count(),
            });
        }
        // Process all symbols against the newly added subset(s).
        let upto = subsets.len();
        for si in 0..upto {
            for &(sym, rank) in alphabet {
                match rank {
                    1 => {
                        if dfta.unary.contains_key(&(sym, si as u32)) {
                            continue;
                        }
                        let mut out: Vec<State> = Vec::new();
                        for &q in &subsets[si] {
                            if let Some(qs) = nfta.unary.get(&(sym, q)) {
                                out.extend(qs.iter().copied());
                            }
                        }
                        out.sort_unstable();
                        out.dedup();
                        let t = intern(out, &mut subsets, &mut index);
                        dfta.unary.insert((sym, si as u32), t);
                    }
                    2 => {
                        for sj in 0..upto {
                            for (a, b) in [(si, sj), (sj, si)] {
                                if dfta.binary.contains_key(&(sym, a as u32, b as u32)) {
                                    continue;
                                }
                                let mut out: Vec<State> = Vec::new();
                                for &q1 in &subsets[a] {
                                    for &q2 in &subsets[b] {
                                        if let Some(qs) = nfta.binary.get(&(sym, q1, q2)) {
                                            out.extend(qs.iter().copied());
                                        }
                                    }
                                }
                                out.sort_unstable();
                                out.dedup();
                                let t = intern(out, &mut subsets, &mut index);
                                dfta.binary.insert((sym, a as u32, b as u32), t);
                            }
                        }
                    }
                    _ => {}
                }
                if subsets.len() > budget.max_states
                    || dfta.transition_count() > budget.max_transitions
                {
                    return Err(Exploded {
                        states: subsets.len(),
                        transitions: dfta.transition_count(),
                    });
                }
            }
        }
        processed = upto;
    }

    dfta.n_states = subsets.len();
    dfta.accepting = subsets
        .iter()
        .map(|set| set.iter().any(|q| nfta.finals.contains(q)))
        .collect();
    Ok(dfta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::CtNode;

    fn parity() -> (Nfta, Vec<(Symbol, u8)>) {
        let mut a = Nfta {
            n_states: 2,
            ..Default::default()
        };
        a.leaf.insert(0, vec![0]);
        a.unary.insert((1, 0), vec![1]);
        a.unary.insert((1, 1), vec![0]);
        a.binary.insert((2, 0, 0), vec![0]);
        a.binary.insert((2, 0, 1), vec![1]);
        a.binary.insert((2, 1, 0), vec![1]);
        a.binary.insert((2, 1, 1), vec![0]);
        a.finals.insert(0);
        (a, vec![(0, 0), (1, 1), (2, 2)])
    }

    #[test]
    fn determinized_agrees_with_nfta() {
        let (nfta, alphabet) = parity();
        let dfta = determinize(&nfta, &alphabet, DetBudget::default()).unwrap();
        let trees = [
            ColoredTree::from_nodes(
                vec![CtNode {
                    symbol: 0,
                    children: vec![],
                }],
                0,
            ),
            ColoredTree::from_nodes(
                vec![
                    CtNode {
                        symbol: 0,
                        children: vec![],
                    },
                    CtNode {
                        symbol: 1,
                        children: vec![0],
                    },
                ],
                1,
            ),
            ColoredTree::from_nodes(
                vec![
                    CtNode {
                        symbol: 0,
                        children: vec![],
                    },
                    CtNode {
                        symbol: 1,
                        children: vec![0],
                    },
                    CtNode {
                        symbol: 0,
                        children: vec![],
                    },
                    CtNode {
                        symbol: 2,
                        children: vec![1, 2],
                    },
                ],
                3,
            ),
        ];
        for (i, t) in trees.iter().enumerate() {
            assert_eq!(dfta.accepts(t), nfta.accepts(t), "tree {i}");
        }
    }

    #[test]
    fn dfta_is_total_over_alphabet() {
        let (nfta, alphabet) = parity();
        let dfta = determinize(&nfta, &alphabet, DetBudget::default()).unwrap();
        // Every (symbol, state) and (symbol, state, state) combination has
        // an entry.
        for s in 0..dfta.n_states as u32 {
            assert!(dfta.unary.contains_key(&(1, s)));
            for s2 in 0..dfta.n_states as u32 {
                assert!(dfta.binary.contains_key(&(2, s, s2)));
            }
        }
    }

    #[test]
    fn budget_is_enforced() {
        let (nfta, alphabet) = parity();
        let err = determinize(
            &nfta,
            &alphabet,
            DetBudget {
                max_states: 1,
                max_transitions: 1,
            },
        )
        .unwrap_err();
        assert!(err.states >= 1 || err.transitions >= 1);
    }
}
