//! Boolean operations on deterministic tree automata.
//!
//! The MSO-to-FTA compilation translates connectives into automata
//! operations: conjunction = product, negation = complement (which needs
//! determinism and totality — another reason MONA must determinize).

use crate::determinize::Dfta;
use crate::tree::Symbol;
use mdtw_structure::fx::FxHashMap;

/// Complement: flips acceptance. Sound because [`Dfta`]s are total over
/// their alphabet.
pub fn complement(d: &Dfta) -> Dfta {
    let mut out = d.clone();
    for a in &mut out.accepting {
        *a = !*a;
    }
    out
}

/// Product construction; `conj` selects intersection (`true`) or union.
///
/// # Panics
/// Panics if the alphabets differ.
pub fn product(d1: &Dfta, d2: &Dfta, conj: bool) -> Dfta {
    assert_eq!(d1.alphabet, d2.alphabet, "product needs a common alphabet");
    let pair = |a: u32, b: u32| -> u32 { a * d2.n_states as u32 + b };
    let n = d1.n_states * d2.n_states;
    let mut leaf: FxHashMap<Symbol, u32> = FxHashMap::default();
    for (&sym, &q1) in &d1.leaf {
        let q2 = d2.leaf[&sym];
        leaf.insert(sym, pair(q1, q2));
    }
    let mut unary: FxHashMap<(Symbol, u32), u32> = FxHashMap::default();
    for &(sym, _) in d1.alphabet.iter().filter(|&&(_, r)| r == 1) {
        for a in 0..d1.n_states as u32 {
            for b in 0..d2.n_states as u32 {
                let t1 = d1.unary[&(sym, a)];
                let t2 = d2.unary[&(sym, b)];
                unary.insert((sym, pair(a, b)), pair(t1, t2));
            }
        }
    }
    let mut binary: FxHashMap<(Symbol, u32, u32), u32> = FxHashMap::default();
    for &(sym, _) in d1.alphabet.iter().filter(|&&(_, r)| r == 2) {
        for a1 in 0..d1.n_states as u32 {
            for b1 in 0..d2.n_states as u32 {
                for a2 in 0..d1.n_states as u32 {
                    for b2 in 0..d2.n_states as u32 {
                        let t1 = d1.binary[&(sym, a1, a2)];
                        let t2 = d2.binary[&(sym, b1, b2)];
                        binary.insert((sym, pair(a1, b1), pair(a2, b2)), pair(t1, t2));
                    }
                }
            }
        }
    }
    let mut accepting = vec![false; n];
    for a in 0..d1.n_states {
        for b in 0..d2.n_states {
            let acc = if conj {
                d1.accepting[a] && d2.accepting[b]
            } else {
                d1.accepting[a] || d2.accepting[b]
            };
            accepting[a * d2.n_states + b] = acc;
        }
    }
    Dfta {
        n_states: n,
        alphabet: d1.alphabet.clone(),
        leaf,
        unary,
        binary,
        accepting,
    }
}

/// True if no accepting state is reachable (language emptiness).
pub fn is_empty(d: &Dfta) -> bool {
    let mut reach = vec![false; d.n_states];
    for &q in d.leaf.values() {
        reach[q as usize] = true;
    }
    loop {
        let mut changed = false;
        for (&(_, q), &t) in &d.unary {
            if reach[q as usize] && !reach[t as usize] {
                reach[t as usize] = true;
                changed = true;
            }
        }
        for (&(_, q1, q2), &t) in &d.binary {
            if reach[q1 as usize] && reach[q2 as usize] && !reach[t as usize] {
                reach[t as usize] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    !reach.iter().zip(&d.accepting).any(|(&r, &a)| r && a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Nfta;
    use crate::determinize::{determinize, DetBudget};
    use crate::tree::{ColoredTree, CtNode};

    /// Parity-of-f automaton (deterministic after subset construction).
    fn parity_dfta(accept_even: bool) -> Dfta {
        let mut a = Nfta {
            n_states: 2,
            ..Default::default()
        };
        a.leaf.insert(0, vec![0]);
        a.unary.insert((1, 0), vec![1]);
        a.unary.insert((1, 1), vec![0]);
        a.binary.insert((2, 0, 0), vec![0]);
        a.binary.insert((2, 0, 1), vec![1]);
        a.binary.insert((2, 1, 0), vec![1]);
        a.binary.insert((2, 1, 1), vec![0]);
        a.finals.insert(if accept_even { 0 } else { 1 });
        determinize(&a, &[(0, 0), (1, 1), (2, 2)], DetBudget::default()).unwrap()
    }

    fn sample_trees() -> Vec<ColoredTree> {
        vec![
            ColoredTree::from_nodes(
                vec![CtNode {
                    symbol: 0,
                    children: vec![],
                }],
                0,
            ),
            ColoredTree::from_nodes(
                vec![
                    CtNode {
                        symbol: 0,
                        children: vec![],
                    },
                    CtNode {
                        symbol: 1,
                        children: vec![0],
                    },
                ],
                1,
            ),
            ColoredTree::from_nodes(
                vec![
                    CtNode {
                        symbol: 0,
                        children: vec![],
                    },
                    CtNode {
                        symbol: 1,
                        children: vec![0],
                    },
                    CtNode {
                        symbol: 1,
                        children: vec![1],
                    },
                    CtNode {
                        symbol: 0,
                        children: vec![],
                    },
                    CtNode {
                        symbol: 2,
                        children: vec![2, 3],
                    },
                ],
                4,
            ),
        ]
    }

    #[test]
    fn complement_flips_acceptance() {
        let even = parity_dfta(true);
        let not_even = complement(&even);
        for t in sample_trees() {
            assert_eq!(even.accepts(&t), !not_even.accepts(&t));
        }
    }

    #[test]
    fn product_intersection_and_union() {
        let even = parity_dfta(true);
        let odd = parity_dfta(false);
        let both = product(&even, &odd, true);
        let either = product(&even, &odd, false);
        for t in sample_trees() {
            assert!(!both.accepts(&t), "even ∧ odd is empty");
            assert!(either.accepts(&t), "even ∨ odd is everything");
        }
    }

    #[test]
    fn emptiness_detection() {
        let even = parity_dfta(true);
        let odd = parity_dfta(false);
        assert!(!is_empty(&even));
        assert!(is_empty(&product(&even, &odd, true)));
        assert!(!is_empty(&product(&even, &odd, false)));
    }
}
