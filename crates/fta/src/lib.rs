//! # mdtw-fta
//!
//! Bottom-up finite tree automata for the *Monadic Datalog over Finite
//! Structures with Bounded Treewidth* reproduction: the classical
//! MSO-to-FTA route to Courcelle's Theorem that the paper's monadic
//! datalog approach replaces.
//!
//! * [`tree`] — colored binary trees encoding nice tree decompositions;
//! * [`automaton`] — nondeterministic bottom-up tree automata with
//!   linear-time on-the-fly runs;
//! * [`determinize`](mod@crate::determinize) — the subset construction over a full alphabet, with
//!   an explicit budget: this is where MONA-style pipelines suffer the
//!   "state explosion" of the paper's §1/§6;
//! * [`ops`] — product / complement / emptiness (the connective layer of
//!   MSO-to-FTA compilation);
//! * [`three_col`] — the 3-Colorability automaton: nondeterministic runs
//!   reproduce Figure 5, determinization-first reproduces the baseline's
//!   blow-up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod determinize;
pub mod ops;
pub mod three_col;
pub mod tree;

pub use automaton::{Nfta, State};
pub use determinize::{determinize, DetBudget, Dfta, Exploded};
pub use ops::{complement, is_empty, product};
pub use three_col::{
    encode_three_col, full_alphabet, mona_style_3col, nfta_3col, three_col_nfta, SymbolTable,
    ThreeColSym,
};
pub use tree::{ColoredTree, CtNode, Symbol};
