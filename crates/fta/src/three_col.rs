//! The 3-Colorability tree automaton: the MSO-to-FTA route (paper §1)
//! applied to the §5.1 problem, as a baseline against the monadic datalog
//! solver.
//!
//! The nice tree decomposition is encoded as a colored tree whose symbols
//! carry the bag-local information (bag size, edges inside the bag, the
//! introduced/forgotten position); the automaton's states are the bag
//! colorings. Running the *nondeterministic* automaton is exactly the
//! dynamic program of Figure 5; what makes this module a baseline is
//! [`mona_style_3col`], which first **determinizes** over the full
//! alphabet the way MONA-style tools do — the subset construction over
//! `3^|bag|` states is the "state explosion" the paper reports.

use crate::automaton::Nfta;
use crate::determinize::{determinize, DetBudget, Dfta, Exploded};
use crate::tree::{ColoredTree, Symbol};
use mdtw_decomp::{NiceKind, NiceTd};
use mdtw_graph::Graph;
use mdtw_structure::fx::FxHashMap;

/// A bag-local alphabet symbol for the 3-Colorability automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreeColSym {
    /// Leaf bag: size and internal edge bitmap.
    Leaf {
        /// Bag size.
        n: u8,
        /// Triangular bitmap of edges among bag positions.
        edges: u32,
    },
    /// Introduce node: the new vertex sits at `vpos` of the node bag.
    Intro {
        /// Node bag size (including the introduced vertex).
        n: u8,
        /// Edge bitmap of the node bag.
        edges: u32,
        /// Introduced position.
        vpos: u8,
    },
    /// Forget node: the vertex at `vpos` of the *child* bag disappears.
    Forget {
        /// Child bag size.
        child_n: u8,
        /// Forgotten position (in the child bag).
        vpos: u8,
    },
    /// Branch node over bags of size `n`.
    Branch {
        /// Bag size.
        n: u8,
    },
}

/// Triangular pair index for `i < j`.
#[inline]
fn pair_bit(i: usize, j: usize) -> u32 {
    debug_assert!(i < j);
    1u32 << (j * (j - 1) / 2 + i)
}

fn edges_of_bag(graph: &Graph, bag: &[mdtw_structure::ElemId]) -> u32 {
    let mut out = 0u32;
    for j in 1..bag.len() {
        for i in 0..j {
            if graph.has_edge(bag[i].0, bag[j].0) {
                out |= pair_bit(i, j);
            }
        }
    }
    out
}

/// A symbol table interning [`ThreeColSym`]s.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Symbol data (index = interned [`Symbol`]).
    pub symbols: Vec<ThreeColSym>,
    index: FxHashMap<ThreeColSym, Symbol>,
}

impl SymbolTable {
    /// Interns a symbol.
    pub fn intern(&mut self, sym: ThreeColSym) -> Symbol {
        if let Some(&i) = self.index.get(&sym) {
            return i;
        }
        let i = self.symbols.len() as Symbol;
        self.index.insert(sym, i);
        self.symbols.push(sym);
        i
    }

    /// The `(symbol, rank)` alphabet.
    pub fn alphabet(&self) -> Vec<(Symbol, u8)> {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let rank = match s {
                    ThreeColSym::Leaf { .. } => 0,
                    ThreeColSym::Intro { .. } | ThreeColSym::Forget { .. } => 1,
                    ThreeColSym::Branch { .. } => 2,
                };
                (i as Symbol, rank)
            })
            .collect()
    }
}

/// The *input-independent* alphabet for decompositions of bag size up to
/// `max_bag`: every bag size, every internal edge bitmap, every
/// introduced/forgotten position. This is what a MONA-style pipeline
/// compiles the formula against before any input arrives — the alphabet
/// alone is exponential in the width, which is why the paper's direct
/// MSO-to-FTA attempt "led to failure yet before we were able to feed any
/// input data to the program".
pub fn full_alphabet(max_bag: usize) -> SymbolTable {
    let mut table = SymbolTable::default();
    for n in 1..=max_bag {
        let pairs = n * (n - 1) / 2;
        for edges in 0..(1u32 << pairs) {
            table.intern(ThreeColSym::Leaf { n: n as u8, edges });
            for vpos in 0..n {
                table.intern(ThreeColSym::Intro {
                    n: n as u8,
                    edges,
                    vpos: vpos as u8,
                });
            }
        }
        for vpos in 0..n {
            table.intern(ThreeColSym::Forget {
                child_n: n as u8,
                vpos: vpos as u8,
            });
        }
        table.intern(ThreeColSym::Branch { n: n as u8 });
    }
    table
}

/// Encodes the decomposition as a colored tree over `table` (linear
/// time; interns any missing symbols).
pub fn encode_three_col(graph: &Graph, td: &NiceTd, table: &mut SymbolTable) -> ColoredTree {
    ColoredTree::of_nice_td(td, |id| {
        let bag = td.bag(id);
        let sym = match td.kind(id) {
            NiceKind::Leaf => ThreeColSym::Leaf {
                n: bag.len() as u8,
                edges: edges_of_bag(graph, bag),
            },
            NiceKind::Introduce(v) => ThreeColSym::Intro {
                n: bag.len() as u8,
                edges: edges_of_bag(graph, bag),
                vpos: bag.binary_search(&v).expect("introduced in bag") as u8,
            },
            NiceKind::Forget(v) => {
                let child = td.node(id).children[0];
                let child_bag = td.bag(child);
                ThreeColSym::Forget {
                    child_n: child_bag.len() as u8,
                    vpos: child_bag.binary_search(&v).expect("forgotten in child") as u8,
                }
            }
            NiceKind::Branch => ThreeColSym::Branch { n: bag.len() as u8 },
        };
        table.intern(sym)
    })
}

/// Global state interner: `(bag size, red mask, green mask)` ↔ state id.
#[derive(Debug, Default)]
struct StateSpace {
    states: Vec<(u8, u32, u32)>,
    index: FxHashMap<(u8, u32, u32), u32>,
}

impl StateSpace {
    fn intern(&mut self, n: u8, r: u32, g: u32) -> u32 {
        let key = (n, r, g);
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let i = self.states.len() as u32;
        self.index.insert(key, i);
        self.states.push(key);
        i
    }

    /// All 3-partitions of `n` positions.
    fn all_states(n: u8) -> Vec<(u32, u32)> {
        let full: u32 = (1u32 << n) - 1;
        let mut out = Vec::new();
        for r in 0..=full {
            let rest = full & !r;
            let mut g = rest;
            loop {
                out.push((r, g));
                if g == 0 {
                    break;
                }
                g = (g - 1) & rest;
            }
            if r == full {
                break;
            }
        }
        out
    }
}

/// Checks all classes of `(r, g, b)` are independent w.r.t. `edges`.
fn proper(n: u8, edges: u32, r: u32, g: u32) -> bool {
    let full = (1u32 << n) - 1;
    let b = full & !(r | g);
    for j in 1..n as usize {
        for i in 0..j {
            if edges & pair_bit(i, j) == 0 {
                continue;
            }
            let (bi, bj) = (1u32 << i, 1u32 << j);
            if (r & bi != 0 && r & bj != 0)
                || (g & bi != 0 && g & bj != 0)
                || (b & bi != 0 && b & bj != 0)
            {
                return false;
            }
        }
    }
    true
}

#[inline]
fn lift(mask: u32, at: u8) -> u32 {
    let low = mask & ((1u32 << at) - 1);
    let high = (mask >> at) << (at + 1);
    low | high
}

#[inline]
fn drop_pos(mask: u32, at: u8) -> u32 {
    let low = mask & ((1u32 << at) - 1);
    let high = (mask >> (at + 1)) << at;
    low | high
}

/// Builds the nondeterministic 3-Colorability automaton over the given
/// alphabet. Accepts a colored decomposition tree iff the underlying
/// graph is 3-colorable.
pub fn three_col_nfta(symbols: &[ThreeColSym]) -> Nfta {
    let mut space = StateSpace::default();
    let mut nfta = Nfta::default();
    for (si, sym) in symbols.iter().enumerate() {
        let si = si as Symbol;
        match *sym {
            ThreeColSym::Leaf { n, edges } => {
                let mut states = Vec::new();
                for (r, g) in StateSpace::all_states(n) {
                    if proper(n, edges, r, g) {
                        states.push(space.intern(n, r, g));
                    }
                }
                nfta.leaf.insert(si, states);
            }
            ThreeColSym::Intro { n, edges, vpos } => {
                for (r, g) in StateSpace::all_states(n - 1) {
                    let child = space.intern(n - 1, r, g);
                    let (lr, lg) = (lift(r, vpos), lift(g, vpos));
                    let mut outs = Vec::new();
                    for color in 0..3u8 {
                        let (nr, ng) = match color {
                            0 => (lr | 1 << vpos, lg),
                            1 => (lr, lg | 1 << vpos),
                            _ => (lr, lg),
                        };
                        if proper(n, edges, nr, ng) {
                            outs.push(space.intern(n, nr, ng));
                        }
                    }
                    nfta.unary.insert((si, child), outs);
                }
            }
            ThreeColSym::Forget { child_n, vpos } => {
                for (r, g) in StateSpace::all_states(child_n) {
                    let child = space.intern(child_n, r, g);
                    let target = space.intern(child_n - 1, drop_pos(r, vpos), drop_pos(g, vpos));
                    nfta.unary.insert((si, child), vec![target]);
                }
            }
            ThreeColSym::Branch { n } => {
                for (r, g) in StateSpace::all_states(n) {
                    let q = space.intern(n, r, g);
                    nfta.binary.insert((si, q, q), vec![q]);
                }
            }
        }
    }
    nfta.n_states = space.states.len() as u32;
    nfta.finals = (0..nfta.n_states).collect();
    nfta
}

/// Linear-time decision via the nondeterministic automaton over the
/// input's own symbols (this *is* the Figure 5 dynamic program in
/// automaton clothing).
pub fn nfta_3col(graph: &Graph, td: &NiceTd) -> bool {
    let mut table = SymbolTable::default();
    let tree = encode_three_col(graph, td, &mut table);
    let nfta = three_col_nfta(&table.symbols);
    nfta.accepts(&tree)
}

/// MONA-style decision: build the automaton over the **full width-w
/// alphabet**, determinize it (input-independently!), then run the
/// deterministic automaton over the input. The preprocessing is
/// exponential in the width — expect [`Exploded`] beyond width 2 with
/// realistic budgets, mirroring the paper's §6 experience.
pub fn mona_style_3col(
    graph: &Graph,
    td: &NiceTd,
    budget: DetBudget,
) -> Result<(bool, Dfta), Exploded> {
    let mut table = full_alphabet(td.width() + 1);
    let tree = encode_three_col(graph, td, &mut table);
    let nfta = three_col_nfta(&table.symbols);
    let dfta = determinize(&nfta, &table.alphabet(), budget)?;
    let accepted = dfta.accepts(&tree);
    Ok((accepted, dfta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdtw_decomp::{decompose, Heuristic, NiceOptions};
    use mdtw_graph::{complete, cycle, encode_graph, partial_k_tree, petersen, wheel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn nice_of(g: &Graph) -> NiceTd {
        let s = encode_graph(g);
        let td = decompose(&s, Heuristic::MinFill);
        NiceTd::from_td(&td, NiceOptions::default())
    }

    #[test]
    fn nfta_matches_known_instances() {
        for (g, expect) in [
            (cycle(5), true),
            (cycle(6), true),
            (complete(4), false),
            (wheel(5), false),
            (wheel(6), true),
            (petersen(), true),
        ] {
            let td = nice_of(&g);
            assert_eq!(nfta_3col(&g, &td), expect, "{g}");
        }
    }

    #[test]
    fn nfta_matches_backtracking_on_random_inputs() {
        let mut rng = SmallRng::seed_from_u64(5);
        for i in 0..15 {
            let (g, td) = partial_k_tree(&mut rng, 12 + i, 2 + (i % 2), 0.75);
            let nice = NiceTd::from_td(&td, NiceOptions::default());
            assert_eq!(
                nfta_3col(&g, &nice),
                mdtw_graph::is_three_colorable_exact(&g),
                "instance {i}"
            );
        }
    }

    #[test]
    fn mona_style_agrees_when_it_fits() {
        // Small width: determinization fits and agrees with the NFTA.
        for g in [cycle(5), cycle(6), complete(3)] {
            let td = nice_of(&g);
            let budget = DetBudget {
                max_states: 20_000,
                max_transitions: 1 << 21,
            };
            let (got, dfta) = mona_style_3col(&g, &td, budget).unwrap();
            assert_eq!(got, nfta_3col(&g, &td), "{g}");
            assert!(dfta.n_states > 1);
        }
    }

    #[test]
    fn mona_style_explodes_at_moderate_width() {
        // Width 4 (bags of 5): the full alphabet has thousands of symbols
        // and the total transition tables blow past a realistic budget —
        // the paper's "state explosion".
        let mut rng = SmallRng::seed_from_u64(9);
        let (g, td) = partial_k_tree(&mut rng, 16, 4, 1.0);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        let err = mona_style_3col(
            &g,
            &nice,
            DetBudget {
                max_states: 512,
                max_transitions: 1 << 16,
            },
        )
        .unwrap_err();
        assert!(err.states > 0 || err.transitions > 0);
    }

    #[test]
    fn full_alphabet_sizes_grow_exponentially() {
        let a2 = full_alphabet(2).symbols.len();
        let a3 = full_alphabet(3).symbols.len();
        let a4 = full_alphabet(4).symbols.len();
        let a5 = full_alphabet(5).symbols.len();
        assert!(a3 > a2 && a4 > 2 * a3 && a5 > 4 * a4, "{a2} {a3} {a4} {a5}");
    }

    #[test]
    fn proper_check() {
        // Two positions joined by an edge: same class is improper.
        let edges = pair_bit(0, 1);
        assert!(!proper(2, edges, 0b11, 0)); // both red
        assert!(proper(2, edges, 0b01, 0b10)); // red/green
        assert!(!proper(2, edges, 0, 0)); // both blue
        assert!(proper(2, 0, 0b11, 0)); // no edge: both red fine
    }
}
