//! The τ_td encoding of paper §4: a structure 𝒜 plus a normalized tree
//! decomposition 𝒯 becomes a single τ_td-structure `𝒜_td` whose domain is
//! `dom(𝒜) ∪ nodes(𝒯)` and whose extra relations `root`, `leaf`,
//! `child1`, `child2`, `bag` describe the tree.

use crate::tree::NodeId;
use crate::tuple_normal::TupleTd;
use mdtw_structure::{Domain, ElemId, Structure};
use std::sync::Arc;

/// The result of encoding: the τ_td structure plus the mapping from
/// decomposition nodes to their domain elements.
#[derive(Debug)]
pub struct TdEncoding {
    /// The combined structure `𝒜_td`.
    pub structure: Structure,
    /// `node_elem[t]` is the domain element standing for tree node `t`.
    pub node_elem: Vec<ElemId>,
}

impl TdEncoding {
    /// The domain element representing node `t`.
    #[inline]
    pub fn elem_of(&self, t: NodeId) -> ElemId {
        self.node_elem[t.index()]
    }
}

/// Encodes `base` together with its normalized tuple-form decomposition
/// `td` as a τ_td-structure (Example 4.2 shows the construction on the
/// running example). The encoding is linear in `|base| + |td|`.
///
/// Relations added on top of `base`'s:
/// * `root(t)` — `t` is the decomposition root,
/// * `leaf(t)` — `t` has no children,
/// * `child1(s, t)` — `s` is the first (or only) child of `t`,
/// * `child2(s, t)` — `s` is the second child of `t`,
/// * `bag(t, a₀, …, a_w)` — the bag of `t` is the tuple `(a₀, …, a_w)`.
pub fn encode_tuple_td(base: &Structure, td: &TupleTd) -> TdEncoding {
    let sig = Arc::new(base.signature().extend_td(td.width()));
    // Copy the base domain, then append one element per tree node.
    let mut domain = Domain::new();
    for e in base.domain().elems() {
        domain.insert(base.domain().name(e).to_owned());
    }
    let mut node_elem = Vec::with_capacity(td.len());
    for t in td.node_ids() {
        node_elem.push(domain.insert(format!("nd{}", t.0)));
    }

    let mut out = Structure::new(Arc::clone(&sig), domain);
    // Base relations carry over unchanged (ids are preserved).
    for p in base.signature().preds() {
        let q = sig.lookup(base.signature().name(p)).expect("copied pred");
        for tuple in base.relation(p).iter() {
            out.insert(q, tuple);
        }
    }
    let root_p = sig.lookup("root").expect("root");
    let leaf_p = sig.lookup("leaf").expect("leaf");
    let child1_p = sig.lookup("child1").expect("child1");
    let child2_p = sig.lookup("child2").expect("child2");
    let bag_p = sig.lookup("bag").expect("bag");
    let branch_p = sig.lookup("branch").expect("branch");
    let same_p = sig.lookup("same").expect("same");

    out.insert(root_p, &[node_elem[td.root().index()]]);
    for t in td.node_ids() {
        let node = td.node(t);
        if node.children.is_empty() {
            out.insert(leaf_p, &[node_elem[t.index()]]);
        }
        if node.children.len() == 2 {
            out.insert(branch_p, &[node_elem[t.index()]]);
        }
        for (i, &c) in node.children.iter().enumerate() {
            let pred = if i == 0 { child1_p } else { child2_p };
            out.insert(pred, &[node_elem[c.index()], node_elem[t.index()]]);
        }
        let mut bag_tuple = Vec::with_capacity(td.width() + 2);
        bag_tuple.push(node_elem[t.index()]);
        bag_tuple.extend_from_slice(td.bag(t));
        out.insert(bag_p, &bag_tuple);
    }
    // The identity relation (a guard for the generic Theorem 4.5 rules).
    for e in out.domain().elems().collect::<Vec<_>>() {
        out.insert(same_p, &[e, e]);
    }
    TdEncoding {
        structure: out,
        node_elem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeDecomposition;
    use mdtw_structure::Signature;

    fn e(i: u32) -> ElemId {
        ElemId(i)
    }

    fn base_and_td() -> (Structure, TupleTd) {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(4);
        let mut s = Structure::new(sig, dom);
        let ep = s.signature().lookup("e").unwrap();
        s.insert(ep, &[e(0), e(1)]);
        s.insert(ep, &[e(1), e(2)]);
        s.insert(ep, &[e(2), e(3)]);
        let mut td = TreeDecomposition::singleton(vec![e(0), e(1)]);
        let c = td.add_child(td.root(), vec![e(1), e(2)]);
        td.add_child(c, vec![e(2), e(3)]);
        let tuple_td = TupleTd::from_td(&td, 4).unwrap();
        (s, tuple_td)
    }

    #[test]
    fn encoding_has_all_td_relations() {
        let (s, td) = base_and_td();
        let enc = encode_tuple_td(&s, &td);
        let sig = enc.structure.signature();
        let root_p = sig.lookup("root").unwrap();
        let leaf_p = sig.lookup("leaf").unwrap();
        let child1_p = sig.lookup("child1").unwrap();
        let bag_p = sig.lookup("bag").unwrap();
        assert_eq!(enc.structure.relation(root_p).len(), 1);
        assert!(!enc.structure.relation(leaf_p).is_empty());
        // Every non-root node is someone's child.
        let child2_p = sig.lookup("child2").unwrap();
        assert_eq!(
            enc.structure.relation(child1_p).len() + enc.structure.relation(child2_p).len(),
            td.len() - 1
        );
        // One bag atom per node, arity w+2.
        assert_eq!(enc.structure.relation(bag_p).len(), td.len());
        assert_eq!(enc.structure.relation(bag_p).arity(), td.width() + 2);
    }

    #[test]
    fn base_relations_survive() {
        let (s, td) = base_and_td();
        let enc = encode_tuple_td(&s, &td);
        let ep = enc.structure.signature().lookup("e").unwrap();
        assert!(enc.structure.holds(ep, &[e(0), e(1)]));
        assert!(enc.structure.holds(ep, &[e(2), e(3)]));
        assert_eq!(enc.structure.relation(ep).len(), 3);
    }

    #[test]
    fn domain_is_union_of_elements_and_nodes() {
        let (s, td) = base_and_td();
        let enc = encode_tuple_td(&s, &td);
        assert_eq!(enc.structure.domain().len(), s.domain().len() + td.len());
        // Node elements are addressable.
        for t in td.node_ids() {
            let el = enc.elem_of(t);
            assert!(enc.structure.domain().contains(el));
        }
    }
}
