//! Rooted tree decompositions with set-valued bags (paper §2.2).

use mdtw_structure::ElemId;
use std::fmt;

/// Identifier of a decomposition tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index of this node in its arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One node of a tree decomposition: a bag of domain elements plus tree
/// links. Bags are kept sorted and deduplicated (set semantics).
#[derive(Debug, Clone)]
pub struct TdNode {
    /// The bag `A_t ⊆ A`, sorted ascending.
    pub bag: Vec<ElemId>,
    /// Children in order (first child, second child, …).
    pub children: Vec<NodeId>,
    /// Parent link; `None` for the root.
    pub parent: Option<NodeId>,
}

/// A rooted tree decomposition `T = ⟨T, (A_t)_{t∈T}⟩` of some structure.
///
/// The type stores only the tree and the bags; which structure it
/// decomposes is checked externally via [`validate`](Self::validate).
#[derive(Debug, Clone)]
pub struct TreeDecomposition {
    nodes: Vec<TdNode>,
    root: NodeId,
}

impl TreeDecomposition {
    /// Creates a decomposition consisting of a single root node.
    pub fn singleton(mut bag: Vec<ElemId>) -> Self {
        bag.sort_unstable();
        bag.dedup();
        Self {
            nodes: vec![TdNode {
                bag,
                children: Vec::new(),
                parent: None,
            }],
            root: NodeId(0),
        }
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of tree nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the decomposition has no nodes (never constructible; kept
    /// for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable node access.
    #[inline]
    pub fn node(&self, id: NodeId) -> &TdNode {
        &self.nodes[id.index()]
    }

    /// The bag of `id`.
    #[inline]
    pub fn bag(&self, id: NodeId) -> &[ElemId] {
        &self.nodes[id.index()].bag
    }

    /// Adds a child node with the given bag under `parent`.
    pub fn add_child(&mut self, parent: NodeId, mut bag: Vec<ElemId>) -> NodeId {
        bag.sort_unstable();
        bag.dedup();
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(TdNode {
            bag,
            children: Vec::new(),
            parent: Some(parent),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Iterates over all node ids (arena order).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The width `max |A_t| − 1`.
    pub fn width(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.bag.len())
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Post-order traversal from the root (children before parents).
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        // Iterative DFS: (node, child-cursor).
        let mut stack = vec![(self.root, 0usize)];
        while let Some(last) = stack.len().checked_sub(1) {
            let (node, cursor) = stack[last];
            let children = &self.nodes[node.index()].children;
            if cursor < children.len() {
                stack[last].1 += 1;
                stack.push((children[cursor], 0));
            } else {
                out.push(node);
                stack.pop();
            }
        }
        out
    }

    /// Pre-order traversal from the root (parents before children).
    pub fn pre_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            out.push(node);
            // Push in reverse so children come out in order.
            for &c in self.nodes[node.index()].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All leaves (nodes without children).
    pub fn leaves(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).children.is_empty())
            .collect()
    }

    /// True if `elem` occurs in the bag of `node`.
    #[inline]
    pub fn bag_contains(&self, node: NodeId, elem: ElemId) -> bool {
        self.bag(node).binary_search(&elem).is_ok()
    }

    /// Re-roots the decomposition at `new_root`, reversing parent links on
    /// the path to the old root. Bags are unchanged, so validity is
    /// preserved (tree decompositions are unordered; rooting is a choice).
    pub fn reroot(&mut self, new_root: NodeId) {
        if new_root == self.root {
            return;
        }
        // Collect the path new_root -> old root.
        let mut path = vec![new_root];
        let mut cur = new_root;
        while let Some(p) = self.nodes[cur.index()].parent {
            path.push(p);
            cur = p;
        }
        // Reverse each edge along the path.
        for w in path.windows(2) {
            let (child, parent) = (w[0], w[1]);
            // parent loses `child`, gains nothing yet.
            self.nodes[parent.index()].children.retain(|&c| c != child);
            self.nodes[child.index()].children.push(parent);
            self.nodes[parent.index()].parent = Some(child);
        }
        self.nodes[new_root.index()].parent = None;
        self.root = new_root;
    }

    /// Applies `f` to every bag element, replacing bags wholesale.
    /// Used by bag-augmentation transforms; re-sorts each bag.
    pub fn map_bags(&mut self, mut f: impl FnMut(NodeId, &[ElemId]) -> Vec<ElemId>) {
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            let mut new_bag = f(id, &self.nodes[i].bag);
            new_bag.sort_unstable();
            new_bag.dedup();
            self.nodes[i].bag = new_bag;
        }
    }
}

impl fmt::Display for TreeDecomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tree decomposition: {} nodes, width {}",
            self.len(),
            self.width()
        )?;
        for id in self.pre_order() {
            let depth = {
                let mut d = 0;
                let mut cur = id;
                while let Some(p) = self.node(cur).parent {
                    d += 1;
                    cur = p;
                }
                d
            };
            let bag: Vec<String> = self
                .bag(id)
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            writeln!(f, "{}{} {{{}}}", "  ".repeat(depth), id, bag.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> ElemId {
        ElemId(i)
    }

    fn small_td() -> TreeDecomposition {
        let mut td = TreeDecomposition::singleton(vec![e(0), e(1)]);
        let c1 = td.add_child(td.root(), vec![e(1), e(2)]);
        td.add_child(c1, vec![e(2), e(3)]);
        td.add_child(td.root(), vec![e(0), e(4)]);
        td
    }

    #[test]
    fn construction_and_width() {
        let td = small_td();
        assert_eq!(td.len(), 4);
        assert_eq!(td.width(), 1);
        assert_eq!(td.leaves().len(), 2);
    }

    #[test]
    fn bags_are_sorted_sets() {
        let td = TreeDecomposition::singleton(vec![e(3), e(1), e(3), e(2)]);
        assert_eq!(td.bag(td.root()), &[e(1), e(2), e(3)]);
    }

    #[test]
    fn post_order_ends_with_root() {
        let td = small_td();
        let po = td.post_order();
        assert_eq!(po.len(), 4);
        assert_eq!(*po.last().unwrap(), td.root());
        // Every child precedes its parent.
        let pos: Vec<usize> = {
            let mut v = vec![0; td.len()];
            for (i, id) in po.iter().enumerate() {
                v[id.index()] = i;
            }
            v
        };
        for id in td.node_ids() {
            if let Some(p) = td.node(id).parent {
                assert!(pos[id.index()] < pos[p.index()]);
            }
        }
    }

    #[test]
    fn pre_order_starts_with_root() {
        let td = small_td();
        let pre = td.pre_order();
        assert_eq!(pre[0], td.root());
        assert_eq!(pre.len(), 4);
    }

    #[test]
    fn reroot_preserves_node_set_and_edges() {
        let mut td = small_td();
        let leaves = td.leaves();
        let new_root = leaves[0];
        let old_edge_count: usize = td.node_ids().map(|n| td.node(n).children.len()).sum();
        td.reroot(new_root);
        assert_eq!(td.root(), new_root);
        assert!(td.node(new_root).parent.is_none());
        let edge_count: usize = td.node_ids().map(|n| td.node(n).children.len()).sum();
        assert_eq!(edge_count, old_edge_count);
        // All nodes reachable from the new root.
        assert_eq!(td.post_order().len(), td.len());
    }

    #[test]
    fn reroot_to_current_root_is_noop() {
        let mut td = small_td();
        let r = td.root();
        td.reroot(r);
        assert_eq!(td.root(), r);
    }
}
