//! The normalized tree decompositions of Definition 2.3 and the
//! linear-time normalization of Proposition 2.4.
//!
//! Bags become *tuples* of exactly `w+1` pairwise distinct elements; every
//! internal node has one or two children; a node with one child is a
//! *permutation node* (child bag is a permutation of the parent's) or an
//! *element replacement node* (child bag replaces position 0); a node with
//! two children is a *branch node* (children carry the parent's tuple).

use crate::tree::{NodeId, TreeDecomposition};
use mdtw_structure::ElemId;

/// Kinds of nodes in a normalized (tuple-form) tree decomposition.
///
/// The kind describes how the *children* of a node relate to it, matching
/// the wording of Definition 2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleNodeKind {
    /// No children.
    Leaf,
    /// One child whose bag is a permutation of this node's bag.
    Permutation,
    /// One child whose bag replaces the element at position 0.
    ElementReplacement,
    /// Two children, both carrying this node's tuple.
    Branch,
}

/// One node of a [`TupleTd`].
#[derive(Debug, Clone)]
pub struct TupleNode {
    /// The bag as an ordered tuple `(a₀, …, a_w)` of distinct elements.
    pub bag: Vec<ElemId>,
    /// Children (at most two).
    pub children: Vec<NodeId>,
    /// Parent link; `None` for the root.
    pub parent: Option<NodeId>,
}

/// A tree decomposition in the normal form of Definition 2.3.
#[derive(Debug, Clone)]
pub struct TupleTd {
    nodes: Vec<TupleNode>,
    root: NodeId,
    width: usize,
}

/// Errors raised when normalizing a decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormalizeError {
    /// The domain has fewer than `w+1` elements (the paper's standing
    /// assumption in Proposition 2.4).
    DomainTooSmall {
        /// Required minimum number of elements (`w+1`).
        need: usize,
        /// Actual domain size.
        have: usize,
    },
}

impl std::fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalizeError::DomainTooSmall { need, have } => write!(
                f,
                "normalization requires ≥ {need} domain elements, found {have}"
            ),
        }
    }
}

impl std::error::Error for NormalizeError {}

impl TupleTd {
    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: a `TupleTd` has at least one node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The decomposition width `w` (all bags have `w+1` entries).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Node access.
    #[inline]
    pub fn node(&self, id: NodeId) -> &TupleNode {
        &self.nodes[id.index()]
    }

    /// The ordered bag of `id`.
    #[inline]
    pub fn bag(&self, id: NodeId) -> &[ElemId] {
        &self.nodes[id.index()].bag
    }

    /// Iterates over node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Classifies a node per Definition 2.3.
    ///
    /// # Panics
    /// Panics if the decomposition is malformed (use
    /// [`validate_normal_form`](Self::validate_normal_form) first when in
    /// doubt).
    pub fn kind(&self, id: NodeId) -> TupleNodeKind {
        let node = self.node(id);
        match node.children.len() {
            0 => TupleNodeKind::Leaf,
            1 => {
                let child = self.bag(node.children[0]);
                if is_permutation(&node.bag, child) {
                    TupleNodeKind::Permutation
                } else {
                    TupleNodeKind::ElementReplacement
                }
            }
            2 => TupleNodeKind::Branch,
            n => panic!("normalized node with {n} children"),
        }
    }

    /// Post-order traversal (children before parents).
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, 0usize)];
        while let Some(last) = stack.len().checked_sub(1) {
            let (node, cursor) = stack[last];
            let children = &self.nodes[node.index()].children;
            if cursor < children.len() {
                stack[last].1 += 1;
                stack.push((children[cursor], 0));
            } else {
                out.push(node);
                stack.pop();
            }
        }
        out
    }

    /// Converts back to a set-form [`TreeDecomposition`] (for validation
    /// against the underlying structure).
    pub fn to_set_td(&self) -> TreeDecomposition {
        let mut td = TreeDecomposition::singleton(self.bag(self.root).to_vec());
        let mut stack = vec![(self.root, td.root())];
        while let Some((old, new)) = stack.pop() {
            for &c in &self.node(old).children {
                let nc = td.add_child(new, self.bag(c).to_vec());
                stack.push((c, nc));
            }
        }
        td
    }

    /// Checks every clause of Definition 2.3; returns a human-readable
    /// description of the first violation.
    pub fn validate_normal_form(&self) -> Result<(), String> {
        for id in self.node_ids() {
            let node = self.node(id);
            if node.bag.len() != self.width + 1 {
                return Err(format!(
                    "bag of {id} has {} entries, expected {}",
                    node.bag.len(),
                    self.width + 1
                ));
            }
            let mut sorted = node.bag.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != node.bag.len() {
                return Err(format!("bag of {id} has repeated elements"));
            }
            match node.children.len() {
                0 => {}
                1 => {
                    let child = self.bag(node.children[0]);
                    let perm = is_permutation(&node.bag, child);
                    let repl = is_pos0_replacement(&node.bag, child);
                    if !perm && !repl {
                        return Err(format!(
                            "node {id}: child bag is neither a permutation nor a \
                             position-0 replacement"
                        ));
                    }
                }
                2 => {
                    for &c in &node.children {
                        if self.bag(c) != &node.bag[..] {
                            return Err(format!(
                                "branch node {id}: child {c} does not carry an \
                                 identical bag"
                            ));
                        }
                    }
                }
                n => return Err(format!("node {id} has {n} children")),
            }
        }
        Ok(())
    }

    /// Normalizes an arbitrary tree decomposition into the form of
    /// Definition 2.3 (Proposition 2.4). The width is preserved except
    /// that width-0 inputs are lifted to width 1 (the paper assumes
    /// `w ≥ 1`); `domain_size` must be at least `w+1`.
    pub fn from_td(td: &TreeDecomposition, domain_size: usize) -> Result<Self, NormalizeError> {
        let w = td.width().max(1);
        Self::from_td_with_width(td, domain_size, w)
    }

    /// Like [`from_td`](Self::from_td) but pads every bag to a caller-chosen
    /// width `w ≥ max(width(td), 1)`.
    pub fn from_td_with_width(
        td: &TreeDecomposition,
        domain_size: usize,
        w: usize,
    ) -> Result<Self, NormalizeError> {
        assert!(w >= td.width().max(1), "target width below input width");
        if domain_size < w + 1 {
            return Err(NormalizeError::DomainTooSmall {
                need: w + 1,
                have: domain_size,
            });
        }

        // --- Step 1 (Prop. 2.4 (1)): pad all bags to w+1 elements by
        // pulling elements from neighbouring bags. Pulling from a
        // neighbour always preserves connectedness (the occurrence subtree
        // grows by an adjacent node); termination is guaranteed because a
        // global stall would imply the union of all bags has < w+1
        // elements, contradicting coverage of a domain with ≥ w+1 elements
        // -- provided the input decomposition covers the domain. If it
        // covers fewer elements (legal for sub-structures) we fall back to
        // padding with arbitrary uncovered elements appended consistently
        // at the root-side, which keeps occurrence sets connected because
        // those elements occur nowhere else.
        let mut sets: Vec<Vec<ElemId>> = td.node_ids().map(|id| td.bag(id).to_vec()).collect();
        let parent_of: Vec<Option<NodeId>> = td.node_ids().map(|id| td.node(id).parent).collect();
        let children_of: Vec<Vec<NodeId>> = td
            .node_ids()
            .map(|id| td.node(id).children.clone())
            .collect();
        loop {
            let mut changed = false;
            let mut all_full = true;
            for i in 0..sets.len() {
                if sets[i].len() > w {
                    continue;
                }
                all_full = false;
                let mut neighbors: Vec<NodeId> = Vec::new();
                if let Some(p) = parent_of[i] {
                    neighbors.push(p);
                }
                neighbors.extend(children_of[i].iter().copied());
                for nb in neighbors {
                    if sets[i].len() > w {
                        break;
                    }
                    let candidates: Vec<ElemId> = sets[nb.index()]
                        .iter()
                        .copied()
                        .filter(|e| !sets[i].contains(e))
                        .collect();
                    for e in candidates {
                        if sets[i].len() > w {
                            break;
                        }
                        sets[i].push(e);
                        changed = true;
                    }
                }
            }
            if all_full {
                break;
            }
            if !changed {
                // The decomposition covers fewer than w+1 elements in some
                // component; pad every short bag with globally fresh
                // elements (each used in a single connected blob).
                let covered: std::collections::BTreeSet<ElemId> =
                    sets.iter().flatten().copied().collect();
                let mut fresh: Vec<ElemId> = (0..domain_size as u32)
                    .map(ElemId)
                    .filter(|e| !covered.contains(e))
                    .collect();
                fresh.reverse();
                // Add one fresh element to *all* bags at once so its
                // occurrence set is the whole (connected) tree.
                let e = fresh.pop().expect("domain_size ≥ w+1 guarantees spare");
                for s in &mut sets {
                    if !s.contains(&e) {
                        s.push(e);
                    }
                }
            }
        }
        for s in &mut sets {
            s.sort_unstable();
            s.truncate(w + 1);
        }

        // Build a scratch set-form tree we can freely rewrite.
        let mut scratch = Scratch::from_parts(sets, parent_of, children_of, td.root());

        // --- Step 2 (Prop. 2.4 (2)): binarize nodes with > 2 children.
        scratch.binarize();
        // --- Step 3 (Prop. 2.4 (3)): give branch nodes identical children.
        scratch.equalize_branches();
        // --- Step 4 (Prop. 2.4 (4)): interpolate edges that differ in more
        // than one element.
        scratch.interpolate();
        // --- Step 5 (Prop. 2.4 (5)): orient bags as tuples, inserting
        // permutation nodes so replacements happen at position 0.
        Ok(scratch.into_tuple_td(w))
    }
}

fn is_permutation(a: &[ElemId], b: &[ElemId]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut x = a.to_vec();
    let mut y = b.to_vec();
    x.sort_unstable();
    y.sort_unstable();
    x == y
}

fn is_pos0_replacement(parent: &[ElemId], child: &[ElemId]) -> bool {
    parent.len() == child.len()
        && !parent.is_empty()
        && parent[1..] == child[1..]
        && parent[0] != child[0]
        && !child[1..].contains(&child[0])
}

/// Mutable set-form scratch tree used during normalization.
struct Scratch {
    bags: Vec<Vec<ElemId>>, // sorted sets
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    root: usize,
}

impl Scratch {
    fn from_parts(
        bags: Vec<Vec<ElemId>>,
        parent: Vec<Option<NodeId>>,
        children: Vec<Vec<NodeId>>,
        root: NodeId,
    ) -> Self {
        Self {
            bags,
            parent: parent.into_iter().map(|p| p.map(NodeId::index)).collect(),
            children: children
                .into_iter()
                .map(|cs| cs.into_iter().map(NodeId::index).collect())
                .collect(),
            root: root.index(),
        }
    }

    fn add_node(&mut self, bag: Vec<ElemId>, parent: Option<usize>) -> usize {
        let id = self.bags.len();
        self.bags.push(bag);
        self.parent.push(parent);
        self.children.push(Vec::new());
        id
    }

    /// Replaces edge `parent -> child` with `parent -> mid -> child`.
    fn splice(&mut self, parent: usize, child: usize, bag: Vec<ElemId>) -> usize {
        let mid = self.add_node(bag, Some(parent));
        let slot = self.children[parent]
            .iter()
            .position(|&c| c == child)
            .expect("child edge exists");
        self.children[parent][slot] = mid;
        self.children[mid].push(child);
        self.parent[child] = Some(mid);
        mid
    }

    fn binarize(&mut self) {
        let mut queue: Vec<usize> = (0..self.bags.len()).collect();
        while let Some(s) = queue.pop() {
            if self.children[s].len() <= 2 {
                continue;
            }
            // Keep the first child; move the rest under a copy of s.
            let mut rest = self.children[s].split_off(1);
            let copy = self.add_node(self.bags[s].clone(), Some(s));
            self.children[s].push(copy);
            for &c in &rest {
                self.parent[c] = Some(copy);
            }
            self.children[copy].append(&mut rest);
            queue.push(copy);
        }
    }

    fn equalize_branches(&mut self) {
        for s in 0..self.bags.len() {
            if self.children[s].len() != 2 {
                continue;
            }
            let cs = self.children[s].clone();
            for c in cs {
                if self.bags[c] != self.bags[s] {
                    self.splice(s, c, self.bags[s].clone());
                }
            }
        }
    }

    fn interpolate(&mut self) {
        let node_count = self.bags.len();
        for s in 0..node_count {
            for c in self.children[s].clone() {
                self.interpolate_edge(s, c);
            }
        }
    }

    /// Inserts intermediate bags so that consecutive bags differ by at most
    /// one element exchange. Bags all have size w+1, so
    /// `|A_s ∖ A_c| = |A_c ∖ A_s| = k`; we swap one element per step.
    fn interpolate_edge(&mut self, s: usize, c: usize) {
        let out: Vec<ElemId> = self.bags[s]
            .iter()
            .copied()
            .filter(|e| !self.bags[c].contains(e))
            .collect();
        let inn: Vec<ElemId> = self.bags[c]
            .iter()
            .copied()
            .filter(|e| !self.bags[s].contains(e))
            .collect();
        debug_assert_eq!(out.len(), inn.len());
        if out.len() <= 1 {
            return;
        }
        let mut upper = s;
        let mut current = self.bags[s].clone();
        for i in 0..out.len() - 1 {
            current.retain(|e| *e != out[i]);
            current.push(inn[i]);
            current.sort_unstable();
            upper = self.splice(upper, c, current.clone());
        }
    }

    /// Assigns tuples top-down and emits the final `TupleTd`, inserting
    /// permutation nodes in front of element replacements.
    fn into_tuple_td(self, w: usize) -> TupleTd {
        let mut em = Emitter { nodes: Vec::new() };

        // Root tuple: sorted order.
        let root_tuple = self.bags[self.root].clone();
        let root_id = em.add(root_tuple, None);

        // DFS: (scratch node, emitted node carrying its tuple).
        let mut stack: Vec<(usize, NodeId)> = vec![(self.root, root_id)];
        while let Some((s, emitted)) = stack.pop() {
            let kids = self.children[s].clone();
            match kids.len() {
                0 => {}
                1 => {
                    let c = kids[0];
                    let child_id = em.emit_single_edge(emitted, &self.bags[c]);
                    stack.push((c, child_id));
                }
                2 => {
                    // Branch: children carry the parent's tuple verbatim.
                    let parent_tuple = em.nodes[emitted.index()].bag.clone();
                    for c in kids {
                        debug_assert!(is_permutation(&parent_tuple, &self.bags[c]));
                        let child_id = em.add(parent_tuple.clone(), Some(emitted));
                        stack.push((c, child_id));
                    }
                }
                n => unreachable!("binarized tree has ≤ 2 children, found {n}"),
            }
        }

        let td = TupleTd {
            nodes: em.nodes,
            root: root_id,
            width: w,
        };
        debug_assert_eq!(td.validate_normal_form(), Ok(()));
        td
    }
}

/// Builds the final tuple-form node arena.
struct Emitter {
    nodes: Vec<TupleNode>,
}

impl Emitter {
    fn add(&mut self, bag: Vec<ElemId>, parent: Option<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(TupleNode {
            bag,
            children: Vec::new(),
            parent,
        });
        if let Some(p) = parent {
            self.nodes[p.index()].children.push(id);
        }
        id
    }

    /// Emits the nodes for a single-child edge from the already-emitted
    /// `emitted` node to a child whose bag (as a set) is `child_set`:
    /// possibly a permutation node bringing the leaving element to
    /// position 0, then the replacement child. Returns the child node id.
    fn emit_single_edge(&mut self, emitted: NodeId, child_set: &[ElemId]) -> NodeId {
        let parent_tuple = self.nodes[emitted.index()].bag.clone();
        let out: Vec<ElemId> = parent_tuple
            .iter()
            .copied()
            .filter(|e| !child_set.contains(e))
            .collect();
        if out.is_empty() {
            // Same set: child is a permutation (identity) of the parent.
            return self.add(parent_tuple, Some(emitted));
        }
        debug_assert_eq!(out.len(), 1, "interpolation left a multi-element edge");
        let leaving = out[0];
        let entering = *child_set
            .iter()
            .find(|e| !parent_tuple.contains(e))
            .expect("equal-size bags: one in, one out");
        // Bring `leaving` to position 0 (inserting a permutation node if it
        // is not already there), then replace position 0.
        let (attach, attach_tuple) = if parent_tuple[0] == leaving {
            (emitted, parent_tuple)
        } else {
            let mut permuted = vec![leaving];
            permuted.extend(parent_tuple.iter().copied().filter(|&e| e != leaving));
            let node = self.add(permuted.clone(), Some(emitted));
            (node, permuted)
        };
        let mut child_tuple = attach_tuple;
        child_tuple[0] = entering;
        self.add(child_tuple, Some(attach))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> ElemId {
        ElemId(i)
    }

    #[test]
    fn normalize_small_path() {
        let mut td = TreeDecomposition::singleton(vec![e(0), e(1)]);
        let c = td.add_child(td.root(), vec![e(1), e(2)]);
        td.add_child(c, vec![e(2), e(3)]);
        let norm = TupleTd::from_td(&td, 4).unwrap();
        assert_eq!(norm.validate_normal_form(), Ok(()));
        assert_eq!(norm.width(), 1);
    }

    #[test]
    fn normalize_wide_star() {
        // A root with 5 children forces binarization.
        let mut td = TreeDecomposition::singleton(vec![e(0), e(1), e(2)]);
        for i in 0..5u32 {
            td.add_child(td.root(), vec![e(0), e(3 + i)]);
        }
        let norm = TupleTd::from_td(&td, 8).unwrap();
        assert_eq!(norm.validate_normal_form(), Ok(()));
        assert_eq!(norm.width(), 2);
        for id in norm.node_ids() {
            assert!(norm.node(id).children.len() <= 2);
        }
    }

    #[test]
    fn normalize_with_multi_element_jump() {
        // Adjacent bags sharing nothing: requires interpolation.
        let mut td = TreeDecomposition::singleton(vec![e(0), e(1), e(2)]);
        td.add_child(td.root(), vec![e(3), e(4), e(5)]);
        let norm = TupleTd::from_td(&td, 6).unwrap();
        assert_eq!(norm.validate_normal_form(), Ok(()));
        // Every edge is now a permutation or a pos-0 replacement.
        for id in norm.node_ids() {
            let _ = norm.kind(id); // must not panic
        }
    }

    #[test]
    fn width_zero_input_is_lifted_to_width_one() {
        let mut td = TreeDecomposition::singleton(vec![e(0)]);
        td.add_child(td.root(), vec![e(1)]);
        let norm = TupleTd::from_td(&td, 2).unwrap();
        assert_eq!(norm.width(), 1);
        assert_eq!(norm.validate_normal_form(), Ok(()));
    }

    #[test]
    fn domain_too_small_is_reported() {
        let td = TreeDecomposition::singleton(vec![e(0)]);
        assert!(matches!(
            TupleTd::from_td(&td, 1),
            Err(NormalizeError::DomainTooSmall { need: 2, have: 1 })
        ));
    }

    #[test]
    fn padding_to_requested_width() {
        let mut td = TreeDecomposition::singleton(vec![e(0), e(1)]);
        td.add_child(td.root(), vec![e(1), e(2)]);
        let norm = TupleTd::from_td_with_width(&td, 5, 3).unwrap();
        assert_eq!(norm.width(), 3);
        assert_eq!(norm.validate_normal_form(), Ok(()));
        for id in norm.node_ids() {
            assert_eq!(norm.bag(id).len(), 4);
        }
    }

    #[test]
    fn to_set_td_roundtrip_is_still_a_decomposition() {
        use mdtw_structure::{Domain, Signature, Structure};
        use std::sync::Arc;
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(4);
        let mut s = Structure::new(sig, dom);
        let ep = s.signature().lookup("e").unwrap();
        s.insert(ep, &[e(0), e(1)]);
        s.insert(ep, &[e(1), e(2)]);
        s.insert(ep, &[e(2), e(3)]);
        let mut td = TreeDecomposition::singleton(vec![e(0), e(1)]);
        let c = td.add_child(td.root(), vec![e(1), e(2)]);
        td.add_child(c, vec![e(2), e(3)]);
        assert_eq!(td.validate(&s), Ok(()));
        let norm = TupleTd::from_td(&td, 4).unwrap();
        let back = norm.to_set_td();
        assert_eq!(back.validate(&s), Ok(()));
        assert_eq!(back.width(), norm.width());
    }

    #[test]
    fn kinds_cover_definition() {
        let mut td = TreeDecomposition::singleton(vec![e(0), e(1)]);
        let c1 = td.add_child(td.root(), vec![e(1), e(2)]);
        td.add_child(c1, vec![e(2), e(3)]);
        td.add_child(c1, vec![e(1), e(2)]);
        let norm = TupleTd::from_td(&td, 4).unwrap();
        let mut saw_branch = false;
        let mut saw_leaf = false;
        for id in norm.node_ids() {
            match norm.kind(id) {
                TupleNodeKind::Branch => saw_branch = true,
                TupleNodeKind::Leaf => saw_leaf = true,
                _ => {}
            }
        }
        assert!(saw_branch && saw_leaf);
    }
}
