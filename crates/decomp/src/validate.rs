//! Validation of the three tree-decomposition conditions (paper §2.2).

use crate::tree::{NodeId, TreeDecomposition};
use mdtw_structure::{ElemId, PredId, Structure};
use std::fmt;

/// A violation of one of the tree-decomposition conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdViolation {
    /// Condition 1: some domain element occurs in no bag.
    ElementNotCovered(ElemId),
    /// Condition 2: some EDB tuple is not contained in any single bag.
    TupleNotCovered(PredId, Vec<ElemId>),
    /// Condition 3 (connectedness): the nodes containing this element do
    /// not induce a subtree.
    Disconnected(ElemId),
    /// A bag mentions an element outside the structure's domain.
    ForeignElement(NodeId, ElemId),
}

impl fmt::Display for TdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdViolation::ElementNotCovered(e) => write!(f, "element {e} occurs in no bag"),
            TdViolation::TupleNotCovered(p, t) => {
                write!(f, "tuple {p}({t:?}) not contained in any bag")
            }
            TdViolation::Disconnected(e) => {
                write!(f, "occurrences of element {e} do not form a subtree")
            }
            TdViolation::ForeignElement(n, e) => {
                write!(f, "bag of {n} mentions foreign element {e}")
            }
        }
    }
}

impl std::error::Error for TdViolation {}

impl TreeDecomposition {
    /// Checks that `self` is a tree decomposition of `structure`:
    /// (1) every element is in some bag, (2) every tuple fits in a bag,
    /// (3) each element's occurrence set induces a subtree.
    ///
    /// Runs in time linear in the decomposition plus the structure
    /// (for fixed width).
    pub fn validate(&self, structure: &Structure) -> Result<(), TdViolation> {
        let n = structure.domain().len();
        // Count occurrences per element and find one representative node.
        let mut occurrences = vec![0u32; n];
        for id in self.node_ids() {
            for &e in self.bag(id) {
                if e.index() >= n {
                    return Err(TdViolation::ForeignElement(id, e));
                }
                occurrences[e.index()] += 1;
            }
        }
        for e in structure.domain().elems() {
            if occurrences[e.index()] == 0 {
                return Err(TdViolation::ElementNotCovered(e));
            }
        }

        // Condition 3: for each element, the number of tree edges joining
        // two occurrence nodes must be exactly (#occurrences − 1); since the
        // occurrence nodes form a forest inside the tree, this forces a
        // single connected subtree.
        let mut internal_edges = vec![0u32; n];
        for id in self.node_ids() {
            if let Some(p) = self.node(id).parent {
                // Intersect the two sorted bags.
                let (a, b) = (self.bag(id), self.bag(p));
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            internal_edges[a[i].index()] += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        for e in structure.domain().elems() {
            if internal_edges[e.index()] + 1 != occurrences[e.index()] {
                return Err(TdViolation::Disconnected(e));
            }
        }

        // Condition 2: every tuple inside one bag. Index: for each element,
        // one occurrence node; then check each tuple against all bags
        // containing its first argument — linear for fixed width because we
        // only need *some* bag; we search the occurrence subtree of the
        // first element. For simplicity and because widths are tiny we test
        // all bags containing the minimum-occurrence argument.
        let mut nodes_of: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for id in self.node_ids() {
            for &e in self.bag(id) {
                nodes_of[e.index()].push(id);
            }
        }
        for p in structure.signature().preds() {
            for t in structure.relation(p).iter() {
                if t.is_empty() {
                    continue;
                }
                let pivot = t
                    .iter()
                    .min_by_key(|e| nodes_of[e.index()].len())
                    .expect("non-empty tuple");
                let ok = nodes_of[pivot.index()]
                    .iter()
                    .any(|&id| t.iter().all(|&e| self.bag_contains(id, e)));
                if !ok {
                    return Err(TdViolation::TupleNotCovered(p, t.to_vec()));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdtw_structure::{Domain, Signature};
    use std::sync::Arc;

    fn path_graph(n: usize) -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(n);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        for i in 0..n - 1 {
            s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
        }
        s
    }

    #[test]
    fn valid_path_decomposition() {
        let s = path_graph(4);
        let mut td = TreeDecomposition::singleton(vec![ElemId(0), ElemId(1)]);
        let c1 = td.add_child(td.root(), vec![ElemId(1), ElemId(2)]);
        td.add_child(c1, vec![ElemId(2), ElemId(3)]);
        assert_eq!(td.validate(&s), Ok(()));
    }

    #[test]
    fn detects_uncovered_element() {
        let s = path_graph(3);
        let mut td = TreeDecomposition::singleton(vec![ElemId(0), ElemId(1)]);
        td.add_child(td.root(), vec![ElemId(1)]);
        assert_eq!(
            td.validate(&s),
            Err(TdViolation::ElementNotCovered(ElemId(2)))
        );
    }

    #[test]
    fn detects_uncovered_tuple() {
        let s = path_graph(3);
        let mut td = TreeDecomposition::singleton(vec![ElemId(0), ElemId(1)]);
        td.add_child(td.root(), vec![ElemId(2)]);
        // Edge (1,2) does not fit in any bag.
        let e = s.signature().lookup("e").unwrap();
        assert_eq!(
            td.validate(&s),
            Err(TdViolation::TupleNotCovered(e, vec![ElemId(1), ElemId(2)]))
        );
    }

    #[test]
    fn detects_disconnected_occurrences() {
        let s = path_graph(3);
        // Element 0 appears in two non-adjacent nodes.
        let mut td = TreeDecomposition::singleton(vec![ElemId(0), ElemId(1)]);
        let mid = td.add_child(td.root(), vec![ElemId(1), ElemId(2)]);
        td.add_child(mid, vec![ElemId(2), ElemId(0)]);
        assert_eq!(td.validate(&s), Err(TdViolation::Disconnected(ElemId(0))));
    }

    #[test]
    fn detects_foreign_element() {
        let s = path_graph(2);
        let td = TreeDecomposition::singleton(vec![ElemId(0), ElemId(1), ElemId(9)]);
        assert!(matches!(
            td.validate(&s),
            Err(TdViolation::ForeignElement(_, ElemId(9)))
        ));
    }
}
