//! The modified ("nice") normal form of paper §5.
//!
//! Section 5 refines Definition 2.3: element replacement is split into an
//! *element removal* node and an *element introduction* node, bags are
//! treated as sets (so permutation nodes disappear) and the full-size
//! condition is dropped. Kinds:
//!
//! * **Leaf** — no children;
//! * **Introduce(a)** — one child, `bag = child_bag ∪ {a}`;
//! * **Forget(a)** — one child, `bag = child_bag ∖ {a}` (the paper's
//!   *element removal* node);
//! * **Branch** — two children, both bags identical to the node's.
//!
//! The §5.3 refinement that every domain element occurs in some *leaf* bag
//! is available through [`NiceOptions::every_elem_in_leaf`]. The paper's
//! second §5.3 device (buffering every branch node with an identical-bag
//! parent, so decompositions can be re-rooted at any leaf) exists to
//! support their re-rooting implementation of the enumeration algorithm;
//! our solvers compute the top-down `solve↓` tables for every node kind
//! directly, which subsumes it (see `mdtw-core::enumeration`).

use crate::tree::{NodeId, TreeDecomposition};
use mdtw_structure::ElemId;

/// Kinds of nodes in a nice tree decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NiceKind {
    /// No children; the bag is an original decomposition bag.
    Leaf,
    /// One child; this node's bag adds the element to the child's bag.
    Introduce(ElemId),
    /// One child; this node's bag removes the element from the child's bag
    /// (the paper's "element removal node").
    Forget(ElemId),
    /// Two children, both carrying this node's bag.
    Branch,
}

/// One node of a [`NiceTd`].
#[derive(Debug, Clone)]
pub struct NiceNode {
    /// The bag as a sorted set.
    pub bag: Vec<ElemId>,
    /// Children (at most two).
    pub children: Vec<NodeId>,
    /// Parent link; `None` for the root.
    pub parent: Option<NodeId>,
    /// The node kind (cached at construction).
    pub kind: NiceKind,
}

/// Options controlling [`NiceTd::from_td`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NiceOptions {
    /// §5.3: guarantee every element covered by the decomposition occurs in
    /// the bag of at least one leaf (needed by the leaf-based `prime()`
    /// rule of the enumeration program).
    pub every_elem_in_leaf: bool,
}

/// A tree decomposition in the modified normal form of §5.
#[derive(Debug, Clone)]
pub struct NiceTd {
    nodes: Vec<NiceNode>,
    root: NodeId,
}

impl NiceTd {
    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false; kept for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node access.
    #[inline]
    pub fn node(&self, id: NodeId) -> &NiceNode {
        &self.nodes[id.index()]
    }

    /// The sorted bag of `id`.
    #[inline]
    pub fn bag(&self, id: NodeId) -> &[ElemId] {
        &self.nodes[id.index()].bag
    }

    /// The kind of `id`.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NiceKind {
        self.nodes[id.index()].kind
    }

    /// The width `max |bag| − 1`.
    pub fn width(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.bag.len())
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Post-order traversal (children before parents): the order of the
    /// bottom-up `solve` computation of Figures 5 and 6.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, 0usize)];
        while let Some(last) = stack.len().checked_sub(1) {
            let (node, cursor) = stack[last];
            let children = &self.nodes[node.index()].children;
            if cursor < children.len() {
                stack[last].1 += 1;
                stack.push((children[cursor], 0));
            } else {
                out.push(node);
                stack.pop();
            }
        }
        out
    }

    /// Pre-order traversal (parents before children): the order of the
    /// top-down `solve↓` computation of §5.3.
    pub fn pre_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            out.push(node);
            for &c in self.nodes[node.index()].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All leaf nodes.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).children.is_empty())
            .collect()
    }

    /// True if `elem` occurs in the bag of `node`.
    #[inline]
    pub fn bag_contains(&self, node: NodeId, elem: ElemId) -> bool {
        self.bag(node).binary_search(&elem).is_ok()
    }

    /// Counts nodes per kind: `(leaf, introduce, forget, branch)`.
    pub fn kind_histogram(&self) -> (usize, usize, usize, usize) {
        let mut h = (0, 0, 0, 0);
        for n in &self.nodes {
            match n.kind {
                NiceKind::Leaf => h.0 += 1,
                NiceKind::Introduce(_) => h.1 += 1,
                NiceKind::Forget(_) => h.2 += 1,
                NiceKind::Branch => h.3 += 1,
            }
        }
        h
    }

    /// Converts back to a set-form [`TreeDecomposition`] for validation.
    pub fn to_set_td(&self) -> TreeDecomposition {
        let mut td = TreeDecomposition::singleton(self.bag(self.root).to_vec());
        let mut stack = vec![(self.root, td.root())];
        while let Some((old, new)) = stack.pop() {
            for &c in &self.node(old).children {
                let nc = td.add_child(new, self.bag(c).to_vec());
                stack.push((c, nc));
            }
        }
        td
    }

    /// Checks the structural invariants of the nice form.
    pub fn validate_nice_form(&self) -> Result<(), String> {
        for id in self.node_ids() {
            let node = self.node(id);
            if node.bag.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("bag of {id} is not a sorted set"));
            }
            match (node.children.len(), node.kind) {
                (0, NiceKind::Leaf) => {}
                (1, NiceKind::Introduce(a)) => {
                    let child = self.bag(node.children[0]);
                    let mut expect = child.to_vec();
                    expect.push(a);
                    expect.sort_unstable();
                    if child.contains(&a) || expect != node.bag {
                        return Err(format!("{id}: bad introduce({a})"));
                    }
                }
                (1, NiceKind::Forget(a)) => {
                    let child = self.bag(node.children[0]);
                    let expect: Vec<ElemId> = child.iter().copied().filter(|&e| e != a).collect();
                    if !child.contains(&a) || expect != node.bag {
                        return Err(format!("{id}: bad forget({a})"));
                    }
                }
                (2, NiceKind::Branch) => {
                    for &c in &node.children {
                        if self.bag(c) != &node.bag[..] {
                            return Err(format!("branch {id}: child bag differs"));
                        }
                    }
                }
                (n, k) => return Err(format!("{id}: kind {k:?} with {n} children")),
            }
        }
        Ok(())
    }

    /// Converts an arbitrary tree decomposition to the nice form. The width
    /// is preserved exactly; the node count grows by `O(w)` per original
    /// edge.
    pub fn from_td(td: &TreeDecomposition, options: NiceOptions) -> Self {
        Self::from_td_with_rank(td, options, &|_| 0)
    }

    /// Like [`from_td`](Self::from_td) but with a *rank* controlling the
    /// order in which bag differences are materialized: along every morph
    /// chain, higher-rank elements are forgotten first and lower-rank
    /// elements introduced first.
    ///
    /// This is how the §5.2 convention "whenever an FD is in a bag, its
    /// rhs attribute is as well" survives the conversion: give FDs rank 1
    /// and attributes rank 0, so an FD always leaves a bag before its rhs
    /// attribute and enters after it.
    pub fn from_td_with_rank(
        td: &TreeDecomposition,
        options: NiceOptions,
        rank: &dyn Fn(ElemId) -> u8,
    ) -> Self {
        let mut b = NiceBuilder {
            nodes: Vec::new(),
            rank,
        };
        let mut rep: Vec<Option<NodeId>> = vec![None; td.len()];
        for id in td.post_order() {
            let bag = td.bag(id).to_vec();
            let children = &td.node(id).children;
            let built = if children.is_empty() {
                b.add(bag, NiceKind::Leaf, &[])
            } else {
                // Morph every child chain up to this node's bag, then join.
                let mut tops: Vec<NodeId> = children
                    .iter()
                    .map(|&c| {
                        let child_rep = rep[c.index()].expect("post-order");
                        b.morph(child_rep, &bag)
                    })
                    .collect();
                // Join pairwise with branch nodes.
                while tops.len() > 1 {
                    let right = tops.pop().expect("len > 1");
                    let left = tops.pop().expect("len > 1");
                    let join = b.add(bag.clone(), NiceKind::Branch, &[left, right]);
                    tops.push(join);
                }
                tops.pop().expect("one top")
            };
            rep[id.index()] = Some(built);
        }
        let root = rep[td.root().index()].expect("root built");
        let mut nice = Self {
            nodes: b.nodes,
            root,
        };
        if options.every_elem_in_leaf {
            nice.ensure_leaf_coverage();
        }
        debug_assert_eq!(nice.validate_nice_form(), Ok(()));
        nice
    }

    /// §5.3: for every element that occurs in no leaf bag, pick a node `t`
    /// containing it and splice a fresh branch node above `t` whose second
    /// child is a new leaf carrying `bag(t)`.
    fn ensure_leaf_coverage(&mut self) {
        use std::collections::BTreeSet;
        let mut in_leaf: BTreeSet<ElemId> = BTreeSet::new();
        let mut everywhere: BTreeSet<ElemId> = BTreeSet::new();
        for id in self.node_ids() {
            let node = self.node(id);
            everywhere.extend(node.bag.iter().copied());
            if node.children.is_empty() {
                in_leaf.extend(node.bag.iter().copied());
            }
        }
        let missing: Vec<ElemId> = everywhere.difference(&in_leaf).copied().collect();
        for e in missing {
            // Re-check: a previous splice may have created a leaf with e.
            let covered = self
                .node_ids()
                .any(|id| self.node(id).children.is_empty() && self.bag_contains(id, e));
            if covered {
                continue;
            }
            let host = self
                .node_ids()
                .find(|&id| self.bag_contains(id, e))
                .expect("element occurs somewhere");
            self.splice_leaf_above(host);
        }
    }

    /// Inserts `branch(bag(t)) -> [t, leaf(bag(t))]` above `t`.
    fn splice_leaf_above(&mut self, t: NodeId) {
        let bag = self.bag(t).to_vec();
        let parent = self.node(t).parent;
        let leaf = NodeId(self.nodes.len() as u32);
        self.nodes.push(NiceNode {
            bag: bag.clone(),
            children: Vec::new(),
            parent: None, // fixed below
            kind: NiceKind::Leaf,
        });
        let branch = NodeId(self.nodes.len() as u32);
        self.nodes.push(NiceNode {
            bag,
            children: vec![t, leaf],
            parent,
            kind: NiceKind::Branch,
        });
        self.nodes[leaf.index()].parent = Some(branch);
        self.nodes[t.index()].parent = Some(branch);
        match parent {
            Some(p) => {
                let slot = self.nodes[p.index()]
                    .children
                    .iter()
                    .position(|&c| c == t)
                    .expect("edge exists");
                self.nodes[p.index()].children[slot] = branch;
            }
            None => self.root = branch,
        }
    }
}

/// Incremental builder for nice decompositions.
struct NiceBuilder<'a> {
    nodes: Vec<NiceNode>,
    rank: &'a dyn Fn(ElemId) -> u8,
}

impl NiceBuilder<'_> {
    fn add(&mut self, bag: Vec<ElemId>, kind: NiceKind, children: &[NodeId]) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        for &c in children {
            self.nodes[c.index()].parent = Some(id);
        }
        self.nodes.push(NiceNode {
            bag,
            children: children.to_vec(),
            parent: None,
            kind,
        });
        id
    }

    /// Builds the forget/introduce chain from the bag of `from` up to
    /// `target`, returning the top node (whose bag equals `target`).
    /// Forgets run by descending rank, introductions by ascending rank.
    fn morph(&mut self, from: NodeId, target: &[ElemId]) -> NodeId {
        let mut current = self.nodes[from.index()].bag.clone();
        let mut top = from;
        let mut to_forget: Vec<ElemId> = current
            .iter()
            .copied()
            .filter(|e| !target.contains(e))
            .collect();
        to_forget.sort_by_key(|&e| std::cmp::Reverse((self.rank)(e)));
        for e in to_forget {
            current.retain(|&x| x != e);
            top = self.add(current.clone(), NiceKind::Forget(e), &[top]);
        }
        let mut to_introduce: Vec<ElemId> = target
            .iter()
            .copied()
            .filter(|e| !current.contains(e))
            .collect();
        to_introduce.sort_by_key(|&e| (self.rank)(e));
        for e in to_introduce {
            current.push(e);
            current.sort_unstable();
            top = self.add(current.clone(), NiceKind::Introduce(e), &[top]);
        }
        debug_assert_eq!(current, target);
        top
    }
}

/// Augments every bag with companion elements: wherever `e` occurs in a
/// bag, `companions(e)` are added too.
///
/// This implements the paper's §5.2 requirement that *"whenever an FD `f`
/// is contained in a bag of the tree decomposition, then the attribute
/// `rhs(f)` is as well"* (worst case: doubles the width).
///
/// **Precondition** (satisfied by the `lh`/`rh` encoding): for every
/// element `e` and companion `c`, some bag already contains both — then
/// each occurrence subtree of `c` grows by subtrees that intersect it,
/// preserving connectedness. Validity should be re-checked in tests via
/// [`TreeDecomposition::validate`].
pub fn augment_bags(td: &mut TreeDecomposition, mut companions: impl FnMut(ElemId) -> Vec<ElemId>) {
    td.map_bags(|_, bag| {
        let mut out = bag.to_vec();
        for &e in bag {
            out.extend(companions(e));
        }
        out
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> ElemId {
        ElemId(i)
    }

    fn sample_td() -> TreeDecomposition {
        let mut td = TreeDecomposition::singleton(vec![e(0), e(1), e(2)]);
        let c1 = td.add_child(td.root(), vec![e(1), e(3)]);
        td.add_child(c1, vec![e(3), e(4)]);
        td.add_child(td.root(), vec![e(2), e(5)]);
        td.add_child(td.root(), vec![e(0), e(6)]);
        td
    }

    #[test]
    fn nice_form_is_valid_and_width_preserving() {
        let td = sample_td();
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        assert_eq!(nice.validate_nice_form(), Ok(()));
        assert_eq!(nice.width(), td.width());
    }

    #[test]
    fn nice_form_is_still_a_decomposition() {
        use mdtw_structure::{Domain, Signature, Structure};
        use std::sync::Arc;
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(7);
        let mut s = Structure::new(sig, dom);
        let ep = s.signature().lookup("e").unwrap();
        for (a, b) in [(0, 1), (1, 3), (3, 4), (2, 5), (0, 6), (0, 2)] {
            s.insert(ep, &[e(a), e(b)]);
        }
        let td = sample_td();
        assert_eq!(td.validate(&s), Ok(()));
        for opts in [
            NiceOptions::default(),
            NiceOptions {
                every_elem_in_leaf: true,
            },
        ] {
            let nice = NiceTd::from_td(&td, opts);
            assert_eq!(nice.to_set_td().validate(&s), Ok(()));
        }
    }

    #[test]
    fn every_elem_in_leaf_option() {
        let td = sample_td();
        let nice = NiceTd::from_td(
            &td,
            NiceOptions {
                every_elem_in_leaf: true,
            },
        );
        assert_eq!(nice.validate_nice_form(), Ok(()));
        // Every element that occurs anywhere also occurs in a leaf.
        use std::collections::BTreeSet;
        let mut everywhere: BTreeSet<ElemId> = BTreeSet::new();
        let mut in_leaf: BTreeSet<ElemId> = BTreeSet::new();
        for id in nice.node_ids() {
            everywhere.extend(nice.bag(id).iter().copied());
            if nice.node(id).children.is_empty() {
                in_leaf.extend(nice.bag(id).iter().copied());
            }
        }
        assert_eq!(everywhere, in_leaf);
    }

    #[test]
    fn kinds_and_histogram() {
        let td = sample_td();
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        let (leaf, intro, forget, branch) = nice.kind_histogram();
        assert!(leaf >= 3);
        assert!(intro >= 1);
        assert!(forget >= 1);
        assert!(branch >= 2); // root had 3 children
        assert_eq!(leaf + intro + forget + branch, nice.len());
    }

    #[test]
    fn traversal_orders() {
        let td = sample_td();
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        let po = nice.post_order();
        let pre = nice.pre_order();
        assert_eq!(po.len(), nice.len());
        assert_eq!(pre.len(), nice.len());
        assert_eq!(*po.last().unwrap(), nice.root());
        assert_eq!(pre[0], nice.root());
    }

    #[test]
    fn augment_bags_with_companions() {
        use mdtw_structure::{Domain, Signature, Structure};
        use std::sync::Arc;
        // e(1) must accompany e(0) wherever it occurs; they co-occur in the
        // root bag, so connectedness is preserved.
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(7);
        let mut s = Structure::new(sig, dom);
        let ep = s.signature().lookup("e").unwrap();
        for (a, b) in [(0, 1), (1, 3), (3, 4), (2, 5), (0, 6), (0, 2)] {
            s.insert(ep, &[e(a), e(b)]);
        }
        let mut td = sample_td();
        augment_bags(&mut td, |x| if x == e(0) { vec![e(1)] } else { vec![] });
        assert_eq!(td.validate(&s), Ok(()));
        // Every bag that contains 0 now contains 1 as well.
        for id in td.node_ids() {
            if td.bag_contains(id, e(0)) {
                assert!(td.bag_contains(id, e(1)));
            }
        }
    }

    #[test]
    fn singleton_decomposition() {
        let td = TreeDecomposition::singleton(vec![e(0), e(1)]);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        assert_eq!(nice.len(), 1);
        assert_eq!(nice.kind(nice.root()), NiceKind::Leaf);
    }
}
