//! Tree-decomposition construction.
//!
//! Bodlaender's linear-time algorithm (\[3\] in the paper) is famously
//! impractical; like the paper's own prototype we rely on elimination-order
//! heuristics (min-degree, min-fill) which are exact on chordal inputs and
//! near-optimal on the bounded-treewidth workloads used here, plus an exact
//! exponential search for small instances (used in tests to certify widths,
//! e.g. that Example 2.2 has treewidth 2).

use crate::tree::{NodeId, TreeDecomposition};
use mdtw_structure::fx::FxHashSet;
use mdtw_structure::{ElemId, Structure};

/// The primal (Gaifman) graph of a structure: one vertex per domain
/// element, an edge whenever two elements co-occur in some EDB tuple.
#[derive(Debug, Clone)]
pub struct PrimalGraph {
    /// `adj[v]` is the sorted set of neighbours of `v`.
    adj: Vec<Vec<u32>>,
}

impl PrimalGraph {
    /// Builds the primal graph of `structure`.
    pub fn of(structure: &Structure) -> Self {
        let n = structure.domain().len();
        let mut sets: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
        for p in structure.signature().preds() {
            for t in structure.relation(p).iter() {
                for (i, &a) in t.iter().enumerate() {
                    for &b in &t[i + 1..] {
                        if a != b {
                            sets[a.index()].insert(b.0);
                            sets[b.index()].insert(a.0);
                        }
                    }
                }
            }
        }
        let adj = sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<u32> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        Self { adj }
    }

    /// Builds a primal graph directly from an edge list on `n` vertices.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut sets: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
        for &(a, b) in edges {
            if a != b {
                sets[a as usize].insert(b);
                sets[b as usize].insert(a);
            }
        }
        let adj = sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<u32> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        Self { adj }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }
}

/// Elimination-order heuristic to use for decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Heuristic {
    /// Repeatedly eliminate a vertex of minimum current degree.
    MinDegree,
    /// Repeatedly eliminate a vertex adding the fewest fill-in edges.
    MinFill,
}

/// Work graph for elimination: mutable adjacency sets.
struct WorkGraph {
    adj: Vec<FxHashSet<u32>>,
    alive: Vec<bool>,
}

impl WorkGraph {
    fn new(g: &PrimalGraph) -> Self {
        Self {
            adj: g
                .adj
                .iter()
                .map(|ns| ns.iter().copied().collect())
                .collect(),
            alive: vec![true; g.len()],
        }
    }

    fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    fn fill_in(&self, v: u32) -> usize {
        let ns: Vec<u32> = self.adj[v as usize].iter().copied().collect();
        let mut missing = 0;
        for (i, &a) in ns.iter().enumerate() {
            for &b in &ns[i + 1..] {
                if !self.adj[a as usize].contains(&b) {
                    missing += 1;
                }
            }
        }
        missing
    }

    /// Eliminates `v`: connects its neighbourhood into a clique, removes `v`.
    /// Returns the bag `{v} ∪ N(v)`.
    fn eliminate(&mut self, v: u32) -> Vec<u32> {
        let ns: Vec<u32> = self.adj[v as usize].iter().copied().collect();
        for (i, &a) in ns.iter().enumerate() {
            for &b in &ns[i + 1..] {
                self.adj[a as usize].insert(b);
                self.adj[b as usize].insert(a);
            }
        }
        for &u in &ns {
            self.adj[u as usize].remove(&v);
        }
        self.adj[v as usize].clear();
        self.alive[v as usize] = false;
        let mut bag = ns;
        bag.push(v);
        bag.sort_unstable();
        bag
    }
}

/// Computes an elimination order with the given heuristic.
pub fn elimination_order(g: &PrimalGraph, heuristic: Heuristic) -> Vec<u32> {
    let n = g.len();
    let mut wg = WorkGraph::new(g);
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n as u32)
            .filter(|&v| wg.alive[v as usize])
            .min_by_key(|&v| match heuristic {
                Heuristic::MinDegree => (wg.degree(v), v),
                Heuristic::MinFill => (wg.fill_in(v), v),
            })
            .expect("alive vertex exists");
        wg.eliminate(v);
        order.push(v);
    }
    order
}

/// Builds a rooted tree decomposition from an elimination order over the
/// primal graph (the standard "elimination tree" construction: the bag of
/// `v` is `{v} ∪ N(v)` at elimination time; its parent is the bag of the
/// earliest-eliminated element of `N(v)`).
pub fn decompose_with_order(g: &PrimalGraph, order: &[u32]) -> TreeDecomposition {
    let n = g.len();
    assert_eq!(order.len(), n, "order must cover all vertices");
    if n == 0 {
        return TreeDecomposition::singleton(Vec::new());
    }
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i;
    }
    let mut wg = WorkGraph::new(g);
    let mut bags: Vec<Vec<u32>> = Vec::with_capacity(n);
    for &v in order {
        bags.push(wg.eliminate(v));
    }
    // Parent of bag i: the elimination-position of the earliest-eliminated
    // *other* member of the bag that is eliminated after v.
    // (All members other than v are eliminated after v by construction.)
    // Build the tree rooted at the last-eliminated vertex's bag.
    // First compute parent indices.
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for (i, bag) in bags.iter().enumerate() {
        let v = order[i];
        let p = bag
            .iter()
            .filter(|&&u| u != v)
            .map(|&u| pos[u as usize])
            .min();
        parent[i] = p;
    }
    // Roots: bags with no parent (one per connected component). Chain the
    // components together under the last root so we return a single tree
    // (bags may be disjoint; attaching preserves all conditions because the
    // connecting edges carry no shared elements).
    let roots: Vec<usize> = (0..n).filter(|&i| parent[i].is_none()).collect();
    let main_root = *roots.last().expect("at least one root");
    // Build via DFS from main_root over child lists.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(i);
        }
    }
    for &r in &roots {
        if r != main_root {
            children[main_root].push(r);
        }
    }
    let to_elems = |b: &Vec<u32>| b.iter().map(|&x| ElemId(x)).collect::<Vec<_>>();
    let mut td = TreeDecomposition::singleton(to_elems(&bags[main_root]));
    let mut stack: Vec<(usize, NodeId)> = vec![(main_root, td.root())];
    while let Some((i, node)) = stack.pop() {
        for &c in &children[i] {
            let child_node = td.add_child(node, to_elems(&bags[c]));
            stack.push((c, child_node));
        }
    }
    td
}

/// Convenience: decomposes `structure` with the given heuristic.
pub fn decompose(structure: &Structure, heuristic: Heuristic) -> TreeDecomposition {
    let g = PrimalGraph::of(structure);
    let order = elimination_order(&g, heuristic);
    decompose_with_order(&g, &order)
}

/// Exact treewidth by dynamic programming over vertex subsets
/// (Bodlaender–Held–Karp style, `O(2^n · n²)`). Only for `n ≤ 20`;
/// intended for tests and tiny instances.
///
/// Returns the treewidth of the primal graph.
pub fn exact_treewidth(g: &PrimalGraph) -> usize {
    let n = g.len();
    assert!(n <= 20, "exact_treewidth is exponential; n ≤ 20 required");
    if n == 0 {
        return 0;
    }
    // f[S] = minimal over elimination orders of S (eliminated first) of the
    // maximal back-degree encountered. Back-degree of v w.r.t. already
    // eliminated set E: number of vertices outside E∪{v} reachable from v
    // through E.
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut f = vec![u8::MAX; (full as usize) + 1];
    f[0] = 0;
    // Iterate subsets in increasing popcount order implicitly: increasing
    // numeric order suffices since S' = S \ {v} < S numerically.
    for s in 1..=full {
        let su = s as usize;
        let mut best = u8::MAX;
        let mut bits = s;
        while bits != 0 {
            let v = bits.trailing_zeros();
            bits &= bits - 1;
            let prev = f[(s & !(1 << v)) as usize];
            if prev == u8::MAX {
                continue;
            }
            let deg = reach_degree(g, v, s & !(1 << v)) as u8;
            best = best.min(prev.max(deg));
        }
        f[su] = best;
    }
    f[full as usize] as usize
}

/// Number of vertices outside `eliminated ∪ {v}` reachable from `v` via
/// vertices in `eliminated`.
fn reach_degree(g: &PrimalGraph, v: u32, eliminated: u32) -> usize {
    let mut seen = 1u32 << v;
    let mut stack = vec![v];
    let mut degree = 0;
    while let Some(u) = stack.pop() {
        for &w in g.neighbors(u) {
            let bit = 1u32 << w;
            if seen & bit != 0 {
                continue;
            }
            seen |= bit;
            if eliminated & bit != 0 {
                stack.push(w);
            } else {
                degree += 1;
            }
        }
    }
    degree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> PrimalGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        PrimalGraph::from_edges(n, &edges)
    }

    fn clique(n: usize) -> PrimalGraph {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in i + 1..n as u32 {
                edges.push((i, j));
            }
        }
        PrimalGraph::from_edges(n, &edges)
    }

    #[test]
    fn exact_treewidth_of_known_graphs() {
        assert_eq!(exact_treewidth(&cycle(5)), 2);
        assert_eq!(exact_treewidth(&clique(4)), 3);
        assert_eq!(exact_treewidth(&clique(6)), 5);
        // A tree (star) has treewidth 1.
        let star = PrimalGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(exact_treewidth(&star), 1);
        // A single vertex / empty graph.
        assert_eq!(exact_treewidth(&PrimalGraph::from_edges(1, &[])), 0);
    }

    #[test]
    fn heuristics_produce_valid_width_on_cycle() {
        let g = cycle(8);
        for h in [Heuristic::MinDegree, Heuristic::MinFill] {
            let order = elimination_order(&g, h);
            let td = decompose_with_order(&g, &order);
            // Heuristics are exact on cycles: width 2.
            assert_eq!(td.width(), 2, "{h:?}");
        }
    }

    #[test]
    fn decomposition_of_structure_is_valid() {
        use mdtw_structure::{Domain, Signature};
        use std::sync::Arc;
        // Build a small 2-tree-ish structure with a ternary relation.
        let sig = Arc::new(Signature::from_pairs([("r", 3), ("e", 2)]));
        let dom = Domain::anonymous(7);
        let mut s = Structure::new(sig, dom);
        let r = s.signature().lookup("r").unwrap();
        let e = s.signature().lookup("e").unwrap();
        s.insert(r, &[ElemId(0), ElemId(1), ElemId(2)]);
        s.insert(r, &[ElemId(2), ElemId(3), ElemId(4)]);
        s.insert(e, &[ElemId(4), ElemId(5)]);
        s.insert(e, &[ElemId(5), ElemId(6)]);
        for h in [Heuristic::MinDegree, Heuristic::MinFill] {
            let td = decompose(&s, h);
            assert_eq!(td.validate(&s), Ok(()), "{h:?}");
            assert!(td.width() <= 2);
        }
    }

    #[test]
    fn disconnected_structure_still_decomposes() {
        use mdtw_structure::{Domain, Signature};
        use std::sync::Arc;
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(4);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        s.insert(e, &[ElemId(0), ElemId(1)]);
        s.insert(e, &[ElemId(2), ElemId(3)]);
        let td = decompose(&s, Heuristic::MinDegree);
        assert_eq!(td.validate(&s), Ok(()));
    }

    #[test]
    fn elimination_tree_parent_is_earliest_neighbor() {
        // Path 0-1-2, order (0,2,1): bag(0)={0,1}, bag(2)={1,2}, bag(1)={1}.
        let g = PrimalGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let td = decompose_with_order(&g, &[0, 2, 1]);
        assert_eq!(td.len(), 3);
        assert_eq!(td.width(), 1);
    }
}
