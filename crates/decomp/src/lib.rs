//! # mdtw-decomp
//!
//! Tree decompositions for the *Monadic Datalog over Finite Structures with
//! Bounded Treewidth* reproduction (Gottlob, Pichler & Wei, PODS 2007).
//!
//! This crate provides the entire decomposition substrate of the paper:
//!
//! * [`TreeDecomposition`] — rooted decompositions with set bags (§2.2),
//!   with full validation of the three decomposition conditions;
//! * [`heuristics`] — construction by min-degree / min-fill elimination
//!   orders plus an exact exponential treewidth algorithm for small
//!   instances (Bodlaender's linear-time algorithm \[3\] is impractical and
//!   the paper itself generates decompositions directly);
//! * [`TupleTd`] — the normal form of Definition 2.3 (tuple bags;
//!   permutation / element-replacement / branch nodes) with the
//!   Proposition 2.4 normalization pipeline;
//! * [`NiceTd`] — the modified ("nice") normal form of §5 (leaf /
//!   introduce / forget / branch) including the §5.3 refinements;
//! * [`encode_tuple_td`] — the τ_td structure `𝒜_td` of §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod heuristics;
pub mod nice;
pub mod tree;
pub mod tuple_normal;
pub mod validate;

pub use encode::{encode_tuple_td, TdEncoding};
pub use heuristics::{
    decompose, decompose_with_order, elimination_order, exact_treewidth, Heuristic, PrimalGraph,
};
pub use nice::{augment_bags, NiceKind, NiceNode, NiceOptions, NiceTd};
pub use tree::{NodeId, TdNode, TreeDecomposition};
pub use tuple_normal::{NormalizeError, TupleNode, TupleNodeKind, TupleTd};
pub use validate::TdViolation;
