//! Relational schemas `(R, F)` and classical FD reasoning (paper §2.1).

use mdtw_structure::fx::FxHashMap;
use std::fmt;

/// An attribute of a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl AttrId {
    /// Index into the schema's attribute table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A functional dependency `lhs → rhs` (right-hand sides are single
/// attributes w.l.o.g., as in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    /// Left-hand side attributes (sorted, deduplicated).
    pub lhs: Vec<AttrId>,
    /// The single right-hand side attribute.
    pub rhs: AttrId,
}

/// A set of attributes, stored as a sorted vector (schemas here are small
/// enough that this beats a bitset in clarity; hot paths in the solvers
/// use bag-local bitmasks instead).
pub type AttrSet = Vec<AttrId>;

/// A relational schema `(R, F)`.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    attr_names: Vec<String>,
    attr_by_name: FxHashMap<String, AttrId>,
    fds: Vec<Fd>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an attribute.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn add_attr(&mut self, name: impl Into<String>) -> AttrId {
        let name = name.into();
        assert!(
            !self.attr_by_name.contains_key(&name),
            "attribute `{name}` declared twice"
        );
        let id = AttrId(self.attr_names.len() as u32);
        self.attr_by_name.insert(name.clone(), id);
        self.attr_names.push(name);
        id
    }

    /// Adds a functional dependency `lhs → rhs`; returns its index.
    ///
    /// # Panics
    /// Panics if any attribute is unknown or `lhs` is empty.
    pub fn add_fd(&mut self, lhs: &[AttrId], rhs: AttrId) -> usize {
        assert!(!lhs.is_empty(), "FD with empty left-hand side");
        for a in lhs.iter().chain(std::iter::once(&rhs)) {
            assert!(a.index() < self.attr_names.len(), "unknown attribute {a:?}");
        }
        let mut lhs = lhs.to_vec();
        lhs.sort_unstable();
        lhs.dedup();
        self.fds.push(Fd { lhs, rhs });
        self.fds.len() - 1
    }

    /// Parses a compact FD notation against declared attribute names, e.g.
    /// `"ab -> c"` (single-character attribute names only).
    ///
    /// # Panics
    /// Panics on malformed input or unknown attributes; intended for
    /// tests and examples.
    pub fn add_fd_str(&mut self, spec: &str) -> usize {
        let (l, r) = spec.split_once("->").expect("FD must contain `->`");
        let lhs: Vec<AttrId> = l
            .trim()
            .chars()
            .map(|c| self.attr(&c.to_string()).expect("unknown lhs attribute"))
            .collect();
        let rhs_chars: Vec<char> = r.trim().chars().collect();
        assert_eq!(rhs_chars.len(), 1, "single-attribute rhs required");
        let rhs = self
            .attr(&rhs_chars[0].to_string())
            .expect("unknown rhs attribute");
        self.add_fd(&lhs, rhs)
    }

    /// Looks an attribute up by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.attr_by_name.get(name).copied()
    }

    /// The name of `attr`.
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.attr_names[attr.index()]
    }

    /// Number of attributes `|R|`.
    pub fn attr_count(&self) -> usize {
        self.attr_names.len()
    }

    /// Number of FDs `|F|`.
    pub fn fd_count(&self) -> usize {
        self.fds.len()
    }

    /// The FDs.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// Iterates over all attributes.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attr_names.len() as u32).map(AttrId)
    }

    /// The attribute closure `X⁺` in time linear in the schema size
    /// (Beeri–Bernstein counting algorithm).
    pub fn closure(&self, seed: &[AttrId]) -> AttrSet {
        let n = self.attr_names.len();
        let mut in_closure = vec![false; n];
        // uses[a]: FDs with a in their lhs. counter[f]: lhs attrs missing.
        let mut uses: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut counter: Vec<u32> = Vec::with_capacity(self.fds.len());
        for (fi, fd) in self.fds.iter().enumerate() {
            counter.push(fd.lhs.len() as u32);
            for a in &fd.lhs {
                uses[a.index()].push(fi as u32);
            }
        }
        let mut queue: Vec<AttrId> = Vec::new();
        for &a in seed {
            if !in_closure[a.index()] {
                in_closure[a.index()] = true;
                queue.push(a);
            }
        }
        while let Some(a) = queue.pop() {
            for &fi in &uses[a.index()] {
                counter[fi as usize] -= 1;
                if counter[fi as usize] == 0 {
                    let rhs = self.fds[fi as usize].rhs;
                    if !in_closure[rhs.index()] {
                        in_closure[rhs.index()] = true;
                        queue.push(rhs);
                    }
                }
            }
        }
        (0..n as u32)
            .map(AttrId)
            .filter(|a| in_closure[a.index()])
            .collect()
    }

    /// True if `set` determines all of `R`.
    pub fn is_superkey(&self, set: &[AttrId]) -> bool {
        self.closure(set).len() == self.attr_count()
    }

    /// True if `set` is a minimal superkey.
    pub fn is_key(&self, set: &[AttrId]) -> bool {
        if !self.is_superkey(set) {
            return false;
        }
        (0..set.len()).all(|i| {
            let mut smaller = set.to_vec();
            smaller.remove(i);
            !self.is_superkey(&smaller)
        })
    }

    /// Shrinks a superkey to a key by greedily dropping attributes.
    pub fn minimize_superkey(&self, set: &[AttrId]) -> AttrSet {
        assert!(self.is_superkey(set), "input must be a superkey");
        let mut key = set.to_vec();
        let mut i = 0;
        while i < key.len() {
            let mut candidate = key.clone();
            candidate.remove(i);
            if self.is_superkey(&candidate) {
                key = candidate;
            } else {
                i += 1;
            }
        }
        key.sort_unstable();
        key
    }

    /// Enumerates **all** keys with the Lucchesi–Osborn algorithm
    /// (polynomial in the output size; the set of keys may itself be
    /// exponential — this is the NP-hard baseline the paper's Section 5
    /// algorithms avoid).
    pub fn keys(&self) -> Vec<AttrSet> {
        let all: AttrSet = self.attrs().collect();
        if all.is_empty() {
            return vec![Vec::new()];
        }
        let mut keys = vec![self.minimize_superkey(&all)];
        let mut i = 0;
        while i < keys.len() {
            let key = keys[i].clone();
            for fd in &self.fds {
                // Candidate superkey: lhs(f) ∪ (K ∖ {rhs(f)}).
                let mut candidate: AttrSet = fd.lhs.clone();
                candidate.extend(key.iter().copied().filter(|&a| a != fd.rhs));
                candidate.sort_unstable();
                candidate.dedup();
                let dominated = keys
                    .iter()
                    .any(|k| k.iter().all(|a| candidate.binary_search(a).is_ok()));
                if !dominated {
                    let new_key = self.minimize_superkey(&candidate);
                    if !keys.contains(&new_key) {
                        keys.push(new_key);
                    }
                }
            }
            i += 1;
        }
        keys.sort();
        keys
    }

    /// True if `attr` is *prime* (member of at least one key), computed
    /// through key enumeration. Exponential in the worst case.
    pub fn is_prime_exact(&self, attr: AttrId) -> bool {
        self.keys().iter().any(|k| k.contains(&attr))
    }

    /// All prime attributes, through key enumeration.
    pub fn prime_attributes_exact(&self) -> AttrSet {
        let mut out: AttrSet = Vec::new();
        for k in self.keys() {
            out.extend(k);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Brute-force primality via the paper's Example 2.6 characterization:
    /// `a` is prime iff there is a closed set `Y` with `a ∉ Y` and
    /// `(Y ∪ {a})⁺ = R`. Enumerates all `2^(|R|-1)` candidate sets; only
    /// for cross-checking on tiny schemas.
    ///
    /// # Panics
    /// Panics if `|R| > 22`.
    pub fn is_prime_bruteforce(&self, attr: AttrId) -> bool {
        let n = self.attr_count();
        assert!(n <= 22, "brute force is exponential; |R| ≤ 22 required");
        let others: Vec<AttrId> = self.attrs().filter(|&a| a != attr).collect();
        let m = others.len();
        for mask in 0u64..(1u64 << m) {
            let y: AttrSet = (0..m)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| others[i])
                .collect();
            // Y must be closed and a ∉ Y (guaranteed) and (Y ∪ {a})⁺ = R.
            if self.closure(&y).len() != y.len() {
                continue;
            }
            let mut ya = y.clone();
            ya.push(attr);
            if self.is_superkey(&ya) {
                return true;
            }
        }
        false
    }

    /// Renders an attribute set with attribute names: single-character
    /// names are concatenated in the paper's compact style (`abd`),
    /// longer names are comma-separated.
    pub fn render_set(&self, set: &[AttrId]) -> String {
        let names: Vec<&str> = set.iter().map(|&a| self.attr_name(a)).collect();
        if names.iter().all(|n| n.chars().count() == 1) {
            names.concat()
        } else {
            names.join(",")
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schema: {} attributes, {} FDs",
            self.attr_count(),
            self.fd_count()
        )?;
        for fd in &self.fds {
            writeln!(
                f,
                "  {} -> {}",
                self.render_set(&fd.lhs),
                self.attr_name(fd.rhs)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::example_2_1;

    #[test]
    fn closure_of_running_example() {
        let s = example_2_1();
        let a = s.attr("a").unwrap();
        let b = s.attr("b").unwrap();
        let c = s.attr("c").unwrap();
        let d = s.attr("d").unwrap();
        // ab⁺ = abc (f1: ab→c, f2: c→b).
        let cl = s.closure(&[a, b]);
        assert_eq!(s.render_set(&cl), "abc");
        // abd⁺ = R.
        assert!(s.is_superkey(&[a, b, d]));
        assert!(s.is_key(&[a, b, d]));
        assert!(s.is_key(&[a, c, d]));
        assert!(!s.is_key(&[a, b, c, d]));
    }

    #[test]
    fn keys_of_running_example() {
        // Example 2.1: exactly two keys, abd and acd.
        let s = example_2_1();
        let keys = s.keys();
        let rendered: Vec<String> = keys.iter().map(|k| s.render_set(k)).collect();
        assert_eq!(rendered, vec!["abd", "acd"]);
    }

    #[test]
    fn primes_of_running_example() {
        // a, b, c, d prime; e, g not.
        let s = example_2_1();
        let primes = s.prime_attributes_exact();
        assert_eq!(s.render_set(&primes), "abcd");
        for (name, expect) in [("a", true), ("b", true), ("e", false), ("g", false)] {
            let attr = s.attr(name).unwrap();
            assert_eq!(s.is_prime_exact(attr), expect, "{name}");
            assert_eq!(s.is_prime_bruteforce(attr), expect, "{name} (bf)");
        }
    }

    #[test]
    fn closure_is_monotone_and_idempotent() {
        let s = example_2_1();
        let a = s.attr("a").unwrap();
        let c = s.attr("c").unwrap();
        let cl1 = s.closure(&[a]);
        let cl2 = s.closure(&[a, c]);
        assert!(cl1.iter().all(|x| cl2.contains(x)));
        let cl3 = s.closure(&cl2);
        assert_eq!(cl2, cl3);
    }

    #[test]
    fn empty_and_trivial_schemas() {
        let s = Schema::new();
        assert_eq!(s.keys(), vec![Vec::new()]);
        let mut s2 = Schema::new();
        let x = s2.add_attr("x");
        assert_eq!(s2.keys(), vec![vec![x]]);
        assert!(s2.is_prime_exact(x));
    }

    #[test]
    fn minimize_superkey_produces_key() {
        let s = example_2_1();
        let all: Vec<AttrId> = s.attrs().collect();
        let key = s.minimize_superkey(&all);
        assert!(s.is_key(&key));
    }

    #[test]
    #[should_panic(expected = "empty left-hand side")]
    fn empty_lhs_rejected() {
        let mut s = Schema::new();
        let x = s.add_attr("x");
        s.add_fd(&[], x);
    }

    #[test]
    fn fd_str_parser() {
        let mut s = Schema::new();
        for n in ["x", "y", "z"] {
            s.add_attr(n);
        }
        s.add_fd_str("xy -> z");
        assert_eq!(s.fd_count(), 1);
        assert_eq!(s.fds()[0].lhs.len(), 2);
    }
}
