//! The paper's running example (Examples 2.1, 2.2, 2.5; Figures 1 and 2).

use crate::encode::{encode_schema, SchemaEncoding};
use crate::schema::Schema;
use mdtw_decomp::TreeDecomposition;

/// The schema of Example 2.1: `R = abcdeg`,
/// `F = {f1: ab→c, f2: c→b, f3: cd→e, f4: de→g, f5: g→e}`.
///
/// Keys: `abd` and `acd`; prime attributes: `a, b, c, d`.
pub fn example_2_1() -> Schema {
    let mut s = Schema::new();
    for name in ["a", "b", "c", "d", "e", "g"] {
        s.add_attr(name);
    }
    s.add_fd_str("ab -> c");
    s.add_fd_str("c -> b");
    s.add_fd_str("cd -> e");
    s.add_fd_str("de -> g");
    s.add_fd_str("g -> e");
    s
}

/// The encoded τ-structure of Example 2.2 plus a width-2 tree
/// decomposition in the spirit of Figure 1 (the figure itself is an
/// image in the paper; we reconstruct an optimal decomposition with the
/// same bags-over-{attributes, FDs} shape and verify width 2).
pub fn example_2_2() -> (SchemaEncoding, TreeDecomposition) {
    let schema = example_2_1();
    let enc = encode_schema(&schema);
    let a = |n: &str| enc.elem_of_attr(schema.attr(n).unwrap());
    let f = |i: usize| enc.elem_of_fd(i - 1);

    // A hand-built width-2 decomposition covering every lh/rh tuple:
    //   {d,e,f4} ─ {e,g,f4} ─ {e,g,f5}
    //      └ {d,e,f3} ─ {c,d,f3} ─ {b,c,f1} ─ {a,b,f1}
    //                                 └ {b,c,f2}
    let mut td = TreeDecomposition::singleton(vec![a("d"), a("e"), f(4)]);
    let root = td.root();
    let n_eg4 = td.add_child(root, vec![a("e"), a("g"), f(4)]);
    td.add_child(n_eg4, vec![a("e"), a("g"), f(5)]);
    let n_de3 = td.add_child(root, vec![a("d"), a("e"), f(3)]);
    let n_cd3 = td.add_child(n_de3, vec![a("c"), a("d"), f(3)]);
    let n_bc1 = td.add_child(n_cd3, vec![a("b"), a("c"), f(1)]);
    td.add_child(n_bc1, vec![a("a"), a("b"), f(1)]);
    td.add_child(n_bc1, vec![a("b"), a("c"), f(2)]);
    (enc, td)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdtw_decomp::{NiceOptions, NiceTd, TupleTd};

    #[test]
    fn figure_1_decomposition_is_valid_width_2() {
        let (enc, td) = example_2_2();
        assert_eq!(td.validate(&enc.structure), Ok(()));
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn figure_2_normalization() {
        // Example 2.5: the Figure 1 decomposition is not normalized; its
        // normalization (Figure 2) has identical width.
        let (enc, td) = example_2_2();
        let norm = TupleTd::from_td(&td, enc.structure.domain().len()).unwrap();
        assert_eq!(norm.validate_normal_form(), Ok(()));
        assert_eq!(norm.width(), 2);
        assert_eq!(norm.to_set_td().validate(&enc.structure), Ok(()));
    }

    #[test]
    fn figure_4_nice_form() {
        // The §5 modified normal form of the same decomposition.
        let (enc, td) = example_2_2();
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        assert_eq!(nice.validate_nice_form(), Ok(()));
        assert_eq!(nice.width(), 2);
        assert_eq!(nice.to_set_td().validate(&enc.structure), Ok(()));
    }
}
