//! Encoding a relational schema as a τ-structure with
//! τ = {fd, att, lh, rh} (paper §2.2, Example 2.2).

use crate::schema::{AttrId, Schema};
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use std::sync::Arc;

/// The encoded structure plus element maps for both universes.
#[derive(Debug)]
pub struct SchemaEncoding {
    /// The τ-structure 𝒜 with τ = {fd, att, lh, rh}.
    pub structure: Structure,
    /// `attr_elem[a]` is the domain element of attribute `a`.
    pub attr_elem: Vec<ElemId>,
    /// `fd_elem[f]` is the domain element of FD `f`.
    pub fd_elem: Vec<ElemId>,
}

impl SchemaEncoding {
    /// The element of attribute `a`.
    #[inline]
    pub fn elem_of_attr(&self, a: AttrId) -> ElemId {
        self.attr_elem[a.index()]
    }

    /// The element of FD index `f`.
    #[inline]
    pub fn elem_of_fd(&self, f: usize) -> ElemId {
        self.fd_elem[f]
    }

    /// Reverse lookup: the attribute of a domain element, if it is one.
    pub fn attr_of_elem(&self, e: ElemId) -> Option<AttrId> {
        self.attr_elem
            .iter()
            .position(|&x| x == e)
            .map(|i| AttrId(i as u32))
    }

    /// Reverse lookup: the FD index of a domain element, if it is one.
    pub fn fd_of_elem(&self, e: ElemId) -> Option<usize> {
        self.fd_elem.iter().position(|&x| x == e)
    }
}

/// The signature τ = {fd, att, lh, rh}.
pub fn schema_signature() -> Signature {
    Signature::from_pairs([("fd", 1), ("att", 1), ("lh", 2), ("rh", 2)])
}

/// Encodes `(R, F)` as a τ-structure: `fd(f)`, `att(b)`, `lh(b, f)` for
/// `b ∈ lhs(f)`, `rh(b, f)` for `b = rhs(f)` (Example 2.2).
pub fn encode_schema(schema: &Schema) -> SchemaEncoding {
    let sig = Arc::new(schema_signature());
    let mut dom = Domain::new();
    let attr_elem: Vec<ElemId> = schema
        .attrs()
        .map(|a| dom.insert(schema.attr_name(a).to_owned()))
        .collect();
    let fd_elem: Vec<ElemId> = (0..schema.fd_count())
        .map(|i| dom.insert(format!("f{}", i + 1)))
        .collect();
    let mut s = Structure::new(sig, dom);
    let fd_p = s.signature().lookup("fd").unwrap();
    let att_p = s.signature().lookup("att").unwrap();
    let lh_p = s.signature().lookup("lh").unwrap();
    let rh_p = s.signature().lookup("rh").unwrap();
    for (i, &e) in attr_elem.iter().enumerate() {
        let _ = i;
        s.insert(att_p, &[e]);
    }
    for (i, fd) in schema.fds().iter().enumerate() {
        s.insert(fd_p, &[fd_elem[i]]);
        for &b in &fd.lhs {
            s.insert(lh_p, &[attr_elem[b.index()], fd_elem[i]]);
        }
        s.insert(rh_p, &[attr_elem[fd.rhs.index()], fd_elem[i]]);
    }
    SchemaEncoding {
        structure: s,
        attr_elem,
        fd_elem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::example_2_1;
    use mdtw_decomp::{decompose, exact_treewidth, Heuristic, PrimalGraph};

    #[test]
    fn example_2_2_encoding() {
        let schema = example_2_1();
        let enc = encode_schema(&schema);
        let s = &enc.structure;
        // |A| = 6 attributes + 5 FDs.
        assert_eq!(s.domain().len(), 11);
        let att = s.signature().lookup("att").unwrap();
        let fd = s.signature().lookup("fd").unwrap();
        let lh = s.signature().lookup("lh").unwrap();
        let rh = s.signature().lookup("rh").unwrap();
        assert_eq!(s.relation(att).len(), 6);
        assert_eq!(s.relation(fd).len(), 5);
        // lh tuples from Example 2.2: 8 entries.
        assert_eq!(s.relation(lh).len(), 8);
        assert_eq!(s.relation(rh).len(), 5);
        // Spot checks: lh(a, f1), rh(c, f1).
        let a = enc.elem_of_attr(schema.attr("a").unwrap());
        let c = enc.elem_of_attr(schema.attr("c").unwrap());
        let f1 = enc.elem_of_fd(0);
        assert!(s.holds(lh, &[a, f1]));
        assert!(s.holds(rh, &[c, f1]));
    }

    #[test]
    fn example_2_2_treewidth_is_two() {
        // The paper proves tw(𝒜) = 2 for the running example.
        let schema = example_2_1();
        let enc = encode_schema(&schema);
        let g = PrimalGraph::of(&enc.structure);
        assert_eq!(exact_treewidth(&g), 2);
        // Heuristic decomposition achieves it and validates.
        let td = decompose(&enc.structure, Heuristic::MinFill);
        assert_eq!(td.validate(&enc.structure), Ok(()));
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn reverse_lookups() {
        let schema = example_2_1();
        let enc = encode_schema(&schema);
        let b = schema.attr("b").unwrap();
        let e = enc.elem_of_attr(b);
        assert_eq!(enc.attr_of_elem(e), Some(b));
        assert_eq!(enc.fd_of_elem(e), None);
        let f3 = enc.elem_of_fd(2);
        assert_eq!(enc.fd_of_elem(f3), Some(2));
        assert_eq!(enc.attr_of_elem(f3), None);
    }
}
