//! Schema normal forms: the paper's §2.1 motivation for PRIMALITY.
//!
//! > "An efficient algorithm for testing the primality of an attribute is
//! > crucial in database design since it is an indispensable prerequisite
//! > for testing if a schema is in third normal form."
//!
//! This module provides the design-theory layer on top of primality:
//! BCNF and 3NF checks, parameterized by a primality oracle so both the
//! exact (exponential) and the FPT (Figure 6) primality algorithms plug
//! in — `mdtw-core` exposes the FPT-backed variant.

use crate::schema::{AttrId, Schema};

/// A violation of Boyce–Codd normal form: a non-trivial FD whose
/// left-hand side is not a superkey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BcnfViolation {
    /// Index of the offending FD in [`Schema::fds`].
    pub fd_index: usize,
}

/// A violation of third normal form: a non-trivial FD whose left-hand
/// side is not a superkey *and* whose right-hand side is not prime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThirdNfViolation {
    /// Index of the offending FD.
    pub fd_index: usize,
    /// The non-prime right-hand side attribute.
    pub rhs: AttrId,
}

/// True if the FD at `fd_index` is trivial (`rhs ∈ lhs`).
fn is_trivial(schema: &Schema, fd_index: usize) -> bool {
    let fd = &schema.fds()[fd_index];
    fd.lhs.contains(&fd.rhs)
}

/// All BCNF violations: FDs `X → A` with `A ∉ X` and `X` not a superkey.
pub fn bcnf_violations(schema: &Schema) -> Vec<BcnfViolation> {
    (0..schema.fd_count())
        .filter(|&i| !is_trivial(schema, i) && !schema.is_superkey(&schema.fds()[i].lhs))
        .map(|fd_index| BcnfViolation { fd_index })
        .collect()
}

/// True if the schema is in Boyce–Codd normal form.
pub fn is_bcnf(schema: &Schema) -> bool {
    bcnf_violations(schema).is_empty()
}

/// All 3NF violations, given a primality oracle (`prime(a)` must say
/// whether attribute `a` is part of some key). Plugging in the Figure 6
/// solver gives the FPT 3NF test the paper motivates; plugging in
/// [`Schema::is_prime_exact`] gives the classical exponential one.
pub fn third_nf_violations_with(
    schema: &Schema,
    mut prime: impl FnMut(AttrId) -> bool,
) -> Vec<ThirdNfViolation> {
    let mut out = Vec::new();
    // Memoize oracle calls: several FDs may share an rhs.
    let mut cache: Vec<Option<bool>> = vec![None; schema.attr_count()];
    for i in 0..schema.fd_count() {
        if is_trivial(schema, i) {
            continue;
        }
        let fd = &schema.fds()[i];
        if schema.is_superkey(&fd.lhs) {
            continue;
        }
        let rhs = fd.rhs;
        let is_prime = *cache[rhs.index()].get_or_insert_with(|| prime(rhs));
        if !is_prime {
            out.push(ThirdNfViolation { fd_index: i, rhs });
        }
    }
    out
}

/// 3NF via exact (exponential) primality.
pub fn is_3nf_exact(schema: &Schema) -> bool {
    third_nf_violations_with(schema, |a| schema.is_prime_exact(a)).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::example_2_1;

    #[test]
    fn running_example_is_not_3nf() {
        // f4: de → g has a non-superkey lhs and non-prime rhs g.
        let schema = example_2_1();
        assert!(!is_bcnf(&schema));
        assert!(!is_3nf_exact(&schema));
        let violations = third_nf_violations_with(&schema, |a| schema.is_prime_exact(a));
        assert!(violations
            .iter()
            .any(|v| schema.attr_name(v.rhs) == "g" || schema.attr_name(v.rhs) == "e"));
    }

    #[test]
    fn key_based_schema_is_bcnf() {
        // Every lhs is a superkey: id → name, id → addr.
        let mut s = Schema::new();
        let id = s.add_attr("id");
        let name = s.add_attr("name");
        let addr = s.add_attr("addr");
        s.add_fd(&[id], name);
        s.add_fd(&[id], addr);
        assert!(is_bcnf(&s));
        assert!(is_3nf_exact(&s));
    }

    #[test]
    fn third_nf_but_not_bcnf() {
        // The classic: R = {street, city, zip}, street city → zip,
        // zip → city. Keys: {street, city} and {street, zip}; every
        // attribute is prime, so 3NF holds, but zip → city breaks BCNF.
        let mut s = Schema::new();
        let street = s.add_attr("street");
        let city = s.add_attr("city");
        let zip = s.add_attr("zip");
        s.add_fd(&[street, city], zip);
        s.add_fd(&[zip], city);
        assert!(!is_bcnf(&s));
        assert!(is_3nf_exact(&s));
    }

    #[test]
    fn trivial_fds_never_violate() {
        let mut s = Schema::new();
        let a = s.add_attr("a");
        let b = s.add_attr("b");
        s.add_fd(&[a, b], a); // trivial
        assert!(is_bcnf(&s));
        assert!(is_3nf_exact(&s));
    }

    #[test]
    fn fd_free_schema_is_in_all_normal_forms() {
        let mut s = Schema::new();
        s.add_attr("x");
        s.add_attr("y");
        assert!(is_bcnf(&s));
        assert!(is_3nf_exact(&s));
    }

    #[test]
    fn oracle_is_memoized() {
        let schema = example_2_1();
        let mut calls = 0usize;
        let _ = third_nf_violations_with(&schema, |a| {
            calls += 1;
            schema.is_prime_exact(a)
        });
        // At most one oracle call per distinct rhs attribute.
        assert!(calls <= schema.attr_count());
    }
}
