//! # mdtw-schema
//!
//! Relational schemas `(R, F)` for the *Monadic Datalog over Finite
//! Structures with Bounded Treewidth* reproduction (Gottlob, Pichler &
//! Wei, PODS 2007): attributes, functional dependencies, linear-time
//! closures, key enumeration and primality baselines (§2.1), the
//! τ-structure encoding with τ = {fd, att, lh, rh} (§2.2), the paper's
//! running example (Examples 2.1/2.2) and the decomposition-first workload
//! generator of the Table 1 experiments (§6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod examples;
pub mod generator;
pub mod normal_forms;
#[allow(clippy::module_inception)]
mod schema;

pub use encode::{encode_schema, schema_signature, SchemaEncoding};
pub use examples::{example_2_1, example_2_2};
pub use generator::{
    block_tree_instance, random_schema, seeded_rng, GeneratedInstance, TABLE1_FD_COUNTS,
};
pub use normal_forms::{
    bcnf_violations, is_3nf_exact, is_bcnf, third_nf_violations_with, BcnfViolation,
    ThirdNfViolation,
};
pub use schema::{AttrId, AttrSet, Fd, Schema};
