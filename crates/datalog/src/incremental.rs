//! Incremental view maintenance: a long-lived [`MaterializedView`] that
//! absorbs batched insert/retract deltas by re-derivation instead of
//! re-evaluation.
//!
//! [`Evaluator::materialize`](crate::Evaluator::materialize) evaluates a
//! program to fixpoint once, then hands its compiled state — the
//! stratification, per-stratum semipositive sub-programs, plan cache,
//! and scratch arenas — to a view that serves reads while accepting
//! [`Update`] batches against the base (extensional) relations:
//!
//! * **Insertions** re-derive semi-naively from the delta: each rule
//!   fires once per changed positive extensional body literal with that
//!   literal reading only the batch's inserted tuples (compiled
//!   extensional-delta plans), and the resulting frontier runs the
//!   ordinary delta rounds through the existing per-rule join plans.
//! * **Retractions** use classic *DRed* (delete and re-derive):
//!   an over-deletion pass propagates the retracted tuples through the
//!   rules to a fixpoint of *possibly* invalidated facts (negative
//!   literals ignored — a sound over-approximation), the overdeleted
//!   facts are removed, survivors with an alternative derivation in the
//!   post state are re-derived, and the insertion frontier re-covers
//!   everything derivable through them.
//!
//! Both run **stratum by stratum**, so stratified negation stays sound:
//! the net delta of a lower stratum becomes an extensional delta of the
//! extended structure the strata above were compiled against — an
//! insertion *through* a negated literal turns into an over-deletion
//! seed upstairs, a deletion through negation into a re-derivation seed.
//!
//! Maintenance is governed like evaluation: the session's
//! [`EvalLimits`] (fuel, deadline, cancellation) meter every phase, and
//! a tripped budget triggers the sound fallback — discard the
//! maintenance state and re-evaluate the post-update base from scratch,
//! reported via [`UpdateProfile::fell_back`]. The view is never left in
//! a partially maintained state.

use crate::ast::{IdbId, PredRef, Program, Rule, Term, Var};
use crate::cache::{plans_for, PlanCache};
use crate::eval::{instantiate_into, run_increment, unify, IdbStore, SeminaiveScratch};
use crate::limits::{EvalLimits, Governor, LimitKind};
use crate::plan::{plan_edb_deltas, JoinPlan, RulePlans, StructureStats};
use crate::profile::{UpdateProfile, UpdateStratumProfile};
use crate::stratify::{rewrite_stratum_rules, run_stratified, ExtensionMemo, Stratification};
use mdtw_structure::{ElemId, PredId, Relation, Signature, Structure};
use std::sync::Arc;
use std::time::Instant;

/// A batch of base-relation mutations for [`MaterializedView::apply`].
///
/// The batch is a *set* update with the usual normalized semantics
/// `new = (old \ retracts) ∪ inserts`: inserting a tuple already
/// present is a no-op, retracting an absent tuple is a no-op, and a
/// tuple both retracted and inserted in the same batch ends up present.
/// Tuples must be over the view's base signature and existing domain.
#[derive(Debug, Clone, Default)]
pub struct Update {
    inserts: Vec<(PredId, Box<[ElemId]>)>,
    retracts: Vec<(PredId, Box<[ElemId]>)>,
}

impl Update {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an insertion, builder-style.
    pub fn insert(mut self, pred: PredId, tuple: &[ElemId]) -> Self {
        self.push_insert(pred, tuple);
        self
    }

    /// Adds a retraction, builder-style.
    pub fn retract(mut self, pred: PredId, tuple: &[ElemId]) -> Self {
        self.push_retract(pred, tuple);
        self
    }

    /// Adds an insertion in place (loop-friendly).
    pub fn push_insert(&mut self, pred: PredId, tuple: &[ElemId]) {
        self.inserts.push((pred, tuple.into()));
    }

    /// Adds a retraction in place (loop-friendly).
    pub fn push_retract(&mut self, pred: PredId, tuple: &[ElemId]) {
        self.retracts.push((pred, tuple.into()));
    }

    /// Number of staged mutations (insertions plus retractions).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.retracts.len()
    }

    /// True if the batch stages no mutations.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.retracts.is_empty()
    }
}

/// The compiled session state [`Evaluator::materialize`]
/// (crate::Evaluator::materialize) hands off to the view.
pub(crate) struct SessionParts {
    pub(crate) program: Program,
    pub(crate) stratification: Arc<Stratification>,
    pub(crate) cache: PlanCache,
    pub(crate) cache_enabled: bool,
    pub(crate) scratch: SeminaiveScratch,
    pub(crate) ext_memo: ExtensionMemo,
    pub(crate) limits: Option<EvalLimits>,
}

/// A materialized fixpoint kept consistent under batched base-relation
/// updates; created by [`Evaluator::materialize`](crate::Evaluator::materialize).
///
/// The view owns the post-update *extended* structure (base relations
/// plus the lower-stratum relations higher strata read as extensional),
/// the derived-fact store, and the per-stratum compiled artifacts:
/// semipositive sub-programs, their semi-naive join plans, and the
/// extensional-delta seed plans. Plans are compiled once against the
/// cardinalities at materialization time; later updates reuse them
/// (staleness can cost performance, never correctness).
#[derive(Debug)]
pub struct MaterializedView {
    program: Program,
    strat: Arc<Stratification>,
    cache: PlanCache,
    cache_enabled: bool,
    scratch: SeminaiveScratch,
    limits: Option<EvalLimits>,
    memo: ExtensionMemo,
    base_sig: Arc<Signature>,
    ext_sig: Arc<Signature>,
    ext_pred: Vec<Option<PredId>>,
    subs: Vec<Program>,
    plans: Vec<Arc<Vec<RulePlans>>>,
    edb_plans: Vec<Vec<Vec<(usize, JoinPlan)>>>,
    /// The extended structure in *post* state: base relations plus the
    /// materialized lower-stratum relations of `ext_pred`.
    ext: Structure,
    store: IdbStore,
    updates_applied: u64,
}

impl MaterializedView {
    pub(crate) fn from_session(
        parts: SessionParts,
        structure: &Structure,
        store: IdbStore,
    ) -> Self {
        let SessionParts {
            program,
            stratification: strat,
            cache,
            cache_enabled,
            scratch,
            mut ext_memo,
            limits,
        } = parts;
        let base_sig = Arc::clone(structure.signature());
        let (ext_sig, ext_pred) = {
            let (sig, preds) = ext_memo.setup(&program, &strat, structure);
            (sig, preds.to_vec())
        };
        let mut ext = structure.extended_shared(&ext_sig);
        for (i, slot) in ext_pred.iter().enumerate() {
            if let Some(p) = *slot {
                for tuple in store.relation(IdbId(i as u32)).iter() {
                    ext.insert(p, tuple);
                }
            }
        }
        let cache_opt = cache_enabled.then_some(&cache);
        let mut subs = Vec::with_capacity(strat.stratum_count());
        let mut plans = Vec::with_capacity(strat.stratum_count());
        let mut edb_plans = Vec::with_capacity(strat.stratum_count());
        for (k, stratum_rules) in strat.strata().iter().enumerate() {
            let sub = Program {
                rules: rewrite_stratum_rules(&program, &strat, stratum_rules, k, &ext_pred),
                idb_names: program.idb_names.clone(),
                idb_arities: program.idb_arities.clone(),
                spans: Vec::new(),
                idb_by_name: program.idb_by_name.clone(),
            };
            let (p, _) = plans_for(&sub, &ext, cache_opt);
            edb_plans.push(plan_edb_deltas(&sub, &StructureStats::new(&ext)));
            plans.push(p);
            subs.push(sub);
        }
        Self {
            program,
            strat,
            cache,
            cache_enabled,
            scratch,
            limits,
            memo: ext_memo,
            base_sig,
            ext_sig,
            ext_pred,
            subs,
            plans,
            edb_plans,
            ext,
            store,
            updates_applied: 0,
        }
    }

    /// Applies one batched update and maintains the fixpoint, returning
    /// the per-update [`UpdateProfile`] (overdeletion / re-derivation /
    /// net-change counters and per-stratum timings).
    ///
    /// Maintenance runs under a fresh meter of the session's
    /// [`EvalLimits`] (the budget is per update, the cancel token is
    /// shared). If any phase trips, the partially maintained state is
    /// discarded and the post-update base is re-evaluated from scratch
    /// without a budget — slower, but sound; [`UpdateProfile::fell_back`]
    /// names the tripped limit.
    ///
    /// # Panics
    ///
    /// If a tuple targets a predicate outside the base signature, has
    /// the wrong arity, or mentions an element outside the domain.
    pub fn apply(&mut self, update: &Update) -> UpdateProfile {
        let t0 = Instant::now();
        let mut profile = UpdateProfile::default();
        self.updates_applied += 1;
        let nbase = self.base_sig.len();
        let next = self.ext_sig.len();

        // Normalize the batch: `new = (old \ R) ∪ I`. `req_ins` is the
        // *raw* insert set — it suppresses retractions of tuples the
        // same batch re-inserts. The effective deltas live at extended
        // predicate ids so lower-stratum net changes can join them.
        let mut req_ins: Vec<Relation> = (0..nbase)
            .map(|p| Relation::new(self.base_sig.arity(PredId(p as u32))))
            .collect();
        let mut ins: Vec<Relation> = (0..next)
            .map(|p| Relation::new(self.ext_sig.arity(PredId(p as u32))))
            .collect();
        let mut del: Vec<Relation> = (0..next)
            .map(|p| Relation::new(self.ext_sig.arity(PredId(p as u32))))
            .collect();
        for (pred, tuple) in &update.inserts {
            self.check_target(*pred, tuple);
            req_ins[pred.index()].insert(tuple);
        }
        for (pred, tuple) in &update.retracts {
            self.check_target(*pred, tuple);
            if self.ext.holds(*pred, tuple) && !req_ins[pred.index()].contains(tuple) {
                del[pred.index()].insert(tuple);
            }
        }
        for (i, staged) in req_ins.iter().enumerate() {
            let p = PredId(i as u32);
            for tuple in staged.iter() {
                if !self.ext.holds(p, tuple) {
                    ins[i].insert(tuple);
                }
            }
        }
        profile.base_inserted = ins[..nbase].iter().map(Relation::len).sum();
        profile.base_retracted = del[..nbase].iter().map(Relation::len).sum();
        if profile.base_inserted == 0 && profile.base_retracted == 0 {
            profile.total_nanos = t0.elapsed().as_nanos() as u64;
            return profile;
        }

        // Apply the base delta physically: the view is now in POST base
        // state, which is what every exact maintenance join reads.
        for (i, (dels, inss)) in del.iter().zip(ins.iter()).enumerate().take(nbase) {
            let p = PredId(i as u32);
            for tuple in dels.iter() {
                self.ext.retract(p, tuple);
            }
            for tuple in inss.iter() {
                self.ext.insert(p, tuple);
            }
        }

        let limits = self.limits.as_ref().map(EvalLimits::fresh);
        if let Some(kind) = self.maintain(&mut ins, &mut del, limits.as_ref(), &mut profile) {
            self.fall_back(kind, &mut profile);
        }
        profile.total_nanos = t0.elapsed().as_nanos() as u64;
        profile
    }

    /// Validates one staged mutation against the base signature.
    fn check_target(&self, pred: PredId, tuple: &[ElemId]) {
        assert!(
            pred.index() < self.base_sig.len(),
            "update targets predicate {} outside the base signature",
            pred.index()
        );
        assert_eq!(
            tuple.len(),
            self.base_sig.arity(pred),
            "update tuple arity mismatch for `{}`",
            self.base_sig.name(pred)
        );
    }

    /// The stratum-by-stratum DRed pipeline over the already-applied
    /// base delta. Returns `Some(kind)` if a budget tripped (the caller
    /// falls back), `None` on completed maintenance.
    fn maintain(
        &mut self,
        ins: &mut [Relation],
        del: &mut [Relation],
        limits: Option<&EvalLimits>,
        profile: &mut UpdateProfile,
    ) -> Option<LimitKind> {
        let idb_count = self.program.idb_count();
        // One governor with a single monotone work counter spans every
        // custom phase of the whole update; `run_increment` gets a fresh
        // governor per stratum because its internal counters restart.
        let mut gov = Governor::new(limits);
        let mut work = 0usize;
        let mut bindings: Vec<Option<ElemId>> = Vec::new();
        let mut key: Vec<ElemId> = Vec::new();
        let mut head_buf: Vec<ElemId> = Vec::new();

        for k in 0..self.subs.len() {
            let st0 = Instant::now();
            let sub = &self.subs[k];
            let mut over: Vec<Relation> = self
                .program
                .idb_arities
                .iter()
                .map(|&a| Relation::new(a))
                .collect();
            let mut queue: Vec<(IdbId, Box<[ElemId]>)> = Vec::new();

            // Phase 1 — overdelete. Seed every rule from the batch's
            // deletions at positive extensional literals and insertions
            // at negated ones (an insert *through* negation deletes),
            // then propagate through in-stratum intensional literals to
            // a fixpoint. Joins read post ∪ del on extensional atoms (a
            // superset of the pre state) and the untouched pre store on
            // intensional ones; negative literals are ignored. All three
            // choices over-approximate, which is exactly what DRed needs.
            for rule in &sub.rules {
                for (li, lit) in rule.body.iter().enumerate() {
                    let PredRef::Edb(p) = lit.atom.pred else {
                        continue;
                    };
                    let seed_rel = if lit.positive {
                        &del[p.index()]
                    } else {
                        &ins[p.index()]
                    };
                    if seed_rel.is_empty() {
                        continue;
                    }
                    for tuple in seed_rel.iter() {
                        overdelete_from(
                            rule,
                            li,
                            tuple,
                            &self.ext,
                            &self.store,
                            del,
                            &mut over,
                            &mut queue,
                            &mut bindings,
                            &mut key,
                            &mut head_buf,
                            &mut gov,
                            &mut work,
                        );
                    }
                    if let Some(kind) = gov.tripped() {
                        return Some(kind);
                    }
                }
            }
            let mut qi = 0;
            while qi < queue.len() {
                let (fid, fact) = (queue[qi].0, queue[qi].1.clone());
                qi += 1;
                for rule in &sub.rules {
                    for (li, lit) in rule.body.iter().enumerate() {
                        if !lit.positive || lit.atom.pred != PredRef::Idb(fid) {
                            continue;
                        }
                        overdelete_from(
                            rule,
                            li,
                            &fact,
                            &self.ext,
                            &self.store,
                            del,
                            &mut over,
                            &mut queue,
                            &mut bindings,
                            &mut key,
                            &mut head_buf,
                            &mut gov,
                            &mut work,
                        );
                    }
                }
                if let Some(kind) = gov.tripped() {
                    return Some(kind);
                }
            }

            // Phase 2 — physically remove the overdeleted facts.
            for (i, o) in over.iter().enumerate() {
                let id = IdbId(i as u32);
                for fact in o.iter() {
                    let removed = self.store.retract_raw(id, fact);
                    debug_assert!(removed, "overdeletion only removes stored facts");
                }
            }

            // Phase 3 — re-derive survivors: an overdeleted fact with an
            // alternative derivation in the post state (extensional atoms
            // read post only, intensional ones the post-removal store,
            // negatives checked against post) is seeded back. Facts
            // derivable only *through* another survivor are re-covered
            // by the seed frontier's delta rounds in phase 5.
            let mut seeds: Vec<(IdbId, Box<[ElemId]>)> = Vec::new();
            for (i, o) in over.iter().enumerate() {
                if o.is_empty() {
                    continue;
                }
                let id = IdbId(i as u32);
                for fact in o.iter() {
                    let survives = sub.rules.iter().any(|rule| {
                        matches!(rule.head.pred, PredRef::Idb(h) if h == id)
                            && rederivable(
                                rule,
                                fact,
                                &self.ext,
                                &self.store,
                                &mut bindings,
                                &mut key,
                                &mut gov,
                                &mut work,
                            )
                    });
                    if survives {
                        seeds.push((id, fact.into()));
                    }
                }
                if let Some(kind) = gov.tripped() {
                    return Some(kind);
                }
            }

            // Phase 4 — deletions *through* negation insert: a rule with
            // a negated extensional literal matching a deleted tuple may
            // fire now. Exact joins against the post state.
            for rule in &sub.rules {
                for (li, lit) in rule.body.iter().enumerate() {
                    if lit.positive {
                        continue;
                    }
                    let PredRef::Edb(p) = lit.atom.pred else {
                        unreachable!("stratum sub-programs are semipositive")
                    };
                    if del[p.index()].is_empty() {
                        continue;
                    }
                    for tuple in del[p.index()].iter() {
                        negation_seeds_from(
                            rule,
                            li,
                            tuple,
                            &self.ext,
                            &self.store,
                            &mut seeds,
                            &mut bindings,
                            &mut key,
                            &mut head_buf,
                            &mut gov,
                            &mut work,
                        );
                    }
                    if let Some(kind) = gov.tripped() {
                        return Some(kind);
                    }
                }
            }

            // Phase 5 — the insertion frontier: rules fire once per
            // changed extensional literal reading the inserted tuples,
            // the seeds join in, and ordinary semi-naive delta rounds
            // run to fixpoint. `added` ledgers every fact that entered
            // the store so the net change can be diffed against `over`.
            let mut added: Vec<Relation> = self
                .program
                .idb_arities
                .iter()
                .map(|&a| Relation::new(a))
                .collect();
            let mut gov_k = Governor::new(limits);
            run_increment(
                sub,
                &self.ext,
                &self.plans[k],
                &self.edb_plans[k],
                ins,
                &seeds,
                &mut self.store,
                &mut self.scratch,
                &mut gov_k,
                &mut added,
            );
            if let Some(kind) = gov_k.tripped() {
                return Some(kind);
            }

            // Phase 6 — net the stratum out: a fact overdeleted and not
            // re-added is a net deletion, a fact added and not
            // overdeleted a net insertion. Both are pushed into the
            // extended structure and recorded as *extensional* deltas at
            // the extension predicate ids, which is all the strata above
            // ever see of this one.
            let mut sp = UpdateStratumProfile {
                stratum: k,
                ..Default::default()
            };
            debug_assert_eq!(over.len(), idb_count);
            for (i, (o, a)) in over.iter().zip(added.iter()).enumerate() {
                let id = IdbId(i as u32);
                sp.overdeleted += o.len();
                for fact in o.iter() {
                    if self.store.holds(id, fact) {
                        sp.rederived += 1;
                    } else {
                        sp.deleted += 1;
                        if let Some(p) = self.ext_pred[i] {
                            self.ext.retract(p, fact);
                            del[p.index()].insert(fact);
                        }
                    }
                }
                for fact in a.iter() {
                    if !o.contains(fact) {
                        sp.inserted += 1;
                        if let Some(p) = self.ext_pred[i] {
                            self.ext.insert(p, fact);
                            ins[p.index()].insert(fact);
                        }
                    }
                }
            }
            sp.nanos = st0.elapsed().as_nanos() as u64;
            profile.overdeleted += sp.overdeleted;
            profile.rederived += sp.rederived;
            profile.inserted += sp.inserted;
            profile.deleted += sp.deleted;
            profile.strata.push(sp);
        }
        None
    }

    /// The sound escape hatch: throw the maintenance state away and
    /// re-evaluate the post-update base from scratch, ungoverned.
    fn fall_back(&mut self, kind: LimitKind, profile: &mut UpdateProfile) {
        let base_post = self.ext.restricted(&self.base_sig);
        let cache_opt = self.cache_enabled.then_some(&self.cache);
        let (store, _stats, trip) = run_stratified(
            &self.program,
            &self.strat,
            &base_post,
            cache_opt,
            &mut self.scratch,
            &mut self.memo,
            None,
            None,
        );
        debug_assert!(trip.is_none(), "ungoverned evaluation cannot trip");
        self.store = store;
        self.ext = base_post.extended_shared(&self.ext_sig);
        for (i, slot) in self.ext_pred.iter().enumerate() {
            if let Some(p) = *slot {
                for tuple in self.store.relation(IdbId(i as u32)).iter() {
                    self.ext.insert(p, tuple);
                }
            }
        }
        profile.fell_back = Some(kind);
    }

    /// The maintained fixpoint (the serving read path).
    pub fn store(&self) -> &IdbStore {
        &self.store
    }

    /// True if the named intensional predicate holds `args` in the
    /// maintained fixpoint.
    pub fn holds(&self, name: &str, args: &[ElemId]) -> bool {
        self.store.holds_named(name, args)
    }

    /// The program the view maintains.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The program's stratification.
    pub fn stratification(&self) -> &Stratification {
        &self.strat
    }

    /// The base signature updates are validated against.
    pub fn base_signature(&self) -> &Arc<Signature> {
        &self.base_sig
    }

    /// A snapshot of the current (post-update) base structure. Cheap:
    /// relations are copy-on-write behind [`Arc`]s.
    pub fn base_structure(&self) -> Structure {
        self.ext.restricted(&self.base_sig)
    }

    /// Number of [`apply`](Self::apply) calls so far (no-ops included).
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }
}

/// Resolves the primary relation (and the deleted-tuple overlay, in
/// overdelete mode) a body literal reads during a maintenance join.
fn dred_sources<'a>(
    rule: &Rule,
    li: usize,
    structure: &'a Structure,
    store: &'a IdbStore,
    del: Option<&'a [Relation]>,
) -> (&'a Relation, Option<&'a Relation>) {
    match rule.body[li].atom.pred {
        PredRef::Edb(p) => {
            let over = del.map(|d| &d[p.index()]).filter(|r| !r.is_empty());
            (structure.relation(p), over)
        }
        PredRef::Idb(id) => (store.relation(id), None),
    }
}

/// The runtime-greedy join behind the custom DRed phases: among the
/// remaining positive body literals, repeatedly picks the one with the
/// most positions bound at runtime (ties to the smaller relation),
/// probing the cached secondary indexes — a dynamic analogue of the
/// compiled plans, which cannot anticipate which literal a maintenance
/// pass binds first.
///
/// `seed` is the already-unified body literal; `del` switches positive
/// extensional reads to post ∪ deleted (overdelete mode);
/// `check_negatives` instantiates and tests negated literals against
/// `structure` at each leaf (exact mode) or skips them entirely
/// (overdelete mode). `emit` sees the complete bindings and returns
/// `true` to stop the enumeration (first-witness checks). The return
/// value is `true` if the enumeration stopped early — via `emit` or a
/// governor trip, which the caller distinguishes with
/// [`Governor::tripped`].
#[allow(clippy::too_many_arguments)]
fn dred_join(
    rule: &Rule,
    seed: Option<usize>,
    bindings: &mut Vec<Option<ElemId>>,
    structure: &Structure,
    store: &IdbStore,
    del: Option<&[Relation]>,
    check_negatives: bool,
    gov: &mut Governor<'_>,
    work: &mut usize,
    key: &mut Vec<ElemId>,
    emit: &mut dyn FnMut(&[Option<ElemId>]) -> bool,
) -> bool {
    let mut remaining: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(i, l)| Some(*i) != seed && l.positive)
        .map(|(i, _)| i)
        .collect();
    dred_descend(
        rule,
        &mut remaining,
        bindings,
        structure,
        store,
        del,
        check_negatives,
        gov,
        work,
        key,
        emit,
    )
}

/// One level of [`dred_join`]'s recursion: choose a literal, enumerate
/// its matches (primary relation, then overlay), recurse.
#[allow(clippy::too_many_arguments)]
fn dred_descend(
    rule: &Rule,
    remaining: &mut Vec<usize>,
    bindings: &mut Vec<Option<ElemId>>,
    structure: &Structure,
    store: &IdbStore,
    del: Option<&[Relation]>,
    check_negatives: bool,
    gov: &mut Governor<'_>,
    work: &mut usize,
    key: &mut Vec<ElemId>,
    emit: &mut dyn FnMut(&[Option<ElemId>]) -> bool,
) -> bool {
    if remaining.is_empty() {
        if check_negatives {
            for lit in rule.body.iter().filter(|l| !l.positive) {
                let PredRef::Edb(p) = lit.atom.pred else {
                    unreachable!("stratum sub-programs are semipositive")
                };
                instantiate_into(&lit.atom, bindings, key);
                if structure.holds(p, key) {
                    return false;
                }
            }
        }
        return emit(bindings);
    }

    let is_bound = |t: &Term, bindings: &[Option<ElemId>]| match t {
        Term::Const(_) => true,
        Term::Var(v) => bindings[v.index()].is_some(),
    };
    let (slot, li) = {
        let best = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &li)| {
                let atom = &rule.body[li].atom;
                let bound = atom.terms.iter().filter(|t| is_bound(t, bindings)).count();
                let (prim, over) = dred_sources(rule, li, structure, store, del);
                let size = prim.len() + over.map_or(0, Relation::len);
                (std::cmp::Reverse(bound), size)
            })
            .expect("remaining is non-empty");
        (best.0, *best.1)
    };
    remaining.swap_remove(slot);

    let lit = &rule.body[li];
    let arity = lit.atom.terms.len();
    let bound_pos: Vec<usize> = (0..arity)
        .filter(|&p| is_bound(&lit.atom.terms[p], bindings))
        .collect();
    let (prim, over) = dred_sources(rule, li, structure, store, del);
    let mut stop = false;
    let mut touched: Vec<Var> = Vec::new();
    'sources: for rel in [Some(prim), over].into_iter().flatten() {
        if bound_pos.len() == arity {
            // Fully bound: a membership check, no enumeration.
            key.clear();
            for &p in &bound_pos {
                key.push(match lit.atom.terms[p] {
                    Term::Const(c) => c,
                    Term::Var(v) => bindings[v.index()].expect("position is bound"),
                });
            }
            *work += 1;
            if gov.work(*work, 0) {
                stop = true;
                break 'sources;
            }
            if rel.contains(key)
                && dred_descend(
                    rule,
                    remaining,
                    bindings,
                    structure,
                    store,
                    del,
                    check_negatives,
                    gov,
                    work,
                    key,
                    emit,
                )
            {
                stop = true;
                break 'sources;
            }
            continue;
        }
        let rows: Box<dyn Iterator<Item = u32>> = if bound_pos.is_empty() {
            Box::new(0..rel.len() as u32)
        } else {
            key.clear();
            for &p in &bound_pos {
                key.push(match lit.atom.terms[p] {
                    Term::Const(c) => c,
                    Term::Var(v) => bindings[v.index()].expect("position is bound"),
                });
            }
            let idx = rel.index_on(&bound_pos);
            Box::new(rel.rows_matching(&idx, key).to_vec().into_iter())
        };
        for row in rows {
            let tuple = rel.tuple(row);
            *work += 1;
            if gov.work(*work, 0) {
                stop = true;
                break 'sources;
            }
            touched.clear();
            let descend = unify(&lit.atom, tuple, bindings, &mut touched)
                && dred_descend(
                    rule,
                    remaining,
                    bindings,
                    structure,
                    store,
                    del,
                    check_negatives,
                    gov,
                    work,
                    key,
                    emit,
                );
            for &v in &touched {
                bindings[v.index()] = None;
            }
            if descend {
                stop = true;
                break 'sources;
            }
        }
    }
    remaining.push(li);
    stop
}

/// Runs one overdeletion seed: unifies body literal `li` of `rule` with
/// `tuple`, joins the rest over-approximately, and stages every head
/// fact currently in the store into `over` and the propagation `queue`.
#[allow(clippy::too_many_arguments)]
fn overdelete_from(
    rule: &Rule,
    li: usize,
    tuple: &[ElemId],
    ext: &Structure,
    store: &IdbStore,
    del: &[Relation],
    over: &mut [Relation],
    queue: &mut Vec<(IdbId, Box<[ElemId]>)>,
    bindings: &mut Vec<Option<ElemId>>,
    key: &mut Vec<ElemId>,
    head_buf: &mut Vec<ElemId>,
    gov: &mut Governor<'_>,
    work: &mut usize,
) {
    bindings.clear();
    bindings.resize(rule.var_count as usize, None);
    let mut touched: Vec<Var> = Vec::new();
    if !unify(&rule.body[li].atom, tuple, bindings, &mut touched) {
        return;
    }
    let PredRef::Idb(hid) = rule.head.pred else {
        unreachable!("rule heads are intensional")
    };
    dred_join(
        rule,
        Some(li),
        bindings,
        ext,
        store,
        Some(del),
        false,
        gov,
        work,
        key,
        &mut |b| {
            instantiate_into(&rule.head, b, head_buf);
            if store.holds(hid, head_buf) && over[hid.index()].insert(head_buf) {
                queue.push((hid, head_buf.as_slice().into()));
            }
            false
        },
    );
}

/// True if `rule` re-derives `fact` in the post state (first witness
/// wins): extensional atoms read post only, intensional atoms the
/// post-removal store, negatives checked against post.
#[allow(clippy::too_many_arguments)]
fn rederivable(
    rule: &Rule,
    fact: &[ElemId],
    ext: &Structure,
    store: &IdbStore,
    bindings: &mut Vec<Option<ElemId>>,
    key: &mut Vec<ElemId>,
    gov: &mut Governor<'_>,
    work: &mut usize,
) -> bool {
    bindings.clear();
    bindings.resize(rule.var_count as usize, None);
    let mut touched: Vec<Var> = Vec::new();
    if !unify(&rule.head, fact, bindings, &mut touched) {
        return false;
    }
    let mut found = false;
    dred_join(
        rule,
        None,
        bindings,
        ext,
        store,
        None,
        true,
        gov,
        work,
        key,
        &mut |_| {
            found = true;
            true
        },
    );
    found && gov.tripped().is_none()
}

/// Fires `rule` for one tuple deleted under its negated literal `li`
/// (a deletion *through* negation is an insertion), staging head facts
/// not yet in the store as seeds.
#[allow(clippy::too_many_arguments)]
fn negation_seeds_from(
    rule: &Rule,
    li: usize,
    tuple: &[ElemId],
    ext: &Structure,
    store: &IdbStore,
    seeds: &mut Vec<(IdbId, Box<[ElemId]>)>,
    bindings: &mut Vec<Option<ElemId>>,
    key: &mut Vec<ElemId>,
    head_buf: &mut Vec<ElemId>,
    gov: &mut Governor<'_>,
    work: &mut usize,
) {
    bindings.clear();
    bindings.resize(rule.var_count as usize, None);
    let mut touched: Vec<Var> = Vec::new();
    if !unify(&rule.body[li].atom, tuple, bindings, &mut touched) {
        return;
    }
    let PredRef::Idb(hid) = rule.head.pred else {
        unreachable!("rule heads are intensional")
    };
    dred_join(
        rule,
        Some(li),
        bindings,
        ext,
        store,
        None,
        true,
        gov,
        work,
        key,
        &mut |b| {
            instantiate_into(&rule.head, b, head_buf);
            if !store.holds(hid, head_buf) {
                seeds.push((hid, head_buf.as_slice().into()));
            }
            false
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{Engine, EvalError, EvalOptions, EvalResult, Evaluator};
    use crate::parser::parse_program;
    use mdtw_structure::Domain;

    fn chain(n: usize) -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1), ("first", 1)]));
        let dom = Domain::anonymous(n);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        let node = s.signature().lookup("node").unwrap();
        let first = s.signature().lookup("first").unwrap();
        for i in 0..n {
            s.insert(node, &[ElemId(i as u32)]);
        }
        for i in 0..n - 1 {
            s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
        }
        s.insert(first, &[ElemId(0)]);
        s
    }

    const TC: &str = "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).";
    const UNREACH: &str = "reach(X) :- first(X).\n\
                           reach(Y) :- reach(X), e(X, Y).\n\
                           unreach(X) :- node(X), !reach(X).";

    /// Pins the view bit-identical to a from-scratch evaluation of its
    /// own post-update base structure.
    fn assert_matches_scratch(view: &MaterializedView, ctx: &str) {
        let base = view.base_structure();
        let program = view.program().clone();
        let mut fresh = Evaluator::new(program).unwrap();
        let EvalResult { store, .. } = fresh.evaluate(&base).unwrap();
        for i in 0..view.program().idb_count() {
            let id = IdbId(i as u32);
            assert_eq!(
                view.store().tuples(id),
                store.tuples(id),
                "{ctx}: predicate `{}` diverged from scratch evaluation",
                view.program().idb_names[i]
            );
        }
    }

    #[test]
    fn inserts_rederive_semipositive() {
        let mut s = chain(6);
        let e = s.signature().lookup("e").unwrap();
        // Leave a gap so the insert below connects two components.
        s.retract(e, &[ElemId(2), ElemId(3)]);
        let p = parse_program(TC, &s).unwrap();
        let mut view = Evaluator::new(p).unwrap().materialize(&s).unwrap();
        let prof = view.apply(&Update::new().insert(e, &[ElemId(2), ElemId(3)]));
        assert_eq!(prof.base_inserted, 1);
        assert_eq!(prof.base_retracted, 0);
        assert!(prof.inserted > 1, "bridging edge derives transitive paths");
        assert_matches_scratch(&view, "bridge insert");
    }

    #[test]
    fn retracts_overdelete_and_rederive() {
        let mut s = chain(8);
        let e = s.signature().lookup("e").unwrap();
        // A shortcut edge gives some overdeleted paths a second
        // derivation, exercising the survivor re-derivation path.
        s.insert(e, &[ElemId(1), ElemId(3)]);
        let p = parse_program(TC, &s).unwrap();
        let mut view = Evaluator::new(p).unwrap().materialize(&s).unwrap();
        let prof = view.apply(&Update::new().retract(e, &[ElemId(2), ElemId(3)]));
        assert_eq!(prof.base_retracted, 1);
        assert!(prof.overdeleted > 0);
        assert!(prof.rederived > 0, "shortcut keeps some paths alive");
        assert!(prof.deleted > 0, "paths into 2 die");
        assert_matches_scratch(&view, "retract with shortcut");
    }

    #[test]
    fn multi_stratum_deltas_cross_negation() {
        let s = chain(6);
        let e = s.signature().lookup("e").unwrap();
        let p = parse_program(UNREACH, &s).unwrap();
        let mut view = Evaluator::new(p).unwrap().materialize(&s).unwrap();
        assert!(view.stratification().stratum_count() > 1);
        // Cutting the chain makes 3..6 unreachable: a deletion below the
        // negation inserts `unreach` facts above it.
        let prof = view.apply(&Update::new().retract(e, &[ElemId(2), ElemId(3)]));
        assert!(view.holds("unreach", &[ElemId(4)]));
        assert!(prof.strata.len() > 1);
        assert_matches_scratch(&view, "cut below negation");
        // Re-inserting the edge deletes them again: an insertion below
        // the negation overdeletes above it.
        view.apply(&Update::new().insert(e, &[ElemId(2), ElemId(3)]));
        assert!(!view.holds("unreach", &[ElemId(4)]));
        assert_matches_scratch(&view, "heal below negation");
    }

    #[test]
    fn empty_and_noop_updates() {
        let s = chain(5);
        let e = s.signature().lookup("e").unwrap();
        let p = parse_program(TC, &s).unwrap();
        let mut view = Evaluator::new(p).unwrap().materialize(&s).unwrap();
        let before = view.store().fact_count();
        let prof = view.apply(&Update::new());
        assert_eq!(
            prof,
            UpdateProfile {
                total_nanos: prof.total_nanos,
                ..UpdateProfile::default()
            }
        );
        // Inserting a present tuple and retracting an absent one
        // normalize to the empty delta.
        let prof = view.apply(
            &Update::new()
                .insert(e, &[ElemId(0), ElemId(1)])
                .retract(e, &[ElemId(3), ElemId(0)]),
        );
        assert_eq!((prof.base_inserted, prof.base_retracted), (0, 0));
        assert!(prof.strata.is_empty());
        assert_eq!(view.store().fact_count(), before);
        assert_eq!(view.updates_applied(), 2);
        assert_matches_scratch(&view, "no-op batch");
    }

    #[test]
    fn retract_everything_empties_the_view() {
        let s = chain(5);
        let e = s.signature().lookup("e").unwrap();
        let p = parse_program(TC, &s).unwrap();
        let mut view = Evaluator::new(p).unwrap().materialize(&s).unwrap();
        let mut update = Update::new();
        for i in 0..4u32 {
            update.push_retract(e, &[ElemId(i), ElemId(i + 1)]);
        }
        let prof = view.apply(&update);
        assert_eq!(prof.base_retracted, 4);
        assert_eq!(view.store().fact_count(), 0);
        assert_eq!(prof.rederived, 0);
        assert_matches_scratch(&view, "retract everything");
    }

    #[test]
    fn same_batch_reinsert_is_normalized() {
        let s = chain(6);
        let e = s.signature().lookup("e").unwrap();
        let p = parse_program(TC, &s).unwrap();
        let mut view = Evaluator::new(p).unwrap().materialize(&s).unwrap();
        // Retract + re-insert of the same present tuple must cancel.
        let prof = view.apply(
            &Update::new()
                .retract(e, &[ElemId(1), ElemId(2)])
                .insert(e, &[ElemId(1), ElemId(2)]),
        );
        assert_eq!((prof.base_inserted, prof.base_retracted), (0, 0));
        assert_matches_scratch(&view, "cancelled retraction");
    }

    #[test]
    fn tripped_budget_falls_back_soundly() {
        let s = chain(30);
        let e = s.signature().lookup("e").unwrap();
        let p = parse_program(TC, &s).unwrap();
        // The cancel token is shared across the per-update fresh meters,
        // so cancelling after materialization makes every subsequent
        // apply trip at its first checkpoint — deterministically.
        let token = crate::limits::CancelToken::new();
        let limits = EvalLimits::new().cancel_token(token.clone());
        let mut view = Evaluator::with_options(p, EvalOptions::new().limits(limits))
            .unwrap()
            .materialize(&s)
            .unwrap();
        token.cancel();
        let prof = view.apply(&Update::new().retract(e, &[ElemId(10), ElemId(11)]));
        assert_eq!(prof.fell_back, Some(LimitKind::Cancelled));
        assert_matches_scratch(&view, "post-fallback");
        // The fallback (ungoverned by design) leaves the view fully
        // serviceable: the next update maintains correctly again.
        let prof = view.apply(&Update::new().insert(e, &[ElemId(10), ElemId(11)]));
        assert_eq!(prof.fell_back, Some(LimitKind::Cancelled));
        assert_matches_scratch(&view, "second post-fallback");
    }

    #[test]
    fn non_indexed_engines_are_rejected() {
        let s = chain(4);
        let p = parse_program(TC, &s).unwrap();
        let err = Evaluator::with_options(p, EvalOptions::new().engine(Engine::Naive))
            .unwrap()
            .materialize(&s)
            .unwrap_err();
        assert_eq!(
            err,
            EvalError::UnsupportedIncremental {
                engine: Engine::Naive
            }
        );
    }

    #[test]
    fn update_profile_counts_and_json() {
        let mut s = chain(6);
        let e = s.signature().lookup("e").unwrap();
        s.retract(e, &[ElemId(3), ElemId(4)]);
        let p = parse_program(TC, &s).unwrap();
        let mut view = Evaluator::new(p).unwrap().materialize(&s).unwrap();
        let prof = view.apply(
            &Update::new()
                .insert(e, &[ElemId(3), ElemId(4)])
                .retract(e, &[ElemId(0), ElemId(1)]),
        );
        assert_eq!((prof.base_inserted, prof.base_retracted), (1, 1));
        assert_eq!(prof.strata.len(), 1);
        let json = prof.to_json().render();
        assert!(json.contains("\"base_inserted\":1"), "{json}");
        assert!(json.contains("\"fell_back\":null"), "{json}");
        assert_matches_scratch(&view, "mixed batch");
    }
}
