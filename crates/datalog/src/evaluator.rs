//! The [`Evaluator`] session API: analyze a program once, evaluate it
//! many times.
//!
//! Every workload built on this engine — the §5 per-candidate solvers,
//! the Theorem 4.5 compilation (one program, many τ_td structures), the
//! property-test oracles, the benches — is a *repeated-evaluation*
//! workload. The historical free-function entry points (`eval_naive`,
//! `eval_seminaive`, `eval_stratified`, `eval_quasi_guarded`, …)
//! re-validated, re-stratified and re-planned on every call and threaded
//! caching and statistics through ad-hoc parameters. An [`Evaluator`]
//! does that analysis once at construction:
//!
//! * **parse-level validation** — safety (range restriction), head
//!   checks, and stratification (the dependency graph + Tarjan SCC
//!   pipeline of [`stratify`](crate::stratify::stratify())), so an
//!   unevaluable program is rejected before any structure is seen;
//! * **an owned [`PlanCache`]** — compiled join plans are memoized per
//!   session (no process-global sharing unless you opt into the
//!   deprecated wrappers), so the second [`evaluate`](Evaluator::evaluate)
//!   of a per-candidate loop skips planning;
//! * **recycled scratch buffers** — the semi-naive delta/staging
//!   relations and probe-key buffers live in the session and are reused
//!   across evaluations (and across the strata of one evaluation), so
//!   steady-state evaluation allocates nothing beyond arena growth.
//!
//! [`Evaluator::evaluate`] auto-dispatches: a semipositive program runs
//! the indexed semi-naive engine directly, a multi-stratum program runs
//! the bottom-up stratified pipeline (whose
//! [`Structure::extended`](mdtw_structure::Structure::extended)
//! materialization is copy-on-write, so extension costs O(#materialized
//! predicates)), and a session with an attached [`FdCatalog`] runs the
//! linear-time quasi-guarded pipeline of Theorem 4.4. The oracle engines
//! ([`Engine::Naive`], [`Engine::SemiNaiveScan`]) remain selectable for
//! differential testing.
//!
//! ```
//! use mdtw_datalog::{parse_program, Evaluator};
//! use mdtw_structure::{Domain, ElemId, Signature, Structure};
//! use std::sync::Arc;
//!
//! let sig = Arc::new(Signature::from_pairs([("e", 2)]));
//! let mut s = Structure::new(Arc::clone(&sig), Domain::anonymous(3));
//! let e = sig.lookup("e").unwrap();
//! s.insert(e, &[ElemId(0), ElemId(1)]);
//! s.insert(e, &[ElemId(1), ElemId(2)]);
//!
//! let p = parse_program("path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).", &s).unwrap();
//! let mut session = Evaluator::new(p).unwrap();
//! let first = session.evaluate(&s).unwrap();
//! assert!(first.store.holds_named("path", &[ElemId(0), ElemId(2)]));
//! // The session reuses its analysis: the second evaluation hits the
//! // owned plan cache instead of re-planning.
//! let second = session.evaluate(&s).unwrap();
//! assert_eq!(second.stats.plan_cache_hits, 1);
//! ```

use crate::analysis::{analyze, relevant_rules, AnalysisOptions, ProgramReport};
use crate::ast::Program;
use crate::cache::PlanCache;
use crate::eval::{
    debug_assert_semipositive, naive_fixpoint, scan_fixpoint, EvalStats, IdbStore, SeminaiveScratch,
};
use crate::ground::{check_quasi_guarded, run_quasi_guarded, FdCatalog, QgError, QgStats};
use crate::limits::{EvalLimits, Governor, LimitKind};
use crate::plan::{plan_program_with, StructureStats};
use crate::profile::{EvalProfile, Explanation, ProfileDetail, Profiler};
use crate::stratify::{
    run_stratified, stratify, ExtensionMemo, Stratification, StratificationError,
};
use crate::transform::{self, TransformSummary};
use mdtw_structure::Structure;
use std::fmt;
use std::sync::Arc;

/// Which fixpoint engine a session runs. The default (chosen by
/// [`EvalOptions`] when no engine is forced) is [`Engine::SemiNaiveIndexed`],
/// or [`Engine::QuasiGuarded`] when an [`FdCatalog`] is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The executable definition of the minimal-model semantics: all
    /// rules, every round, no indexes. Ground truth for differential
    /// testing; semipositive programs only.
    Naive,
    /// The pre-index semi-naive engine (nested-loop joins, full relation
    /// scans, one shared delta set). Kept as an oracle and scan baseline;
    /// semipositive programs only.
    SemiNaiveScan,
    /// The production engine: per-rule join plans probing lazily built
    /// secondary indexes, per-predicate delta relations, the textbook
    /// rule split. Multi-stratum programs run the bottom-up stratified
    /// pipeline over the same engine.
    SemiNaiveIndexed,
    /// The linear-time quasi-guarded pipeline of Theorem 4.4 (ground to
    /// propositional Horn, solve with LTUR). Requires an attached
    /// [`FdCatalog`]; semipositive programs only.
    QuasiGuarded,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Naive => "naive",
            Engine::SemiNaiveScan => "seminaive-scan",
            Engine::SemiNaiveIndexed => "seminaive-indexed",
            Engine::QuasiGuarded => "quasi-guarded",
        })
    }
}

/// How much of [`EvalStats`] a session reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsDetail {
    /// Every counter the engines maintain (the default).
    #[default]
    Full,
    /// Only the outcome counters — `facts`, `rounds`, `strata`,
    /// `plan_cache_hits`; the per-access work counters (`firings`,
    /// `index_probes`, `full_scans`, `tuples_considered`,
    /// `interned_hits`, `negative_checks`, `limit_checks`, `fuel_spent`)
    /// are reported as zero. Useful when results are serialized and the
    /// work counters would be noise.
    Outcome,
}

/// Configuration for an [`Evaluator`] session, built fluently:
///
/// ```
/// use mdtw_datalog::{Engine, EvalOptions, StatsDetail};
/// let opts = EvalOptions::new()
///     .engine(Engine::SemiNaiveScan)
///     .cache(false)
///     .stats_detail(StatsDetail::Outcome);
/// # let _ = opts;
/// ```
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    engine: Option<Engine>,
    no_cache: bool,
    stats_detail: StatsDetail,
    fd_catalog: Option<FdCatalog>,
    outputs: Option<Vec<String>>,
    prune_dead_rules: bool,
    minimize: bool,
    eliminate_bounded: bool,
    magic_sets: bool,
    limits: Option<EvalLimits>,
    profile: ProfileDetail,
}

impl EvalOptions {
    /// The defaults: engine auto-selected ([`Engine::SemiNaiveIndexed`],
    /// or [`Engine::QuasiGuarded`] once [`fd_catalog`](Self::fd_catalog)
    /// is attached), plan caching on, full statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forces a specific engine instead of the auto-selection.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Enables or disables the session's plan cache. With caching off,
    /// every evaluation re-plans against the structure's statistics (and
    /// [`EvalStats::plan_cache_hits`] stays 0).
    pub fn cache(mut self, on: bool) -> Self {
        self.no_cache = !on;
        self
    }

    /// Selects how much of [`EvalStats`] evaluations report.
    pub fn stats_detail(mut self, detail: StatsDetail) -> Self {
        self.stats_detail = detail;
        self
    }

    /// Attaches a functional-dependency catalog. Unless another engine
    /// was forced with [`engine`](Self::engine), this selects
    /// [`Engine::QuasiGuarded`] — the Theorem 4.4 pipeline needs the
    /// declared dependencies to resolve non-guard variables.
    pub fn fd_catalog(mut self, catalog: FdCatalog) -> Self {
        self.fd_catalog = Some(catalog);
        self
    }

    /// Declares the *output* predicates the session is evaluated for.
    /// Feeds the relevance passes of [`Evaluator::analyze`] and, together
    /// with [`prune_dead_rules`](Self::prune_dead_rules), the dead-rule
    /// pruning. Names not naming an intensional predicate are ignored.
    pub fn outputs<I, S>(mut self, outputs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.outputs = Some(outputs.into_iter().map(Into::into).collect());
        self
    }

    /// Drops rules irrelevant to the declared [`outputs`](Self::outputs)
    /// before stratification and planning. The pruned session derives
    /// exactly the same facts for every output (and every predicate an
    /// output transitively depends on) — pinned by property tests — but
    /// skips the strata, plans and fixpoint work of the dead fragment.
    /// No-op unless outputs were declared.
    pub fn prune_dead_rules(mut self, on: bool) -> Self {
        self.prune_dead_rules = on;
        self
    }

    /// Minimizes the program at construction:
    /// [`transform::minimize`] condenses rule
    /// bodies by homomorphism and drops rules the rest of the program
    /// uniformly contains. Semantics on every intensional predicate are
    /// preserved (property-tested); see
    /// [`transforms`](Evaluator::transforms) for what was done.
    pub fn minimize(mut self, on: bool) -> Self {
        self.minimize = on;
        self
    }

    /// Rewrites recursive SCCs proven *bounded* (by the iterated
    /// uniform-containment test of
    /// [`transform::bounded_sccs`]) into
    /// their nonrecursive unfoldings at construction.
    pub fn eliminate_bounded_recursion(mut self, on: bool) -> Self {
        self.eliminate_bounded = on;
        self
    }

    /// Applies the magic-set demand transformation keyed by the declared
    /// [`outputs`](Self::outputs) at construction
    /// ([`transform::magic_program`]).
    /// No-op when no output admits a bound adornment, when outputs were
    /// not declared, or when the rewritten program would not stratify.
    /// Output predicates keep their names, so
    /// [`IdbStore`] lookups keep working; other
    /// predicates may be replaced by adorned versions (`p[bf]`) and
    /// demand predicates (`m_p[bf]`).
    pub fn magic_sets(mut self, on: bool) -> Self {
        self.magic_sets = on;
        self
    }

    /// Attaches resource limits ([`EvalLimits`]) to the session. Every
    /// evaluation — and every nested evaluation the construction-time
    /// transforms spawn — draws from the limits' shared meter; a trip
    /// surfaces as [`EvalError::LimitExceeded`] (with a partial result
    /// where the engine can guarantee soundness), except in the
    /// construction-time transforms, which degrade to "not applied" (see
    /// [`TransformSummary::budget_tripped`]).
    ///
    /// ```
    /// use mdtw_datalog::{EvalLimits, EvalOptions};
    /// use std::time::Duration;
    /// let opts = EvalOptions::new()
    ///     .limits(EvalLimits::new().fuel(1_000_000).deadline(Duration::from_millis(100)));
    /// # let _ = opts;
    /// ```
    pub fn limits(mut self, limits: EvalLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Selects how much profiling detail evaluations collect (default
    /// [`ProfileDetail::Off`]). Any level above `Off` attaches an
    /// [`EvalProfile`] to every [`EvalResult`] — and to the partial
    /// result of an [`EvalError::LimitExceeded`] trip. Profiling never
    /// changes what is computed: the store and [`EvalStats`] are
    /// bit-identical to an unprofiled evaluation (property-tested), and
    /// `Off` costs one branch per rule pass.
    ///
    /// ```
    /// use mdtw_datalog::{EvalOptions, ProfileDetail};
    /// let opts = EvalOptions::new().profile(ProfileDetail::Literals);
    /// # let _ = opts;
    /// ```
    pub fn profile(mut self, detail: ProfileDetail) -> Self {
        self.profile = detail;
        self
    }
}

/// Why an [`Evaluator`] could not be constructed or an evaluation failed.
///
/// Equality compares the error *shape* (and, for
/// [`EvalError::LimitExceeded`], the [`LimitKind`]) — not the attached
/// statistics or partial results.
#[derive(Debug, Clone)]
pub enum EvalError {
    /// The program has no stratified semantics, or failed the per-rule
    /// safety/head checks.
    Stratification(StratificationError),
    /// Quasi-guarded analysis or grounding failed (a rule has no
    /// quasi-guard under the declared dependencies, or the data violates
    /// a declared dependency).
    QuasiGuarded(QgError),
    /// A semipositive-only engine was selected for a program that needs
    /// multi-stratum evaluation; use [`Engine::SemiNaiveIndexed`].
    NeedsStratifiedEngine {
        /// The selected semipositive-only engine.
        engine: Engine,
        /// The program's stratum count (≥ 2).
        strata: usize,
    },
    /// [`Engine::QuasiGuarded`] was selected without attaching an
    /// [`FdCatalog`] via [`EvalOptions::fd_catalog`].
    MissingFdCatalog,
    /// A semipositive-only entry point received a program with intensional
    /// negation; use the [`Evaluator`] session API (or
    /// [`Engine::SemiNaiveIndexed`]), which evaluates stratified programs.
    NotSemipositive {
        /// What the semipositivity check rejected.
        message: String,
    },
    /// [`Evaluator::materialize`] was called on a session whose engine
    /// cannot drive incremental maintenance; only
    /// [`Engine::SemiNaiveIndexed`] compiles the delta-driven rule plans
    /// the maintenance pipeline replays.
    UnsupportedIncremental {
        /// The session's selected engine.
        engine: Engine,
    },
    /// A resource limit attached via [`EvalOptions::limits`] tripped
    /// (see [`EvalLimits`]).
    LimitExceeded {
        /// Which limit tripped.
        kind: LimitKind,
        /// The work counters at the moment of the trip. On a
        /// multi-stratum evaluation `stats.strata` counts the *completed*
        /// strata (the partial result's materialized prefix); on a
        /// single-stratum trip it is 0.
        stats: EvalStats,
        /// The facts materialized before the trip — always a sound subset
        /// of the full least fixpoint (graceful degradation). `None` for
        /// the quasi-guarded engine, which cannot certify a partial
        /// grounding.
        partial: Option<Box<EvalResult>>,
    },
}

impl PartialEq for EvalError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (EvalError::Stratification(a), EvalError::Stratification(b)) => a == b,
            (EvalError::QuasiGuarded(a), EvalError::QuasiGuarded(b)) => a == b,
            (
                EvalError::NeedsStratifiedEngine { engine, strata },
                EvalError::NeedsStratifiedEngine {
                    engine: e2,
                    strata: s2,
                },
            ) => engine == e2 && strata == s2,
            (EvalError::MissingFdCatalog, EvalError::MissingFdCatalog) => true,
            (
                EvalError::NotSemipositive { message },
                EvalError::NotSemipositive { message: m2 },
            ) => message == m2,
            (
                EvalError::UnsupportedIncremental { engine },
                EvalError::UnsupportedIncremental { engine: e2 },
            ) => engine == e2,
            (EvalError::LimitExceeded { kind, .. }, EvalError::LimitExceeded { kind: k2, .. }) => {
                kind == k2
            }
            _ => false,
        }
    }
}

impl Eq for EvalError {}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Stratification(e) => write!(f, "stratification: {e}"),
            EvalError::QuasiGuarded(e) => write!(f, "quasi-guarded: {e}"),
            EvalError::NeedsStratifiedEngine { engine, strata } => write!(
                f,
                "engine `{engine}` evaluates semipositive programs only, but the program \
                 has {strata} strata; use Engine::SemiNaiveIndexed"
            ),
            EvalError::MissingFdCatalog => write!(
                f,
                "Engine::QuasiGuarded needs an FdCatalog (EvalOptions::fd_catalog)"
            ),
            EvalError::NotSemipositive { message } => {
                write!(f, "semipositive engine: {message}")
            }
            EvalError::UnsupportedIncremental { engine } => write!(
                f,
                "engine `{engine}` cannot drive incremental maintenance; materialize \
                 requires Engine::SemiNaiveIndexed"
            ),
            EvalError::LimitExceeded {
                kind,
                stats,
                partial,
            } => write!(
                f,
                "evaluation exceeded its {kind} limit in stratum {} after {} facts and {} \
                 rounds{}",
                stats.strata,
                stats.facts,
                stats.rounds,
                if partial.is_some() {
                    " (partial result attached)"
                } else {
                    ""
                }
            ),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<StratificationError> for EvalError {
    fn from(e: StratificationError) -> Self {
        EvalError::Stratification(e)
    }
}

impl From<QgError> for EvalError {
    fn from(e: QgError) -> Self {
        EvalError::QuasiGuarded(e)
    }
}

/// One evaluation's outcome: the least (stratified) model, the work
/// counters, and the session's stratification certificate.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The computed model, one indexed relation per intensional predicate.
    pub store: IdbStore,
    /// Work counters (subject to the session's [`StatsDetail`]).
    pub stats: EvalStats,
    /// The stratification the session computed at construction (1 stratum
    /// for semipositive programs). Shared with the session — an `Arc`
    /// bump per evaluation, not a copy, so per-candidate loops pay
    /// nothing for it.
    pub stratification: Arc<Stratification>,
    /// Grounding statistics when the quasi-guarded engine ran, `None`
    /// otherwise.
    pub qg: Option<QgStats>,
    /// The evaluation profile, when the session requested one via
    /// [`EvalOptions::profile`]; `None` at [`ProfileDetail::Off`]. Boxed:
    /// profiles are cold data next to the store.
    pub profile: Option<Box<EvalProfile>>,
}

/// A reusable evaluation session: one program, analyzed once, evaluated
/// against any number of structures. See the [module docs](self) for the
/// motivation and an example; construct with [`Evaluator::new`] (defaults)
/// or [`Evaluator::with_options`].
#[derive(Debug)]
pub struct Evaluator {
    program: Program,
    engine: Engine,
    cache_enabled: bool,
    stats_detail: StatsDetail,
    fd_catalog: Option<FdCatalog>,
    outputs: Option<Vec<String>>,
    pruned_rules: usize,
    transforms: TransformSummary,
    limits: Option<EvalLimits>,
    profile_detail: ProfileDetail,
    stratification: Arc<Stratification>,
    cache: PlanCache,
    scratch: SeminaiveScratch,
    ext_memo: ExtensionMemo,
}

impl Evaluator {
    /// A session with default options: auto-selected engine, plan caching
    /// on, full statistics. Validates and stratifies the program once.
    pub fn new(program: Program) -> Result<Self, EvalError> {
        Self::with_options(program, EvalOptions::new())
    }

    /// A session with explicit [`EvalOptions`]. All program-level
    /// analysis happens here: safety and head checks, stratification,
    /// engine resolution, and (for the quasi-guarded engine) the
    /// structure-independent guard analysis — so every later
    /// [`evaluate`](Self::evaluate) starts from a validated program.
    pub fn with_options(mut program: Program, options: EvalOptions) -> Result<Self, EvalError> {
        let mut pruned_rules = 0;
        if options.prune_dead_rules {
            if let Some(outputs) = &options.outputs {
                let ids: Vec<_> = outputs.iter().filter_map(|s| program.idb(s)).collect();
                let keep = relevant_rules(&program, &ids);
                if keep.iter().any(|&k| !k) {
                    pruned_rules = keep.iter().filter(|&&k| !k).count();
                    let mut keep_rules = keep.iter().copied();
                    program.rules.retain(|_| keep_rules.next().unwrap());
                    if !program.spans.is_empty() {
                        let mut keep_spans = keep.iter().copied();
                        program.spans.retain(|_| keep_spans.next().unwrap());
                    }
                }
            }
        }
        let mut transforms = TransformSummary::default();
        if options.minimize {
            let (report, tripped) =
                transform::minimize_with_limits(&mut program, options.limits.as_ref());
            transforms.removed_rules = report.removed_rules;
            transforms.condensed_literals = report.condensed_literals;
            transforms.budget_tripped |= tripped;
        }
        if options.eliminate_bounded {
            let (sccs, tripped) = transform::eliminate_bounded_recursion_with_limits(
                &mut program,
                options.limits.as_ref(),
            );
            transforms.bounded_sccs = sccs.len();
            transforms.budget_tripped |= tripped;
        }
        if options.magic_sets {
            if let Some(outputs) = &options.outputs {
                let ids: Vec<_> = outputs.iter().filter_map(|s| program.idb(s)).collect();
                let outcome = transform::magic_program(&program, &ids);
                transforms.magic_adorned = outcome.adorned;
                transforms.magic_rules = outcome.magic_rules;
                if let Some(rewritten) = outcome.program {
                    // The demand rewrite is argued stratifiable whenever
                    // the input is, but fall back rather than fail if a
                    // corner case defeats that.
                    if stratify(&rewritten).is_ok() {
                        transforms.magic_applied = true;
                        program = rewritten;
                    }
                }
            }
        }
        let stratification = Arc::new(stratify(&program)?);
        let engine = options.engine.unwrap_or(if options.fd_catalog.is_some() {
            Engine::QuasiGuarded
        } else {
            Engine::SemiNaiveIndexed
        });
        if engine != Engine::SemiNaiveIndexed && stratification.stratum_count() > 1 {
            return Err(EvalError::NeedsStratifiedEngine {
                engine,
                strata: stratification.stratum_count(),
            });
        }
        let fd_catalog = options.fd_catalog;
        if engine == Engine::QuasiGuarded {
            let catalog = fd_catalog.as_ref().ok_or(EvalError::MissingFdCatalog)?;
            check_quasi_guarded(&program, catalog)?;
        }
        let scratch = SeminaiveScratch::new(&program);
        Ok(Self {
            program,
            engine,
            cache_enabled: !options.no_cache,
            stats_detail: options.stats_detail,
            fd_catalog,
            outputs: options.outputs,
            pruned_rules,
            transforms,
            limits: options.limits,
            profile_detail: options.profile,
            stratification,
            cache: PlanCache::new(),
            scratch,
            ext_memo: ExtensionMemo::default(),
        })
    }

    /// Evaluates the session's program over `structure`.
    ///
    /// Dispatch is automatic: semipositive programs run the selected
    /// engine directly; multi-stratum programs run the bottom-up
    /// stratified pipeline (only [`Engine::SemiNaiveIndexed`] supports
    /// them — others are rejected at construction). Construction-time
    /// analysis is reused, so the per-call errors are data-dependent
    /// quasi-guarded failures ([`QgError::FdViolated`]) and — when
    /// [`EvalOptions::limits`] attached a budget —
    /// [`EvalError::LimitExceeded`].
    pub fn evaluate(&mut self, structure: &Structure) -> Result<EvalResult, EvalError> {
        let limits = self.limits.clone();
        // Per-evaluation deltas of the shared meter (the meter is
        // cumulative across a session's evaluations and the transforms'
        // nested probes, so absolute readings would mislead).
        let meter_before = limits.as_ref().map(|l| (l.checks_spent(), l.fuel_spent()));
        let mut profiler =
            (self.profile_detail != ProfileDetail::Off).then(|| Profiler::new(self.profile_detail));
        let (store, mut stats, qg, trip) = match self.engine {
            Engine::Naive => {
                debug_assert_semipositive(&self.program);
                let mut gov = Governor::new(limits.as_ref());
                let (store, stats) =
                    naive_fixpoint(&self.program, structure, &mut gov, profiler.as_mut());
                (store, stats, None, gov.tripped())
            }
            Engine::SemiNaiveScan => {
                debug_assert_semipositive(&self.program);
                let mut gov = Governor::new(limits.as_ref());
                let (store, stats) =
                    scan_fixpoint(&self.program, structure, &mut gov, profiler.as_mut());
                (store, stats, None, gov.tripped())
            }
            Engine::SemiNaiveIndexed => {
                let cache = self.cache_enabled.then_some(&self.cache);
                let (store, stats, trip) = run_stratified(
                    &self.program,
                    &self.stratification,
                    structure,
                    cache,
                    &mut self.scratch,
                    &mut self.ext_memo,
                    limits.as_ref(),
                    profiler.as_mut(),
                );
                (store, stats, None, trip)
            }
            Engine::QuasiGuarded => {
                let catalog = self
                    .fd_catalog
                    .as_ref()
                    .expect("QuasiGuarded sessions carry a catalog (checked at construction)");
                let mut gov = Governor::new(limits.as_ref());
                // The quasi-guarded pipeline has no per-rule pass
                // structure; the profiler records the timeline only.
                if let Some(p) = profiler.as_mut() {
                    p.begin_stratum_bare(0);
                }
                let (store, qg) = run_quasi_guarded(&self.program, structure, catalog, &mut gov)?;
                let stats = EvalStats {
                    facts: store.fact_count(),
                    rounds: 1,
                    strata: 1,
                    ..EvalStats::default()
                };
                if let Some(p) = profiler.as_mut() {
                    if gov.tripped().is_some() {
                        p.mark_trip(0);
                    }
                    p.end_stratum(stats.rounds, stats.facts);
                }
                (store, stats, Some(qg), gov.tripped())
            }
        };
        if let Some((checks_before, fuel_before)) = meter_before {
            let meter = limits.as_ref().expect("meter snapshot implies limits");
            stats.limit_checks = (meter.checks_spent() - checks_before) as usize;
            stats.fuel_spent = meter.fuel_spent() - fuel_before;
        }
        let profile = profiler.map(|p| Box::new(p.finish()));
        if let Some(kind) = trip {
            if self.engine != Engine::SemiNaiveIndexed {
                // Single-stratum engines complete no stratum on a trip;
                // the stratified driver already set the completed count.
                stats.strata = 0;
            }
            let stats = self.filter_stats(stats);
            // The quasi-guarded engine cannot certify a partial grounding,
            // so it degrades without a partial result (and, since the
            // profile rides on the partial, without a profile).
            let partial = (self.engine != Engine::QuasiGuarded).then(|| {
                Box::new(EvalResult {
                    store,
                    stats,
                    stratification: Arc::clone(&self.stratification),
                    qg: None,
                    profile,
                })
            });
            return Err(EvalError::LimitExceeded {
                kind,
                stats,
                partial,
            });
        }
        Ok(EvalResult {
            store,
            stats: self.filter_stats(stats),
            stratification: Arc::clone(&self.stratification),
            qg,
            profile,
        })
    }

    /// Consumes the session into a long-lived
    /// [`MaterializedView`](crate::incremental::MaterializedView) over
    /// `structure`: evaluates to fixpoint once, then hands the program,
    /// stratification, plan cache, and scratch arenas to the incremental
    /// maintenance pipeline so subsequent base-relation updates are
    /// absorbed by delta re-derivation instead of re-evaluation.
    ///
    /// Only [`Engine::SemiNaiveIndexed`] compiles the per-rule join
    /// plans the maintenance passes replay; any other engine choice is
    /// rejected up front with [`EvalError::UnsupportedIncremental`].
    /// Errors from the initial evaluation (including
    /// [`EvalError::LimitExceeded`] when the session carries a budget)
    /// propagate unchanged.
    pub fn materialize(
        mut self,
        structure: &Structure,
    ) -> Result<crate::incremental::MaterializedView, EvalError> {
        if self.engine != Engine::SemiNaiveIndexed {
            return Err(EvalError::UnsupportedIncremental {
                engine: self.engine,
            });
        }
        let result = self.evaluate(structure)?;
        let parts = crate::incremental::SessionParts {
            program: self.program,
            stratification: self.stratification,
            cache: self.cache,
            cache_enabled: self.cache_enabled,
            scratch: self.scratch,
            ext_memo: self.ext_memo,
            limits: self.limits,
        };
        Ok(crate::incremental::MaterializedView::from_session(
            parts,
            structure,
            result.store,
        ))
    }

    /// Renders the session's compiled evaluation strategy — per-stratum
    /// rule plans with join order, scan-vs-probe access paths, chosen
    /// probe key positions, and the semi-naive delta splits — as an
    /// [`Explanation`] (human text via [`Explanation::render_text`], JSON
    /// via [`Explanation::to_json`]; `mdtw-lint --explain` on the command
    /// line).
    ///
    /// Plans are compiled against `structure`'s statistics exactly as an
    /// (uncached) evaluation would compile them. One caveat for
    /// multi-stratum programs: during evaluation, higher strata plan
    /// against the *extended* structure holding the lower strata's
    /// materialized relations, whose real cardinalities can shift the
    /// planner's greedy tie-breaks — the explanation shows the
    /// base-structure baseline.
    pub fn explain(&self, structure: &Structure) -> Explanation {
        let plans = plan_program_with(&self.program, &StructureStats::new(structure));
        crate::profile::explain_plans(
            &self.program,
            &self.stratification,
            structure,
            &plans,
            self.engine.to_string(),
        )
    }

    /// Applies the session's [`StatsDetail`] to raw engine counters.
    fn filter_stats(&self, stats: EvalStats) -> EvalStats {
        match self.stats_detail {
            StatsDetail::Full => stats,
            StatsDetail::Outcome => EvalStats {
                facts: stats.facts,
                rounds: stats.rounds,
                strata: stats.strata,
                plan_cache_hits: stats.plan_cache_hits,
                ..EvalStats::default()
            },
        }
    }

    /// Runs the full static-analysis battery of
    /// [`analysis`](crate::analysis) over the session's program (the
    /// *post-pruning* program, when
    /// [`EvalOptions::prune_dead_rules`] dropped rules) and returns the
    /// [`ProgramReport`]. The session's declared outputs and FD catalog
    /// feed the relevance and quasi-guard passes. A constructed session
    /// already passed the error-level checks, so the report contains at
    /// most warnings and notes.
    pub fn analyze(&self) -> ProgramReport {
        let mut options = AnalysisOptions::new();
        if let Some(outputs) = &self.outputs {
            options = options.outputs(outputs.iter().cloned());
        }
        if let Some(catalog) = &self.fd_catalog {
            options = options.fd_catalog(catalog.clone());
        }
        analyze(&self.program, &options)
    }

    /// How many rules [`EvalOptions::prune_dead_rules`] dropped at
    /// construction (0 when pruning was off or nothing was dead).
    #[inline]
    pub fn pruned_rule_count(&self) -> usize {
        self.pruned_rules
    }

    /// What the semantic transformations ([`EvalOptions::minimize`],
    /// [`EvalOptions::eliminate_bounded_recursion`],
    /// [`EvalOptions::magic_sets`]) did at construction; all-zero when
    /// none was requested.
    #[inline]
    pub fn transforms(&self) -> TransformSummary {
        self.transforms
    }

    /// The session's program (the session owns it; call sites that need
    /// predicate ids after construction look them up here). When
    /// [`EvalOptions::prune_dead_rules`] dropped rules this is the pruned
    /// program.
    #[inline]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The engine this session dispatches to.
    #[inline]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The stratification computed at construction.
    #[inline]
    pub fn stratification(&self) -> &Stratification {
        &self.stratification
    }

    /// The session-owned plan cache (one entry per stratum sub-program
    /// and structure cardinality shape; empty when caching is disabled).
    #[inline]
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use mdtw_structure::{Domain, ElemId, Signature};
    use std::sync::Arc;

    fn chain(n: usize) -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1), ("first", 1)]));
        let dom = Domain::anonymous(n);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        let node = s.signature().lookup("node").unwrap();
        let first = s.signature().lookup("first").unwrap();
        for i in 0..n {
            s.insert(node, &[ElemId(i as u32)]);
        }
        for i in 0..n - 1 {
            s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
        }
        s.insert(first, &[ElemId(0)]);
        s
    }

    const TC: &str = "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).";
    const UNREACH: &str = "reach(X) :- first(X).\n\
                           reach(Y) :- reach(X), e(X, Y).\n\
                           unreach(X) :- node(X), !reach(X).";

    #[test]
    fn session_reuse_hits_owned_plan_cache() {
        let s = chain(6);
        let p = parse_program(TC, &s).unwrap();
        let mut session = Evaluator::new(p).unwrap();
        assert_eq!(session.engine(), Engine::SemiNaiveIndexed);
        let first = session.evaluate(&s).unwrap();
        assert_eq!(first.stats.plan_cache_hits, 0, "cold session must plan");
        let second = session.evaluate(&s).unwrap();
        assert_eq!(second.stats.plan_cache_hits, 1, "warm session reuses plans");
        assert_eq!(first.stats.facts, second.stats.facts);
        assert_eq!(session.plan_cache().len(), 1);
        let path = session.program().idb("path").unwrap();
        assert_eq!(first.store.tuples(path), second.store.tuples(path));
    }

    #[test]
    fn cache_off_replans_every_time() {
        let s = chain(6);
        let p = parse_program(TC, &s).unwrap();
        let mut session = Evaluator::with_options(p, EvalOptions::new().cache(false)).unwrap();
        let first = session.evaluate(&s).unwrap();
        let second = session.evaluate(&s).unwrap();
        assert_eq!(first.stats.plan_cache_hits, 0);
        assert_eq!(second.stats.plan_cache_hits, 0);
        assert!(session.plan_cache().is_empty());
        assert_eq!(first.stats.facts, second.stats.facts);
    }

    #[test]
    fn multi_stratum_auto_dispatch() {
        let s = chain(5);
        let p = parse_program(UNREACH, &s).unwrap();
        let mut session = Evaluator::new(p).unwrap();
        assert_eq!(session.stratification().stratum_count(), 2);
        let result = session.evaluate(&s).unwrap();
        assert_eq!(result.stats.strata, 2);
        assert_eq!(result.stratification.stratum_count(), 2);
        let unreach = session.program().idb("unreach").unwrap();
        assert!(
            result.store.unary(unreach).is_empty(),
            "chain fully reachable"
        );
        // Warm stratified session: one plan-cache hit per stratum.
        let warm = session.evaluate(&s).unwrap();
        assert_eq!(warm.stats.plan_cache_hits, 2);
    }

    #[test]
    fn oracle_engines_reject_multi_stratum_at_construction() {
        let s = chain(4);
        let p = parse_program(UNREACH, &s).unwrap();
        for engine in [Engine::Naive, Engine::SemiNaiveScan, Engine::QuasiGuarded] {
            let mut opts = EvalOptions::new().engine(engine);
            if engine == Engine::QuasiGuarded {
                opts = opts.fd_catalog(FdCatalog::new());
            }
            let err = Evaluator::with_options(p.clone(), opts).unwrap_err();
            assert_eq!(
                err,
                EvalError::NeedsStratifiedEngine { engine, strata: 2 },
                "{engine}"
            );
            assert!(err.to_string().contains("strata"));
        }
    }

    #[test]
    fn oracle_engines_agree_with_indexed() {
        let s = chain(7);
        let p = parse_program(TC, &s).unwrap();
        let indexed = Evaluator::new(p.clone()).unwrap().evaluate(&s).unwrap();
        for engine in [Engine::Naive, Engine::SemiNaiveScan] {
            let mut session =
                Evaluator::with_options(p.clone(), EvalOptions::new().engine(engine)).unwrap();
            let result = session.evaluate(&s).unwrap();
            let path = session.program().idb("path").unwrap();
            assert_eq!(
                result.store.tuples(path),
                indexed.store.tuples(path),
                "{engine}"
            );
            assert_eq!(result.stats.facts, indexed.stats.facts, "{engine}");
        }
    }

    #[test]
    fn fd_catalog_selects_quasi_guarded_and_agrees() {
        let s = chain(8);
        let e = s.signature().lookup("e").unwrap();
        let mut catalog = FdCatalog::new();
        catalog.declare(e, vec![0], vec![1]);
        catalog.declare(e, vec![1], vec![0]);
        let p = parse_program("reach(X) :- first(X).\nreach(Y) :- reach(X), e(X, Y).", &s).unwrap();
        let mut qg =
            Evaluator::with_options(p.clone(), EvalOptions::new().fd_catalog(catalog)).unwrap();
        assert_eq!(qg.engine(), Engine::QuasiGuarded);
        let qg_result = qg.evaluate(&s).unwrap();
        assert!(qg_result.qg.is_some(), "quasi-guarded runs report QgStats");
        assert!(qg_result.qg.unwrap().ground_rules > 0);
        let indexed = Evaluator::new(p).unwrap().evaluate(&s).unwrap();
        let reach = qg.program().idb("reach").unwrap();
        assert_eq!(qg_result.store.tuples(reach), indexed.store.tuples(reach));
        assert_eq!(qg_result.stats.facts, indexed.stats.facts);
    }

    #[test]
    fn quasi_guarded_without_catalog_is_rejected() {
        let s = chain(3);
        let p = parse_program(TC, &s).unwrap();
        let err = Evaluator::with_options(p, EvalOptions::new().engine(Engine::QuasiGuarded))
            .unwrap_err();
        assert_eq!(err, EvalError::MissingFdCatalog);
    }

    #[test]
    fn unguarded_program_rejected_at_construction() {
        let s = chain(4);
        let p = parse_program("pair(X, Y) :- first(X), first(Y).", &s).unwrap();
        let err = Evaluator::with_options(p, EvalOptions::new().fd_catalog(FdCatalog::new()))
            .unwrap_err();
        assert_eq!(
            err,
            EvalError::QuasiGuarded(QgError::NotQuasiGuarded { rule: 0 })
        );
    }

    #[test]
    fn unstratifiable_program_rejected_at_construction() {
        // win(X) :- e(X, Y), !win(Y) — hand-built since the parser rejects
        // it with its own spanned error.
        use crate::ast::{Atom, Literal, PredRef, Rule, Term, Var};
        let s = chain(3);
        let e = s.signature().lookup("e").unwrap();
        let mut p = Program::default();
        let win = p.intern_idb("win", 1).unwrap();
        p.rules.push(Rule {
            head: Atom {
                pred: PredRef::Idb(win),
                terms: vec![Term::Var(Var(0))],
            },
            body: vec![
                Literal {
                    atom: Atom {
                        pred: PredRef::Edb(e),
                        terms: vec![Term::Var(Var(0)), Term::Var(Var(1))],
                    },
                    positive: true,
                },
                Literal {
                    atom: Atom {
                        pred: PredRef::Idb(win),
                        terms: vec![Term::Var(Var(1))],
                    },
                    positive: false,
                },
            ],
            var_count: 2,
            var_names: vec!["X".into(), "Y".into()],
        });
        let err = Evaluator::new(p).unwrap_err();
        assert!(matches!(
            err,
            EvalError::Stratification(StratificationError::NegativeCycle { .. })
        ));
    }

    #[test]
    fn outcome_stats_detail_zeroes_work_counters() {
        let s = chain(6);
        let p = parse_program(TC, &s).unwrap();
        let mut session =
            Evaluator::with_options(p, EvalOptions::new().stats_detail(StatsDetail::Outcome))
                .unwrap();
        let result = session.evaluate(&s).unwrap();
        assert!(result.stats.facts > 0);
        assert!(result.stats.rounds > 0);
        assert_eq!(result.stats.strata, 1);
        assert_eq!(result.stats.firings, 0);
        assert_eq!(result.stats.index_probes, 0);
        assert_eq!(result.stats.tuples_considered, 0);
    }

    const WITH_DEAD: &str = "reach(X) :- first(X).\n\
                             reach(Y) :- reach(X), e(X, Y).\n\
                             dead(X) :- node(X), e(X, Y).\n\
                             deader(X) :- dead(X).";

    #[test]
    fn prune_dead_rules_drops_irrelevant_fragment() {
        let s = chain(6);
        let p = parse_program(WITH_DEAD, &s).unwrap();
        let mut plain =
            Evaluator::with_options(p.clone(), EvalOptions::new().outputs(["reach"])).unwrap();
        assert_eq!(plain.pruned_rule_count(), 0, "pruning is opt-in");
        let mut pruned = Evaluator::with_options(
            p,
            EvalOptions::new().outputs(["reach"]).prune_dead_rules(true),
        )
        .unwrap();
        assert_eq!(pruned.pruned_rule_count(), 2);
        assert_eq!(pruned.program().rules.len(), 2);
        assert_eq!(
            pruned.program().spans.len(),
            2,
            "spans stay parallel to rules"
        );
        let a = plain.evaluate(&s).unwrap();
        let b = pruned.evaluate(&s).unwrap();
        let reach = pruned.program().idb("reach").unwrap();
        assert_eq!(a.store.tuples(reach), b.store.tuples(reach));
        assert!(a.stats.facts > b.stats.facts, "dead facts skipped");
    }

    #[test]
    fn session_analyze_reports_on_the_session_program() {
        let s = chain(4);
        let p = parse_program(WITH_DEAD, &s).unwrap();
        let session =
            Evaluator::with_options(p.clone(), EvalOptions::new().outputs(["reach"])).unwrap();
        let report = session.analyze();
        assert!(!report.has_errors(), "constructed sessions have no errors");
        assert_eq!(report.relevant_rules, vec![true, true, false, false]);
        assert!(report.warning_count() > 0, "dead fragment warned about");
        // After pruning, the same analysis comes back clean.
        let pruned = Evaluator::with_options(
            p,
            EvalOptions::new().outputs(["reach"]).prune_dead_rules(true),
        )
        .unwrap();
        let report = pruned.analyze();
        assert_eq!(report.relevant_rules, vec![true, true]);
        assert_eq!(report.warning_count(), 0, "{:?}", report.diagnostics);
    }

    #[test]
    fn transform_options_rewrite_at_construction() {
        let s = chain(12);
        let src = "path(X, Y) :- e(X, Y).\n\
                   path(X, Z) :- path(X, Y), e(Y, Z).\n\
                   answer(Y) :- first(X), path(X, Y).";
        let p = parse_program(src, &s).unwrap();
        let mut full =
            Evaluator::with_options(p.clone(), EvalOptions::new().outputs(["answer"])).unwrap();
        assert_eq!(full.transforms(), TransformSummary::default());
        let mut magic =
            Evaluator::with_options(p, EvalOptions::new().outputs(["answer"]).magic_sets(true))
                .unwrap();
        let t = magic.transforms();
        assert!(t.magic_applied);
        assert!(t.magic_rules >= 1);
        let a = full.evaluate(&s).unwrap();
        let b = magic.evaluate(&s).unwrap();
        let fa = full.program().idb("answer").unwrap();
        let fb = magic.program().idb("answer").unwrap();
        assert_eq!(a.store.tuples(fa), b.store.tuples(fb));
        assert!(!b.store.tuples(fb).is_empty());
        assert!(
            b.stats.facts < a.stats.facts,
            "demand evaluation avoids the full path materialization"
        );
    }

    #[test]
    fn stratified_extension_setup_is_memoized_per_signature() {
        let s = chain(5);
        let p = parse_program(UNREACH, &s).unwrap();
        let mut session = Evaluator::new(p).unwrap();
        session.evaluate(&s).unwrap();
        assert_eq!(session.ext_memo.rebuilds, 1, "cold session builds once");
        session.evaluate(&s).unwrap();
        session.evaluate(&s).unwrap();
        assert_eq!(
            session.ext_memo.rebuilds, 1,
            "same signature: extension setup reused"
        );
        // A structure over a different Signature allocation forces a
        // rebuild.
        let other = chain(9);
        session.evaluate(&other).unwrap();
        assert_eq!(session.ext_memo.rebuilds, 2);
    }

    #[test]
    fn one_session_many_structures() {
        let p = parse_program(TC, &chain(4)).unwrap();
        let mut session = Evaluator::new(p).unwrap();
        for n in [4usize, 5, 6, 7] {
            let s = chain(n);
            let result = session.evaluate(&s).unwrap();
            // Chain TC derives n·(n−1)/2 path facts.
            assert_eq!(result.stats.facts, n * (n - 1) / 2, "n={n}");
        }
    }
}
