//! # mdtw-datalog
//!
//! A from-scratch datalog engine for the *Monadic Datalog over Finite
//! Structures with Bounded Treewidth* reproduction (Gottlob, Pichler &
//! Wei, PODS 2007).
//!
//! The engine evaluates *semipositive* datalog (negation only on
//! extensional atoms — the fragment produced by the paper's MSO-to-datalog
//! construction) over the finite structures of [`mdtw_structure`]:
//!
//! * [`ast`] / [`parser`] — programs as data or text;
//! * [`eval`] — naive and semi-naive least-fixpoint evaluation (the
//!   reference semantics of §2.4);
//! * [`ground`](mod@crate::ground) — **quasi-guarded** datalog (Definition 4.3): guard
//!   analysis with declared functional dependencies, grounding in
//!   `O(|P|·|𝒜|)`, and the linear-time evaluation of Theorem 4.4;
//! * [`horn`] — the LTUR/Dowling–Gallier linear-time propositional Horn
//!   solver the grounding is handed to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod ground;
pub mod horn;
pub mod parser;

pub use ast::{Atom, IdbId, Literal, PredRef, Program, Rule, Term, Var};
pub use eval::{eval_naive, eval_seminaive, EvalStats, IdbStore};
pub use ground::{eval_quasi_guarded, ground, FdCatalog, FuncDep, Grounding, QgError, QgStats};
pub use horn::{HornProgram, HornRule};
pub use parser::{parse_program, ParseError};
