//! # mdtw-datalog
//!
//! A from-scratch datalog engine for the *Monadic Datalog over Finite
//! Structures with Bounded Treewidth* reproduction (Gottlob, Pichler &
//! Wei, PODS 2007).
//!
//! The engine evaluates **stratified** datalog — negation over derived
//! predicates, as long as no predicate depends on its own negation — over
//! the finite structures of [`mdtw_structure`]. The core fixpoint engines
//! are *semipositive* (negation only on extensional atoms — the fragment
//! produced by the paper's MSO-to-datalog construction); the
//! [`stratify`](mod@crate::stratify) pipeline reduces stratified programs
//! to a bottom-up sequence of semipositive ones.
//!
//! The front door is the [`Evaluator`] **session API**
//! ([`evaluator`](mod@crate::evaluator)): construct it once per program —
//! validation, stratification and dependency analysis happen at
//! construction — and call [`Evaluator::evaluate`] per structure; the
//! session owns its [`PlanCache`] and recycles the engine scratch
//! buffers, which is what makes the paper's per-candidate and
//! per-structure workloads cheap. The historical `eval_*` free functions
//! survive as deprecated one-shot wrappers. Under the session layer:
//!
//! * [`ast`] / [`parser`] — programs as data or text;
//! * [`eval`] — naive and semi-naive least-fixpoint evaluation (the
//!   reference semantics of §2.4). The semi-naive engine executes per-rule
//!   join plans over the arena-backed secondary-index layer of
//!   [`mdtw_structure`]: body literals probe argument-position hash
//!   indexes instead of scanning relations, the frontier is a set of
//!   per-predicate delta relations plugged into the same index layer, and
//!   the whole probe/insert path — delta sets, index keys, staging, IDB
//!   membership — is keyed by interned integer ids, so deriving a fact
//!   allocates nothing beyond amortized arena growth;
//! * [`plan`](mod@crate::plan) — the join planner: access-path selection
//!   (scan vs. index probe), greedy ordering by bound-variable count with
//!   cardinality/selectivity tie-breaks from relation statistics,
//!   delta-plan generation for the semi-naive rule split, early
//!   scheduling of negative literals;
//! * [`cache`](mod@crate::cache) — the cross-evaluation [`PlanCache`]:
//!   compiled rule plans memoized by program identity and structure
//!   cardinality shape, so workloads that re-evaluate the same program
//!   (enumeration solvers, per-candidate pipelines) skip planning;
//! * [`stratify`](mod@crate::stratify) — stratified negation: the
//!   predicate dependency graph (positive/negative edges), Tarjan SCC
//!   condensation, stratum assignment with a precise
//!   [`StratificationError`] when a negative edge closes a recursive
//!   cycle, and [`eval_stratified`] — bottom-up multi-stratum evaluation
//!   that materializes each stratum into the arena-backed relation layer
//!   so higher strata read it as EDB, reusing the indexed join loop and
//!   the plan cache unchanged;
//! * [`ground`](mod@crate::ground) — **quasi-guarded** datalog (Definition 4.3): guard
//!   analysis with declared functional dependencies, grounding in
//!   `O(|P|·|𝒜|)`, and the linear-time evaluation of Theorem 4.4;
//! * [`horn`] — the LTUR/Dowling–Gallier linear-time propositional Horn
//!   solver the grounding is handed to;
//! * [`analysis`](mod@crate::analysis) — the static-analysis and lint
//!   framework: spanned [`Diagnostic`]s with stable `MD0xx` codes
//!   (safety, stratifiability, dead rules, always-empty predicates,
//!   singleton variables, duplicate/subsumed rules, monadicity and
//!   recursion classification, quasi-guard), driving both
//!   [`Evaluator::analyze`] and the `mdtw-lint` binary of
//!   [`lint`](mod@crate::lint);
//! * [`span`](mod@crate::span) — byte-span + line/column source
//!   locations, recorded by the parser for every rule, head and literal;
//! * [`profile`](mod@crate::profile) — the observability layer: a
//!   zero-cost-when-off profiler threaded through every engine
//!   ([`EvalOptions::profile`] → [`ProfileDetail`]), collecting a
//!   structured [`EvalProfile`] (per-stratum timeline, per-rule
//!   breakdown, per-literal observed selectivities) returned on
//!   [`EvalResult`] *and* on the partial result of a resource-limit
//!   trip, plus [`Evaluator::explain`] — the compiled join plans
//!   rendered as human text or JSON;
//! * [`incremental`](mod@crate::incremental) — incremental view
//!   maintenance: [`Evaluator::materialize`] turns a session into a
//!   long-lived [`MaterializedView`] that absorbs batched base-relation
//!   [`Update`]s (inserts *and* retracts) by semi-naive delta
//!   re-derivation and stratum-by-stratum DRed instead of
//!   re-evaluation, governed by the same [`EvalLimits`] budgets with a
//!   sound full-recompute fallback;
//! * [`transform`](mod@crate::transform) — the semantic optimizer:
//!   uniform-containment rule minimization, boundedness detection with
//!   recursion elimination, and the magic-set demand transformation,
//!   wired into [`EvalOptions`] (`minimize`, `eliminate_bounded_recursion`,
//!   `magic_sets`) and reported by the semantic tier of the analysis
//!   pass (MD017 / MD023 / MD040-series).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod cache;
pub mod eval;
pub mod evaluator;
pub mod ground;
pub mod horn;
pub mod incremental;
pub mod limits;
pub mod lint;
pub mod parser;
pub mod plan;
pub mod profile;
pub mod span;
pub mod stratify;
pub mod transform;

pub use analysis::{
    analyze, AnalysisOptions, Diagnostic, LintCode, MagicSummary, ProgramReport, RecursionClass,
    SemanticReport, Severity,
};
pub use ast::{Atom, IdbId, Literal, PredRef, Program, Rule, Term, Var};
pub use cache::{global_plan_cache, PlanCache};
pub use eval::{EvalStats, IdbStore};
pub use evaluator::{Engine, EvalError, EvalOptions, EvalResult, Evaluator, StatsDetail};
pub use ground::{ground, FdCatalog, FuncDep, Grounding, QgError, QgStats};
pub use horn::{HornProgram, HornRule};
pub use incremental::{MaterializedView, Update};
pub use limits::{CancelToken, EvalLimits, LimitKind};
pub use parser::{parse_program, parse_program_lenient, ParseError, ParseErrorKind};
pub use plan::{
    plan_program, plan_program_with, plan_rule, plan_rule_with, Access, CardEstimator, JoinPlan,
    JoinStep, NoEstimates, RulePlans, StructureStats,
};
pub use profile::{
    eval_error_json, EvalProfile, Explanation, LiteralProfile, PlanExplanation, ProfileDetail,
    RuleExplanation, RuleProfile, StepExplanation, StratumExplanation, StratumProfile,
    UpdateProfile, UpdateStratumProfile,
};
pub use span::{RuleSpans, Span};
pub use stratify::{recursive_idb_scc_count, stratify, Stratification, StratificationError};
pub use transform::{
    bounded_sccs, bounded_sccs_with_limits, eliminate_bounded_recursion,
    eliminate_bounded_recursion_with_limits, magic_program, minimize, minimize_with_limits,
    optimize, optimize_with_limits, redundant_rules, redundant_rules_with_limits, BoundedScc,
    MagicOutcome, MinimizeReport, TransformSummary,
};

// The seven historical one-shot entry points, kept importable from the
// crate root so the legacy-oracle test suites (and downstream pins) keep
// compiling. Each is a thin deprecated wrapper over one Evaluator-shaped
// evaluation.
#[allow(deprecated)]
pub use cache::eval_seminaive_with_cache;
#[allow(deprecated)]
pub use eval::{eval_naive, eval_seminaive, eval_seminaive_scan};
#[allow(deprecated)]
pub use ground::eval_quasi_guarded;
#[allow(deprecated)]
pub use stratify::{eval_stratified, eval_stratified_with_cache};
