//! Source locations for parsed datalog programs.
//!
//! A [`Span`] is a half-open byte range into the source text a program was
//! parsed from, together with the 1-based line/column of its start. Spans
//! are carried per rule in a [`RuleSpans`] record (the whole rule, its
//! head atom, and each body literal) stored in a side table on
//! [`Program`](crate::ast::Program) — parallel to `Program::rules`, so
//! hand-built programs (which have no source) simply leave it empty.
//!
//! Spans feed the [`analysis`](crate::analysis) diagnostic framework and
//! the `mdtw-lint` driver, which renders them as rustc-style carets.

use std::fmt;

/// A half-open byte range `start..end` into the source text, with the
/// 1-based line and (character) column of `start`. [`Span::DUMMY`] (all
/// zeros) marks "no location" — hand-built programs and program-global
/// conditions carry it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: u32,
    /// Byte offset one past the last byte covered.
    pub end: u32,
    /// 1-based source line of `start` (0 = unknown).
    pub line: u32,
    /// 1-based character column of `start` within its line (0 = unknown).
    pub col: u32,
}

impl Span {
    /// The "no location" span.
    pub const DUMMY: Span = Span {
        start: 0,
        end: 0,
        line: 0,
        col: 0,
    };

    /// True if this span carries a real location.
    #[inline]
    pub fn is_known(self) -> bool {
        self.line != 0
    }

    /// The smallest span covering both `self` and `other`; a dummy operand
    /// yields the other span unchanged.
    pub fn to(self, other: Span) -> Span {
        match (self.is_known(), other.is_known()) {
            (false, _) => other,
            (_, false) => self,
            (true, true) => {
                let (first, last) = if self.start <= other.start {
                    (self, other)
                } else {
                    (other, self)
                };
                Span {
                    start: first.start,
                    end: first.end.max(last.end),
                    line: first.line,
                    col: first.col,
                }
            }
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            f.write_str("?:?")
        }
    }
}

/// Renders the rustc-style location block for `span`: the `--> path:line:col`
/// arrow line plus the gutter / source-line / caret lines. Returns only the
/// location block (starting with `\n  --> `); callers prefix their own
/// `severity[CODE]: message` header. Degrades gracefully: an unknown span
/// yields just `\n  --> path`, a missing source or out-of-range line yields
/// just the arrow line.
///
/// Line offsets are computed from raw byte positions of `\n`, so the caret
/// column stays correct on CRLF input (where `str::lines` would undercount
/// the stripped `\r` bytes).
pub(crate) fn caret_snippet(span: Span, source: Option<&str>, path: &str) -> String {
    if !span.is_known() {
        return format!("\n  --> {path}");
    }
    let mut out = format!("\n  --> {path}:{}:{}", span.line, span.col);
    let Some(source) = source else {
        return out;
    };
    let mut line_start = 0usize;
    for _ in 1..span.line {
        match source[line_start..].find('\n') {
            Some(p) => line_start += p + 1,
            None => return out,
        }
    }
    let rest = &source[line_start..];
    let line_end = rest.find('\n').unwrap_or(rest.len());
    let line_text = rest[..line_end]
        .strip_suffix('\r')
        .unwrap_or(&rest[..line_end]);
    let gutter = span.line.to_string();
    let pad = " ".repeat(gutter.len());
    // Caret run: from the span's column to its end, clamped to the first
    // line (multi-line spans underline to end of line).
    let span_end_on_line = (span.end as usize)
        .min(line_start + line_text.len())
        .max(span.start as usize + 1);
    let caret_len = source
        .get(span.start as usize..span_end_on_line)
        .map_or(1, |s| s.chars().count())
        .max(1);
    out.push_str(&format!(
        "\n {pad}|\n {gutter} | {line_text}\n {pad}| {}{}",
        " ".repeat(span.col.max(1) as usize - 1),
        "^".repeat(caret_len),
    ));
    out
}

/// The source locations of one rule: the whole statement, the head atom,
/// and each body literal (negation marker included), in body order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuleSpans {
    /// The whole rule statement (without the terminating `.`).
    pub rule: Span,
    /// The head atom.
    pub head: Span,
    /// One span per body literal, in [`Rule::body`](crate::ast::Rule::body)
    /// order.
    pub literals: Vec<Span>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_is_unknown_and_displays_placeholder() {
        assert!(!Span::DUMMY.is_known());
        assert_eq!(Span::DUMMY.to_string(), "?:?");
        let real = Span {
            start: 3,
            end: 7,
            line: 2,
            col: 4,
        };
        assert!(real.is_known());
        assert_eq!(real.to_string(), "2:4");
    }

    #[test]
    fn join_covers_both_and_ignores_dummy() {
        let a = Span {
            start: 2,
            end: 5,
            line: 1,
            col: 3,
        };
        let b = Span {
            start: 10,
            end: 14,
            line: 2,
            col: 1,
        };
        let j = a.to(b);
        assert_eq!((j.start, j.end, j.line, j.col), (2, 14, 1, 3));
        assert_eq!(b.to(a), j);
        assert_eq!(a.to(Span::DUMMY), a);
        assert_eq!(Span::DUMMY.to(b), b);
    }
}
