//! Join planning for the indexed evaluation engine.
//!
//! Per rule, the planner orders the positive body literals greedily by
//! bound-argument count and records, for every literal, which secondary
//! index ([`mdtw_structure::PosIndex`]) it probes: the key positions are
//! exactly the argument positions held by a constant or by a variable
//! bound at an earlier step. Negative literals are scheduled at the first
//! step after which all their variables are bound, so failing branches are
//! pruned as early as possible.
//!
//! Ties on bound-argument count are broken by cardinality: a
//! [`CardEstimator`] supplies relation sizes ([`Relation::len`]) and probe
//! selectivities (relation size over [`PosIndex::key_count`]), and among
//! equally bound literals the planner picks the one expected to enumerate
//! the fewest tuples. [`plan_program`] plans without statistics
//! ([`NoEstimates`] — ties fall back to body order);
//! [`plan_program_with`] takes real statistics, usually
//! [`StructureStats`] wrapping the structure under evaluation. In the
//! *base* plan (executed only in round 0, where every intensional
//! relation is still empty) intensional literals cost 0 by definition, so
//! recursive rules short-circuit on an empty scan instead of enumerating
//! their extensional atoms first.
//!
//! For semi-naive evaluation the planner additionally produces one *delta
//! plan* per positive intensional body literal: that literal is forced to
//! the front of the join order (the delta is the smallest relation in the
//! round) and the evaluator reads it from the per-predicate delta store.
//!
//! The stratified pipeline plans each stratum after rewriting
//! lower-stratum predicates to materialized extensional relations, so
//! those literals — including the negated ones — arrive here as ordinary
//! EDB atoms with real [`StructureStats`] cardinalities behind them.
//!
//! [`Relation::len`]: mdtw_structure::Relation::len
//! [`PosIndex::key_count`]: mdtw_structure::PosIndex::key_count

use crate::ast::{PredRef, Program, Rule, Term};
use mdtw_structure::Structure;
use std::cmp::Reverse;

/// How a positive body literal is matched at its step of the join order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// No argument position is bound when the literal runs: enumerate the
    /// whole relation.
    Scan,
    /// Probe the secondary index on `positions` (the argument positions
    /// bound by constants or by variables of earlier steps).
    Probe {
        /// Indexed argument positions, in key order.
        positions: Vec<usize>,
    },
}

/// One step of a rule's join order.
#[derive(Debug, Clone)]
pub struct JoinStep {
    /// Index of the positive literal in the rule body.
    pub literal: usize,
    /// Access path used to enumerate candidate tuples.
    pub access: Access,
    /// Negative body literals whose variables are all bound once this
    /// step's atom is matched; checked immediately after the match.
    pub negatives_after: Vec<usize>,
}

/// A compiled join plan for one rule.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// Steps over the positive body literals, in execution order.
    pub steps: Vec<JoinStep>,
    /// Negative body literals without variables, checked before any step.
    pub ground_negatives: Vec<usize>,
}

/// All plans of one rule.
#[derive(Debug, Clone)]
pub struct RulePlans {
    /// The unconstrained plan (round 0 of semi-naive evaluation).
    pub base: JoinPlan,
    /// One `(body literal index, plan)` pair per positive intensional body
    /// literal; the plan joins that literal first, reading it from the
    /// delta store.
    pub delta: Vec<(usize, JoinPlan)>,
}

/// Cardinality and selectivity estimates feeding the planner's
/// tie-breaks. `None` means "unknown"; unknown literals sort after every
/// literal with a known estimate and tie among themselves by body order.
pub trait CardEstimator {
    /// Estimated number of tuples of `pred`'s relation.
    fn relation_len(&self, pred: PredRef) -> Option<usize>;

    /// Estimated number of rows a probe of `pred` on the index over
    /// `positions` returns.
    fn probe_len(&self, pred: PredRef, positions: &[usize]) -> Option<usize>;
}

/// The statistics-free estimator: everything is unknown, so greedy ties
/// are broken by body order alone (the pre-cost-model behavior, and the
/// deterministic default of [`plan_program`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoEstimates;

impl CardEstimator for NoEstimates {
    fn relation_len(&self, _pred: PredRef) -> Option<usize> {
        None
    }
    fn probe_len(&self, _pred: PredRef, _positions: &[usize]) -> Option<usize> {
        None
    }
}

/// Real statistics from the structure under evaluation: extensional
/// cardinalities come from [`Relation::len`] and probe selectivities from
/// `len / distinct keys` at the probed positions
/// ([`Relation::distinct_key_count`]: the cached index's exact
/// [`PosIndex::key_count`] when evaluation already built it, otherwise a
/// one-shot count that leaves no index behind for access paths the
/// planner ends up rejecting). Intensional relations are unknown — their
/// size varies by round.
///
/// [`Relation::len`]: mdtw_structure::Relation::len
/// [`Relation::distinct_key_count`]: mdtw_structure::Relation::distinct_key_count
/// [`PosIndex::key_count`]: mdtw_structure::PosIndex::key_count
#[derive(Debug, Clone, Copy)]
pub struct StructureStats<'a> {
    structure: &'a Structure,
}

impl<'a> StructureStats<'a> {
    /// Wraps the structure the program will be evaluated over.
    pub fn new(structure: &'a Structure) -> Self {
        Self { structure }
    }
}

impl CardEstimator for StructureStats<'_> {
    fn relation_len(&self, pred: PredRef) -> Option<usize> {
        match pred {
            PredRef::Edb(p) => Some(self.structure.relation(p).len()),
            PredRef::Idb(_) => None,
        }
    }

    fn probe_len(&self, pred: PredRef, positions: &[usize]) -> Option<usize> {
        match pred {
            PredRef::Edb(p) => {
                let rel = self.structure.relation(p);
                if rel.is_empty() {
                    return Some(0);
                }
                let keys = rel.distinct_key_count(positions).max(1);
                Some(rel.len().div_ceil(keys))
            }
            PredRef::Idb(_) => None,
        }
    }
}

/// Plans every rule of `program` without cardinality statistics.
pub fn plan_program(program: &Program) -> Vec<RulePlans> {
    plan_program_with(program, &NoEstimates)
}

/// Plans every rule of `program`, breaking greedy ties with `est`.
pub fn plan_program_with(program: &Program, est: &dyn CardEstimator) -> Vec<RulePlans> {
    program
        .rules
        .iter()
        .map(|r| plan_rule_with(r, est))
        .collect()
}

/// Plans a single rule without cardinality statistics.
pub fn plan_rule(rule: &Rule) -> RulePlans {
    plan_rule_with(rule, &NoEstimates)
}

/// Plans a single rule: the base plan plus one delta plan per positive
/// intensional body literal.
pub fn plan_rule_with(rule: &Rule, est: &dyn CardEstimator) -> RulePlans {
    let idb_positions: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| l.positive && matches!(l.atom.pred, PredRef::Idb(_)))
        .map(|(i, _)| i)
        .collect();
    RulePlans {
        base: plan_with_first(rule, None, est),
        delta: idb_positions
            .into_iter()
            .map(|pos| (pos, plan_with_first(rule, Some(pos), est)))
            .collect(),
    }
}

/// Plans the incremental seed passes of every rule: one
/// `(body literal index, plan)` pair per positive *extensional* body
/// literal, with that literal forced to the front of the join order —
/// the EDB twin of [`RulePlans::delta`], used by incremental maintenance
/// to join a batch's inserted base tuples first (the insertion delta is
/// the smallest relation of the pass).
pub(crate) fn plan_edb_deltas(
    program: &Program,
    est: &dyn CardEstimator,
) -> Vec<Vec<(usize, JoinPlan)>> {
    program
        .rules
        .iter()
        .map(|rule| {
            rule.body
                .iter()
                .enumerate()
                .filter(|(_, l)| l.positive && matches!(l.atom.pred, PredRef::Edb(_)))
                .map(|(i, _)| (i, plan_with_first(rule, Some(i), est)))
                .collect()
        })
        .collect()
}

/// The estimated number of tuples enumerating literal `li` would yield
/// with the positions in `bp` bound. In the base plan (`first` is
/// `None`), intensional relations are empty by definition of round 0, so
/// their cost is 0 regardless of the estimator; everywhere else unknown
/// estimates sort last (`usize::MAX`).
fn candidate_cost(
    rule: &Rule,
    li: usize,
    bp: &[usize],
    base_plan: bool,
    est: &dyn CardEstimator,
) -> usize {
    let pred = rule.body[li].atom.pred;
    if base_plan && matches!(pred, PredRef::Idb(_)) {
        return 0;
    }
    let cost = if bp.is_empty() {
        est.relation_len(pred)
    } else {
        est.probe_len(pred, bp)
    };
    cost.unwrap_or(usize::MAX)
}

/// Greedy planner. `first`, if set, forces that body literal to the front
/// (used for delta literals).
fn plan_with_first(rule: &Rule, first: Option<usize>, est: &dyn CardEstimator) -> JoinPlan {
    let nvars = rule.var_count as usize;
    let mut bound = vec![false; nvars];

    let mut remaining: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(i, l)| l.positive && Some(*i) != first)
        .map(|(i, _)| i)
        .collect();
    let negatives: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.positive)
        .map(|(i, _)| i)
        .collect();

    let mut neg_emitted = vec![false; rule.body.len()];
    let mut ground_negatives = Vec::new();
    for &ni in &negatives {
        if rule.body[ni].atom.vars().next().is_none() {
            ground_negatives.push(ni);
            neg_emitted[ni] = true;
        }
    }

    let mut steps = Vec::new();
    let mut push_step = |li: usize, bound: &mut Vec<bool>, neg_emitted: &mut Vec<bool>| {
        let access = access_for(rule, li, bound);
        for v in rule.body[li].atom.vars() {
            bound[v.index()] = true;
        }
        let negatives_after: Vec<usize> = negatives
            .iter()
            .copied()
            .filter(|&ni| !neg_emitted[ni] && rule.body[ni].atom.vars().all(|v| bound[v.index()]))
            .collect();
        for &ni in &negatives_after {
            neg_emitted[ni] = true;
        }
        steps.push(JoinStep {
            literal: li,
            access,
            negatives_after,
        });
    };

    let base_plan = first.is_none();
    if let Some(li) = first {
        push_step(li, &mut bound, &mut neg_emitted);
    }
    while !remaining.is_empty() {
        // Greedy: the literal with the most bound argument positions
        // next; ties broken by estimated enumeration cost, then by body
        // order (stable ordering for reproducibility).
        let (slot, _) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(slot, &li)| {
                let bp = bound_positions(rule, li, &bound);
                let cost = candidate_cost(rule, li, &bp, base_plan, est);
                (Reverse(bp.len()), cost, slot)
            })
            .expect("remaining non-empty");
        let li = remaining.remove(slot);
        push_step(li, &mut bound, &mut neg_emitted);
    }

    // Every negative literal must have been scheduled (safety: all its
    // variables occur in positive literals, which are all bound by now).
    // Failing loudly here keeps hand-built unsafe programs from being
    // silently evaluated as if the unschedulable negation were absent.
    assert!(
        negatives.iter().all(|&ni| neg_emitted[ni]),
        "unsafe rule: a negative literal's variable occurs in no positive body literal"
    );

    JoinPlan {
        steps,
        ground_negatives,
    }
}

/// The argument positions of body literal `li` that are bound under
/// `bound`: constants, plus variables already bound by earlier steps.
fn bound_positions(rule: &Rule, li: usize, bound: &[bool]) -> Vec<usize> {
    rule.body[li]
        .atom
        .terms
        .iter()
        .enumerate()
        .filter(|(_, t)| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound[v.index()],
        })
        .map(|(p, _)| p)
        .collect()
}

fn access_for(rule: &Rule, li: usize, bound: &[bool]) -> Access {
    let positions = bound_positions(rule, li, bound);
    if positions.is_empty() {
        Access::Scan
    } else {
        Access::Probe { positions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use mdtw_structure::{Domain, ElemId, Signature, Structure};
    use std::sync::Arc;

    fn edge_structure() -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(4);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        s.insert(e, &[ElemId(0), ElemId(1)]);
        s
    }

    #[test]
    fn linear_rule_probes_on_join_variable() {
        let s = edge_structure();
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).",
            &s,
        )
        .unwrap();
        let plans = plan_program(&p);
        // Recursive rule, delta plan for the `path` literal (body index 0):
        // `path` first (scan of the delta), then `e` probed on position 0
        // (its first argument Y is bound by the delta literal).
        let (pos, plan) = &plans[1].delta[0];
        assert_eq!(*pos, 0);
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(plan.steps[0].literal, 0);
        assert_eq!(plan.steps[0].access, Access::Scan);
        assert_eq!(plan.steps[1].literal, 1);
        assert_eq!(plan.steps[1].access, Access::Probe { positions: vec![0] });
    }

    #[test]
    fn greedy_order_prefers_most_bound() {
        let s = edge_structure();
        // Base plan (= round 0, where intensional relations are empty by
        // definition): sg(X,Y) costs 0 and goes first, its empty scan
        // short-circuiting the round-0 pass; then e(X,Y) (two bound
        // positions) before the unbound literals.
        let p = parse_program(
            "sg(X, Y) :- e(X, Y).\nq(X) :- e(X, Y), e(Z, W), sg(X, Y), sg(Z, W).",
            &s,
        )
        .unwrap();
        let rule = p.rules.last().unwrap();
        let plans = plan_rule(rule);
        let order: Vec<usize> = plans.base.steps.iter().map(|st| st.literal).collect();
        assert_eq!(order, vec![2, 0, 3, 1]);
        assert_eq!(
            plans.base.steps[1].access,
            Access::Probe {
                positions: vec![0, 1]
            }
        );
    }

    #[test]
    fn cardinality_estimates_break_ties() {
        use mdtw_structure::{Domain, Signature};
        // big/2 has 9 tuples, small/2 has 1; at equal bound count the
        // statistics-aware planner starts from the smaller relation,
        // while the statistics-free planner keeps body order.
        let sig = Arc::new(Signature::from_pairs([("big", 2), ("small", 2)]));
        let dom = Domain::anonymous(10);
        let mut s = Structure::new(sig, dom);
        let big = s.signature().lookup("big").unwrap();
        let small = s.signature().lookup("small").unwrap();
        for i in 0..9u32 {
            s.insert(big, &[ElemId(i), ElemId(i + 1)]);
        }
        s.insert(small, &[ElemId(0), ElemId(1)]);
        let p = parse_program("q(X) :- big(X, Y), small(Y, Z).", &s).unwrap();

        let blind = plan_rule(&p.rules[0]);
        let blind_order: Vec<usize> = blind.base.steps.iter().map(|st| st.literal).collect();
        assert_eq!(blind_order, vec![0, 1]);

        let plans = plan_rule_with(&p.rules[0], &StructureStats::new(&s));
        let order: Vec<usize> = plans.base.steps.iter().map(|st| st.literal).collect();
        assert_eq!(order, vec![1, 0], "smaller relation joins first");
        assert_eq!(
            plans.base.steps[1].access,
            Access::Probe { positions: vec![1] }
        );
    }

    #[test]
    fn probe_selectivity_prefers_more_distinct_keys() {
        use mdtw_structure::{Domain, Signature};
        // Both relations have 8 tuples; `sel`'s first column has 8
        // distinct keys (probe yields ~1 row), `dup`'s only 1 (probe
        // yields all 8). With X bound, the planner probes `sel` first.
        let sig = Arc::new(Signature::from_pairs([("dup", 2), ("sel", 2), ("u", 1)]));
        let dom = Domain::anonymous(10);
        let mut s = Structure::new(sig, dom);
        let dup = s.signature().lookup("dup").unwrap();
        let sel = s.signature().lookup("sel").unwrap();
        let u = s.signature().lookup("u").unwrap();
        for i in 0..8u32 {
            s.insert(dup, &[ElemId(0), ElemId(i)]);
            s.insert(sel, &[ElemId(i), ElemId(i)]);
        }
        s.insert(u, &[ElemId(0)]);
        let p = parse_program("q(X) :- u(X), dup(X, Y), sel(X, Z).", &s).unwrap();
        let plans = plan_rule_with(&p.rules[0], &StructureStats::new(&s));
        let order: Vec<usize> = plans.base.steps.iter().map(|st| st.literal).collect();
        assert_eq!(order, vec![0, 2, 1], "selective probe scheduled first");
    }

    #[test]
    fn constants_are_bound_from_the_start() {
        let s = edge_structure();
        let p = parse_program("from_start(Y) :- e(x0, Y).", &s).unwrap();
        let plans = plan_rule(&p.rules[0]);
        assert_eq!(
            plans.base.steps[0].access,
            Access::Probe { positions: vec![0] }
        );
    }

    #[test]
    fn negatives_scheduled_at_earliest_bound_step() {
        let s = edge_structure();
        let p = parse_program("q(X) :- e(X, Y), e(Y, Z), !e(X, Y), !e(X, Z).", &s).unwrap();
        let plans = plan_rule(&p.rules[0]);
        // !e(X,Y) is fully bound after step 0; !e(X,Z) only after step 1.
        assert_eq!(plans.base.steps[0].negatives_after, vec![2]);
        assert_eq!(plans.base.steps[1].negatives_after, vec![3]);
        assert!(plans.base.ground_negatives.is_empty());
    }

    #[test]
    fn fact_rule_has_empty_plan() {
        let s = edge_structure();
        let p = parse_program("mark(x1).", &s).unwrap();
        let plans = plan_rule(&p.rules[0]);
        assert!(plans.base.steps.is_empty());
        assert!(plans.delta.is_empty());
    }

    #[test]
    #[should_panic(expected = "unsafe rule")]
    fn unsafe_negative_literal_is_rejected_loudly() {
        use crate::ast::{Atom, Literal, PredRef, Program, Rule, Term, Var};
        let s = edge_structure();
        let e = s.signature().lookup("e").unwrap();
        let mut p = Program::default();
        let q = p.intern_idb("q", 1).unwrap();
        // q(X) :- e(X, Y), !e(Z, Z).  — Z occurs in no positive literal;
        // the parser rejects this, but hand-built programs must not have
        // the negation silently dropped.
        let rule = Rule {
            head: Atom {
                pred: PredRef::Idb(q),
                terms: vec![Term::Var(Var(0))],
            },
            body: vec![
                Literal {
                    atom: Atom {
                        pred: PredRef::Edb(e),
                        terms: vec![Term::Var(Var(0)), Term::Var(Var(1))],
                    },
                    positive: true,
                },
                Literal {
                    atom: Atom {
                        pred: PredRef::Edb(e),
                        terms: vec![Term::Var(Var(2)), Term::Var(Var(2))],
                    },
                    positive: false,
                },
            ],
            var_count: 3,
            var_names: vec!["X".into(), "Y".into(), "Z".into()],
        };
        assert!(!rule.is_safe());
        let _ = plan_rule(&rule);
    }

    #[test]
    fn one_delta_plan_per_idb_literal() {
        let s = edge_structure();
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).",
            &s,
        )
        .unwrap();
        let plans = plan_rule(&p.rules[1]);
        let positions: Vec<usize> = plans.delta.iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, vec![0, 1]);
        // Second delta plan: path(Y,Z) from the delta first, then path(X,Y)
        // probed on position 1 (Y bound).
        let (_, dp) = &plans.delta[1];
        assert_eq!(dp.steps[0].literal, 1);
        assert_eq!(dp.steps[1].literal, 0);
        assert_eq!(dp.steps[1].access, Access::Probe { positions: vec![1] });
    }
}
