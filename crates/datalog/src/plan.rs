//! Join planning for the indexed evaluation engine.
//!
//! Per rule, the planner orders the positive body literals greedily by
//! bound-argument count and records, for every literal, which secondary
//! index ([`mdtw_structure::PosIndex`]) it probes: the key positions are
//! exactly the argument positions held by a constant or by a variable
//! bound at an earlier step. Negative literals are scheduled at the first
//! step after which all their variables are bound, so failing branches are
//! pruned as early as possible.
//!
//! For semi-naive evaluation the planner additionally produces one *delta
//! plan* per positive intensional body literal: that literal is forced to
//! the front of the join order (the delta is the smallest relation in the
//! round) and the evaluator reads it from the per-predicate delta store.

use crate::ast::{PredRef, Program, Rule, Term};

/// How a positive body literal is matched at its step of the join order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// No argument position is bound when the literal runs: enumerate the
    /// whole relation.
    Scan,
    /// Probe the secondary index on `positions` (the argument positions
    /// bound by constants or by variables of earlier steps).
    Probe {
        /// Indexed argument positions, in key order.
        positions: Vec<usize>,
    },
}

/// One step of a rule's join order.
#[derive(Debug, Clone)]
pub struct JoinStep {
    /// Index of the positive literal in the rule body.
    pub literal: usize,
    /// Access path used to enumerate candidate tuples.
    pub access: Access,
    /// Negative body literals whose variables are all bound once this
    /// step's atom is matched; checked immediately after the match.
    pub negatives_after: Vec<usize>,
}

/// A compiled join plan for one rule.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// Steps over the positive body literals, in execution order.
    pub steps: Vec<JoinStep>,
    /// Negative body literals without variables, checked before any step.
    pub ground_negatives: Vec<usize>,
}

/// All plans of one rule.
#[derive(Debug, Clone)]
pub struct RulePlans {
    /// The unconstrained plan (round 0 of semi-naive evaluation).
    pub base: JoinPlan,
    /// One `(body literal index, plan)` pair per positive intensional body
    /// literal; the plan joins that literal first, reading it from the
    /// delta store.
    pub delta: Vec<(usize, JoinPlan)>,
}

/// Plans every rule of `program`.
pub fn plan_program(program: &Program) -> Vec<RulePlans> {
    program.rules.iter().map(plan_rule).collect()
}

/// Plans a single rule: the base plan plus one delta plan per positive
/// intensional body literal.
pub fn plan_rule(rule: &Rule) -> RulePlans {
    let idb_positions: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| l.positive && matches!(l.atom.pred, PredRef::Idb(_)))
        .map(|(i, _)| i)
        .collect();
    RulePlans {
        base: plan_with_first(rule, None),
        delta: idb_positions
            .into_iter()
            .map(|pos| (pos, plan_with_first(rule, Some(pos))))
            .collect(),
    }
}

/// Greedy planner. `first`, if set, forces that body literal to the front
/// (used for delta literals).
fn plan_with_first(rule: &Rule, first: Option<usize>) -> JoinPlan {
    let nvars = rule.var_count as usize;
    let mut bound = vec![false; nvars];

    let mut remaining: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(i, l)| l.positive && Some(*i) != first)
        .map(|(i, _)| i)
        .collect();
    let negatives: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.positive)
        .map(|(i, _)| i)
        .collect();

    let mut neg_emitted = vec![false; rule.body.len()];
    let mut ground_negatives = Vec::new();
    for &ni in &negatives {
        if rule.body[ni].atom.vars().next().is_none() {
            ground_negatives.push(ni);
            neg_emitted[ni] = true;
        }
    }

    let mut steps = Vec::new();
    let mut push_step = |li: usize, bound: &mut Vec<bool>, neg_emitted: &mut Vec<bool>| {
        let access = access_for(rule, li, bound);
        for v in rule.body[li].atom.vars() {
            bound[v.index()] = true;
        }
        let negatives_after: Vec<usize> = negatives
            .iter()
            .copied()
            .filter(|&ni| !neg_emitted[ni] && rule.body[ni].atom.vars().all(|v| bound[v.index()]))
            .collect();
        for &ni in &negatives_after {
            neg_emitted[ni] = true;
        }
        steps.push(JoinStep {
            literal: li,
            access,
            negatives_after,
        });
    };

    if let Some(li) = first {
        push_step(li, &mut bound, &mut neg_emitted);
    }
    while !remaining.is_empty() {
        // Greedy: the literal with the most bound argument positions next;
        // ties broken by body order (stable ordering for reproducibility).
        let (slot, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|&(slot, &li)| (bound_positions(rule, li, &bound).len(), usize::MAX - slot))
            .expect("remaining non-empty");
        let li = remaining.remove(slot);
        push_step(li, &mut bound, &mut neg_emitted);
    }

    // Every negative literal must have been scheduled (safety: all its
    // variables occur in positive literals, which are all bound by now).
    // Failing loudly here keeps hand-built unsafe programs from being
    // silently evaluated as if the unschedulable negation were absent.
    assert!(
        negatives.iter().all(|&ni| neg_emitted[ni]),
        "unsafe rule: a negative literal's variable occurs in no positive body literal"
    );

    JoinPlan {
        steps,
        ground_negatives,
    }
}

/// The argument positions of body literal `li` that are bound under
/// `bound`: constants, plus variables already bound by earlier steps.
fn bound_positions(rule: &Rule, li: usize, bound: &[bool]) -> Vec<usize> {
    rule.body[li]
        .atom
        .terms
        .iter()
        .enumerate()
        .filter(|(_, t)| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound[v.index()],
        })
        .map(|(p, _)| p)
        .collect()
}

fn access_for(rule: &Rule, li: usize, bound: &[bool]) -> Access {
    let positions = bound_positions(rule, li, bound);
    if positions.is_empty() {
        Access::Scan
    } else {
        Access::Probe { positions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use mdtw_structure::{Domain, ElemId, Signature, Structure};
    use std::sync::Arc;

    fn edge_structure() -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(4);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        s.insert(e, &[ElemId(0), ElemId(1)]);
        s
    }

    #[test]
    fn linear_rule_probes_on_join_variable() {
        let s = edge_structure();
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).",
            &s,
        )
        .unwrap();
        let plans = plan_program(&p);
        // Recursive rule, delta plan for the `path` literal (body index 0):
        // `path` first (scan of the delta), then `e` probed on position 0
        // (its first argument Y is bound by the delta literal).
        let (pos, plan) = &plans[1].delta[0];
        assert_eq!(*pos, 0);
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(plan.steps[0].literal, 0);
        assert_eq!(plan.steps[0].access, Access::Scan);
        assert_eq!(plan.steps[1].literal, 1);
        assert_eq!(plan.steps[1].access, Access::Probe { positions: vec![0] });
    }

    #[test]
    fn greedy_order_prefers_most_bound() {
        let s = edge_structure();
        // Base plan: e(X,Y) binds X,Y; then sg (two bound) before e(Z,W)
        // (zero bound) even though sg comes later in the body.
        let p = parse_program(
            "sg(X, Y) :- e(X, Y).\nq(X) :- e(X, Y), e(Z, W), sg(X, Y), sg(Z, W).",
            &s,
        )
        .unwrap();
        let rule = p.rules.last().unwrap();
        let plans = plan_rule(rule);
        let order: Vec<usize> = plans.base.steps.iter().map(|st| st.literal).collect();
        assert_eq!(order, vec![0, 2, 1, 3]);
        assert_eq!(
            plans.base.steps[1].access,
            Access::Probe {
                positions: vec![0, 1]
            }
        );
    }

    #[test]
    fn constants_are_bound_from_the_start() {
        let s = edge_structure();
        let p = parse_program("from_start(Y) :- e(x0, Y).", &s).unwrap();
        let plans = plan_rule(&p.rules[0]);
        assert_eq!(
            plans.base.steps[0].access,
            Access::Probe { positions: vec![0] }
        );
    }

    #[test]
    fn negatives_scheduled_at_earliest_bound_step() {
        let s = edge_structure();
        let p = parse_program("q(X) :- e(X, Y), e(Y, Z), !e(X, Y), !e(X, Z).", &s).unwrap();
        let plans = plan_rule(&p.rules[0]);
        // !e(X,Y) is fully bound after step 0; !e(X,Z) only after step 1.
        assert_eq!(plans.base.steps[0].negatives_after, vec![2]);
        assert_eq!(plans.base.steps[1].negatives_after, vec![3]);
        assert!(plans.base.ground_negatives.is_empty());
    }

    #[test]
    fn fact_rule_has_empty_plan() {
        let s = edge_structure();
        let p = parse_program("mark(x1).", &s).unwrap();
        let plans = plan_rule(&p.rules[0]);
        assert!(plans.base.steps.is_empty());
        assert!(plans.delta.is_empty());
    }

    #[test]
    #[should_panic(expected = "unsafe rule")]
    fn unsafe_negative_literal_is_rejected_loudly() {
        use crate::ast::{Atom, Literal, PredRef, Program, Rule, Term, Var};
        let s = edge_structure();
        let e = s.signature().lookup("e").unwrap();
        let mut p = Program::default();
        let q = p.intern_idb("q", 1).unwrap();
        // q(X) :- e(X, Y), !e(Z, Z).  — Z occurs in no positive literal;
        // the parser rejects this, but hand-built programs must not have
        // the negation silently dropped.
        let rule = Rule {
            head: Atom {
                pred: PredRef::Idb(q),
                terms: vec![Term::Var(Var(0))],
            },
            body: vec![
                Literal {
                    atom: Atom {
                        pred: PredRef::Edb(e),
                        terms: vec![Term::Var(Var(0)), Term::Var(Var(1))],
                    },
                    positive: true,
                },
                Literal {
                    atom: Atom {
                        pred: PredRef::Edb(e),
                        terms: vec![Term::Var(Var(2)), Term::Var(Var(2))],
                    },
                    positive: false,
                },
            ],
            var_count: 3,
            var_names: vec!["X".into(), "Y".into(), "Z".into()],
        };
        assert!(!rule.is_safe());
        let _ = plan_rule(&rule);
    }

    #[test]
    fn one_delta_plan_per_idb_literal() {
        let s = edge_structure();
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).",
            &s,
        )
        .unwrap();
        let plans = plan_rule(&p.rules[1]);
        let positions: Vec<usize> = plans.delta.iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, vec![0, 1]);
        // Second delta plan: path(Y,Z) from the delta first, then path(X,Y)
        // probed on position 1 (Y bound).
        let (_, dp) = &plans.delta[1];
        assert_eq!(dp.steps[0].literal, 1);
        assert_eq!(dp.steps[1].literal, 0);
        assert_eq!(dp.steps[1].access, Access::Probe { positions: vec![1] });
    }
}
