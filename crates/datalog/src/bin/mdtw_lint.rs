//! `mdtw-lint` — lint `.dl` datalog programs.
//!
//! ```text
//! usage: mdtw-lint [--json] FILE.dl...
//! ```
//!
//! Parses each file leniently against a synthetic structure (extensional
//! predicates and output predicates come from `%! edb name/arity` and
//! `%! output name` pragmas, or are inferred — see the `lint` module of
//! `mdtw-datalog`), runs the full static-analysis battery, and reports
//! the `MD0xx` diagnostics with rustc-style carets (or as JSON with
//! `--json`).
//!
//! Exit status: 0 when no file has error-level findings (warnings and
//! notes are allowed), 1 when any file has errors or fails to parse,
//! 2 on usage or I/O problems.

use mdtw_datalog::analysis::Severity;
use mdtw_datalog::lint::{diagnostic_to_json, json::Json, lint_source, render_parse_error};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json_mode = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json_mode = true,
            "-h" | "--help" => {
                println!("usage: mdtw-lint [--json] FILE.dl...");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("mdtw-lint: unknown flag `{arg}`");
                eprintln!("usage: mdtw-lint [--json] FILE.dl...");
                return ExitCode::from(2);
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: mdtw-lint [--json] FILE.dl...");
        return ExitCode::from(2);
    }

    let mut any_errors = false;
    let mut json_files: Vec<Json> = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mdtw-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let outcome = match lint_source(&source) {
            Ok(o) => o,
            Err(pragma) => {
                eprintln!("mdtw-lint: {path}: invalid pragma: {pragma}");
                return ExitCode::from(2);
            }
        };
        any_errors |= outcome.has_errors();
        if json_mode {
            json_files.push(file_json(path, &outcome));
        } else {
            render_human(path, &source, &outcome);
        }
    }
    if json_mode {
        println!("{}", Json::Arr(json_files).render());
    }
    if any_errors {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn render_human(path: &str, source: &str, outcome: &mdtw_datalog::lint::LintOutcome) {
    if let Some(err) = &outcome.parse_error {
        println!("{}\n", render_parse_error(err, source, path));
        println!("{path}: 1 error (parse failed before analysis)");
        return;
    }
    let report = outcome.report.as_ref().expect("no parse error => report");
    for d in &report.diagnostics {
        println!("{}\n", d.render(Some(source), path));
    }
    let notes = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    println!(
        "{path}: {} errors, {} warnings, {} notes ({}, {} recursion)",
        report.error_count(),
        report.warning_count(),
        notes,
        if report.monadic {
            "monadic"
        } else {
            "non-monadic"
        },
        report.recursion,
    );
}

fn file_json(path: &str, outcome: &mdtw_datalog::lint::LintOutcome) -> Json {
    let mut fields: Vec<(String, Json)> = vec![("file".into(), Json::Str(path.into()))];
    if let Some(err) = &outcome.parse_error {
        fields.push((
            "parse_error".into(),
            Json::Obj(vec![
                ("message".into(), Json::Str(err.message.clone())),
                ("line".into(), Json::Num(f64::from(err.span.line))),
                ("col".into(), Json::Num(f64::from(err.span.col))),
            ]),
        ));
        fields.push(("diagnostics".into(), Json::Arr(Vec::new())));
        return Json::Obj(fields);
    }
    let report = outcome.report.as_ref().expect("no parse error => report");
    fields.push((
        "diagnostics".into(),
        Json::Arr(report.diagnostics.iter().map(diagnostic_to_json).collect()),
    ));
    fields.push((
        "summary".into(),
        Json::Obj(vec![
            ("errors".into(), Json::Num(report.error_count() as f64)),
            ("warnings".into(), Json::Num(report.warning_count() as f64)),
            ("monadic".into(), Json::Bool(report.monadic)),
            ("recursion".into(), Json::Str(report.recursion.to_string())),
            (
                "strata".into(),
                report.strata.map_or(Json::Null, |n| Json::Num(n as f64)),
            ),
        ]),
    ));
    Json::Obj(fields)
}
