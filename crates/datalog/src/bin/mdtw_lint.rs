//! `mdtw-lint` — lint `.dl` datalog programs.
//!
//! ```text
//! usage: mdtw-lint [--json] [--deny-warnings] [--optimize]
//!                  [--fuel N] [--timeout-ms N] FILE.dl...
//! ```
//!
//! Parses each file leniently against a synthetic structure (extensional
//! predicates and output predicates come from `%! edb name/arity` and
//! `%! output name` pragmas, or are inferred — see the `lint` module of
//! `mdtw-datalog`), runs the full static-analysis battery — including the
//! semantic tier (containment-based redundancy, provable boundedness,
//! magic-set applicability) — and reports the `MD0xx` diagnostics with
//! rustc-style carets (or as JSON with `--json`).
//!
//! `--optimize` adds a dry-run of the semantic optimizer pipeline
//! (minimize → eliminate bounded recursion → magic sets) and prints the
//! rewritten program; with `--json` it lands in an `optimize` field.
//!
//! `--fuel N` and `--timeout-ms N` budget the semantic tier's containment
//! probes (per file — each file gets a fresh meter). Without them a
//! built-in fuel ceiling applies, so linting terminates even on
//! adversarial programs; a tripped budget degrades the affected semantic
//! findings to "not proven" and never changes the exit status by itself.
//!
//! Exit status — the contract scripts can rely on:
//! * `0` — every file is clean (warnings allowed unless `--deny-warnings`);
//! * `1` — some file has error-level findings, fails to parse, or (with
//!   `--deny-warnings`) has warnings;
//! * `2` — usage problems, unreadable files, or malformed `%!` pragmas.

use mdtw_datalog::analysis::Severity;
use mdtw_datalog::lint::{
    file_json, json::Json, lint_source_with_limits, optimize_source_with_limits,
    render_parse_error, render_pragma_error, LintOutcome, OptimizeOutcome,
};
use mdtw_datalog::EvalLimits;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: mdtw-lint [--json] [--deny-warnings] [--optimize] \
                     [--fuel N] [--timeout-ms N] FILE.dl...";

fn print_help() {
    println!("{USAGE}");
    println!();
    println!("  --json            machine-readable output (one object per file)");
    println!("  --deny-warnings   treat warning-level findings as errors (exit 1)");
    println!("  --optimize        dry-run the semantic optimizer and print the result");
    println!("  --fuel N          budget the semantic probes to N units of work per file");
    println!("  --timeout-ms N    deadline for the semantic probes, per file");
    println!();
    println!("exit status:");
    println!("  0  every file is clean (warnings allowed unless --deny-warnings)");
    println!("  1  error-level findings, a parse failure, or warnings with --deny-warnings");
    println!("  2  usage problems, unreadable files, or malformed `%!` pragmas");
}

fn main() -> ExitCode {
    let mut json_mode = false;
    let mut deny_warnings = false;
    let mut optimize = false;
    let mut fuel: Option<u64> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_mode = true,
            "--deny-warnings" => deny_warnings = true,
            "--optimize" => optimize = true,
            "--fuel" | "--timeout-ms" => {
                let Some(value) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("mdtw-lint: `{arg}` needs a nonnegative integer argument");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                };
                if arg == "--fuel" {
                    fuel = Some(value);
                } else {
                    timeout_ms = Some(value);
                }
            }
            "-h" | "--help" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("mdtw-lint: unknown flag `{arg}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    // Fresh per file: tripping on one file must not starve the next.
    let file_limits = || -> Option<EvalLimits> {
        if fuel.is_none() && timeout_ms.is_none() {
            return None;
        }
        let mut limits = EvalLimits::new();
        if let Some(f) = fuel {
            limits = limits.fuel(f);
        }
        if let Some(ms) = timeout_ms {
            limits = limits.deadline(Duration::from_millis(ms));
        }
        Some(limits)
    };

    let mut failed = false;
    let mut json_files: Vec<Json> = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mdtw-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let limits = file_limits();
        let outcome = match lint_source_with_limits(&source, limits.as_ref()) {
            Ok(o) => o,
            Err(pragma) => {
                eprintln!("{}", render_pragma_error(&pragma, &source, path));
                return ExitCode::from(2);
            }
        };
        failed |= outcome.has_errors();
        if deny_warnings {
            failed |= outcome
                .report
                .as_ref()
                .is_some_and(|r| r.warning_count() > 0);
        }
        // Pragmas already validated above, so optimize_source cannot fail.
        // A fresh meter keeps the dry-run's budget independent of lint's.
        let optimized = optimize.then(|| {
            optimize_source_with_limits(&source, file_limits().as_ref())
                .expect("pragmas validated by lint_source")
        });
        if json_mode {
            json_files.push(file_json(path, &outcome, optimized.as_ref()));
        } else {
            render_human(path, &source, &outcome);
            if let Some(opt) = &optimized {
                render_optimized(path, opt);
            }
        }
    }
    if json_mode {
        println!("{}", Json::Arr(json_files).render());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn render_human(path: &str, source: &str, outcome: &LintOutcome) {
    if let Some(err) = &outcome.parse_error {
        println!("{}\n", render_parse_error(err, source, path));
        println!("{path}: 1 error (parse failed before analysis)");
        return;
    }
    let report = outcome.report.as_ref().expect("no parse error => report");
    for d in &report.diagnostics {
        println!("{}\n", d.render(Some(source), path));
    }
    let notes = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    println!(
        "{path}: {} errors, {} warnings, {} notes ({}, {} recursion)",
        report.error_count(),
        report.warning_count(),
        notes,
        if report.monadic {
            "monadic"
        } else {
            "non-monadic"
        },
        report.recursion,
    );
}

fn render_optimized(path: &str, outcome: &OptimizeOutcome) {
    match outcome {
        OptimizeOutcome::Skipped(reason) => {
            println!("\n{path}: optimizer skipped: {reason}");
        }
        OptimizeOutcome::Optimized(dump) => {
            let s = &dump.summary;
            println!(
                "\n{path}: optimized {} -> {} rules \
                 ({} removed, {} literals condensed, {} bounded SCCs, magic: {})",
                dump.rules_before,
                dump.rules.len(),
                s.removed_rules,
                s.condensed_literals,
                s.bounded_sccs,
                if s.magic_applied {
                    format!("{} demand rules", s.magic_rules)
                } else {
                    "not applied".to_owned()
                },
            );
            if s.budget_tripped {
                println!(
                    "  (budget tripped: some containment probes ran out of fuel or time, \
                     the affected transforms were skipped)"
                );
            }
            for rule in &dump.rules {
                println!("  {rule}");
            }
        }
    }
}
