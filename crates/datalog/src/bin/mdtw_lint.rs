//! `mdtw-lint` — lint `.dl` datalog programs.
//!
//! ```text
//! usage: mdtw-lint [--json] [--deny-warnings] [--optimize]
//!                  [--fuel N] [--timeout-ms N] [--version] FILE.dl...
//! ```
//!
//! Every machine-readable envelope (`--json` per-file objects and the
//! `--profile` output file entries) carries a `schema_version` field
//! ([`JSON_SCHEMA_VERSION`]); `--version` prints the tool and schema
//! versions and exits.
//!
//! Parses each file leniently against a synthetic structure (extensional
//! predicates and output predicates come from `%! edb name/arity` and
//! `%! output name` pragmas, or are inferred — see the `lint` module of
//! `mdtw-datalog`), runs the full static-analysis battery — including the
//! semantic tier (containment-based redundancy, provable boundedness,
//! magic-set applicability) — and reports the `MD0xx` diagnostics with
//! rustc-style carets (or as JSON with `--json`).
//!
//! `--optimize` adds a dry-run of the semantic optimizer pipeline
//! (minimize → eliminate bounded recursion → magic sets) and prints the
//! rewritten program; with `--json` it lands in an `optimize` field.
//!
//! `--explain` renders each file's compiled join plans — join order,
//! scan-vs-probe access paths, delta splits, and index key positions —
//! as chosen against a seeded dry-run structure; with `--json` it lands
//! in an `explain` field.
//!
//! `--profile FILE.json` runs a profiled dry-run evaluation of each
//! input (full literal-level detail, under the same per-file budget as
//! the semantic tier), prints the hottest rules and the per-stratum
//! timeline, and writes the collected profiles to `FILE.json` after
//! validating that they round-trip through the JSON layer; with
//! `--json` the same data also lands in a `profile` field.
//!
//! `--fuel N` and `--timeout-ms N` budget the semantic tier's containment
//! probes (per file — each file gets a fresh meter). Without them a
//! built-in fuel ceiling applies, so linting terminates even on
//! adversarial programs; a tripped budget degrades the affected semantic
//! findings to "not proven" and never changes the exit status by itself.
//!
//! Exit status — the contract scripts can rely on:
//! * `0` — every file is clean (warnings allowed unless `--deny-warnings`);
//! * `1` — some file has error-level findings, fails to parse, or (with
//!   `--deny-warnings`) has warnings;
//! * `2` — usage problems, unreadable files, or malformed `%!` pragmas.

use mdtw_datalog::analysis::Severity;
use mdtw_datalog::lint::{
    explain_outcome_json, explain_source, file_json, json, json::Json, lint_source_with_limits,
    optimize_source_with_limits, profile_outcome_json, profile_source_with_limits,
    render_parse_error, render_pragma_error, ExplainOutcome, LintOutcome, OptimizeOutcome,
    ProfileOutcome, JSON_SCHEMA_VERSION,
};
use mdtw_datalog::{EvalLimits, EvalProfile, ProfileDetail};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: mdtw-lint [--json] [--deny-warnings] [--optimize] [--explain] \
                     [--profile OUT.json] [--fuel N] [--timeout-ms N] [--version] FILE.dl...";

fn print_help() {
    println!("{USAGE}");
    println!();
    println!("  --json            machine-readable output (one object per file)");
    println!("  --deny-warnings   treat warning-level findings as errors (exit 1)");
    println!("  --optimize        dry-run the semantic optimizer and print the result");
    println!("  --explain         render each file's compiled join plans");
    println!("  --profile OUT     profile a dry-run evaluation, write profiles to OUT (JSON)");
    println!("  --fuel N          budget the semantic probes to N units of work per file");
    println!("  --timeout-ms N    deadline for the semantic probes, per file");
    println!("  --version         print the tool version and JSON schema version");
    println!();
    println!("exit status:");
    println!("  0  every file is clean (warnings allowed unless --deny-warnings)");
    println!("  1  error-level findings, a parse failure, or warnings with --deny-warnings");
    println!("  2  usage problems, unreadable files, or malformed `%!` pragmas");
}

fn main() -> ExitCode {
    let mut json_mode = false;
    let mut deny_warnings = false;
    let mut optimize = false;
    let mut explain = false;
    let mut profile_out: Option<String> = None;
    let mut fuel: Option<u64> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_mode = true,
            "--deny-warnings" => deny_warnings = true,
            "--optimize" => optimize = true,
            "--explain" => explain = true,
            "--profile" => {
                let Some(value) = args.next() else {
                    eprintln!("mdtw-lint: `--profile` needs an output file argument");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                };
                profile_out = Some(value);
            }
            "--fuel" | "--timeout-ms" => {
                let Some(value) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("mdtw-lint: `{arg}` needs a nonnegative integer argument");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                };
                if arg == "--fuel" {
                    fuel = Some(value);
                } else {
                    timeout_ms = Some(value);
                }
            }
            "-h" | "--help" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "-V" | "--version" => {
                println!(
                    "mdtw-lint {} (json schema {JSON_SCHEMA_VERSION})",
                    env!("CARGO_PKG_VERSION")
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("mdtw-lint: unknown flag `{arg}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    // Fresh per file: tripping on one file must not starve the next.
    let file_limits = || -> Option<EvalLimits> {
        if fuel.is_none() && timeout_ms.is_none() {
            return None;
        }
        let mut limits = EvalLimits::new();
        if let Some(f) = fuel {
            limits = limits.fuel(f);
        }
        if let Some(ms) = timeout_ms {
            limits = limits.deadline(Duration::from_millis(ms));
        }
        Some(limits)
    };

    let mut failed = false;
    let mut json_files: Vec<Json> = Vec::new();
    let mut profile_entries: Vec<(String, ProfileOutcome)> = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mdtw-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let limits = file_limits();
        let outcome = match lint_source_with_limits(&source, limits.as_ref()) {
            Ok(o) => o,
            Err(pragma) => {
                eprintln!("{}", render_pragma_error(&pragma, &source, path));
                return ExitCode::from(2);
            }
        };
        failed |= outcome.has_errors();
        if deny_warnings {
            failed |= outcome
                .report
                .as_ref()
                .is_some_and(|r| r.warning_count() > 0);
        }
        // Pragmas already validated above, so optimize_source cannot fail.
        // A fresh meter keeps the dry-run's budget independent of lint's.
        let optimized = optimize.then(|| {
            optimize_source_with_limits(&source, file_limits().as_ref())
                .expect("pragmas validated by lint_source")
        });
        let explained =
            explain.then(|| explain_source(&source).expect("pragmas validated by lint_source"));
        let profiled = profile_out.is_some().then(|| {
            profile_source_with_limits(&source, ProfileDetail::Literals, file_limits().as_ref())
                .expect("pragmas validated by lint_source")
        });
        if json_mode {
            let mut obj = file_json(path, &outcome, optimized.as_ref());
            if let Json::Obj(fields) = &mut obj {
                if let Some(exp) = &explained {
                    fields.push(("explain".into(), explain_outcome_json(exp)));
                }
                if let Some(prof) = &profiled {
                    fields.push(("profile".into(), profile_outcome_json(prof)));
                }
            }
            json_files.push(obj);
        } else {
            render_human(path, &source, &outcome);
            if let Some(opt) = &optimized {
                render_optimized(path, opt);
            }
            if let Some(exp) = &explained {
                render_explained(path, exp);
            }
            if let Some(prof) = &profiled {
                render_profiled(path, prof);
            }
        }
        if let Some(prof) = profiled {
            profile_entries.push((path.clone(), prof));
        }
    }
    if json_mode {
        println!("{}", Json::Arr(json_files).render());
    }
    if let Some(out_path) = &profile_out {
        if let Err(msg) = write_profiles(out_path, &profile_entries) {
            eprintln!("mdtw-lint: {out_path}: {msg}");
            return ExitCode::from(2);
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn render_human(path: &str, source: &str, outcome: &LintOutcome) {
    if let Some(err) = &outcome.parse_error {
        println!("{}\n", render_parse_error(err, source, path));
        println!("{path}: 1 error (parse failed before analysis)");
        return;
    }
    let report = outcome.report.as_ref().expect("no parse error => report");
    for d in &report.diagnostics {
        println!("{}\n", d.render(Some(source), path));
    }
    let notes = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    println!(
        "{path}: {} errors, {} warnings, {} notes ({}, {} recursion)",
        report.error_count(),
        report.warning_count(),
        notes,
        if report.monadic {
            "monadic"
        } else {
            "non-monadic"
        },
        report.recursion,
    );
}

fn render_explained(path: &str, outcome: &ExplainOutcome) {
    match outcome {
        ExplainOutcome::Skipped(reason) => {
            println!("\n{path}: explain skipped: {reason}");
        }
        ExplainOutcome::Explained(explanation) => {
            println!("\n{path}: compiled plans ({} engine)", explanation.engine);
            for line in explanation.render_text().lines() {
                println!("  {line}");
            }
        }
    }
}

fn render_profiled(path: &str, outcome: &ProfileOutcome) {
    match outcome {
        ProfileOutcome::Skipped(reason) => {
            println!("\n{path}: profile skipped: {reason}");
        }
        ProfileOutcome::Profiled(dump) => {
            let total_us = dump.profile.total_nanos() as f64 / 1_000.0;
            println!(
                "\n{path}: dry-run profile: {} facts, {} rounds, {} strata, {total_us:.1} us",
                dump.stats.facts, dump.stats.rounds, dump.stats.strata,
            );
            if let Some(kind) = &dump.tripped {
                let stratum = dump
                    .profile
                    .trip_stratum
                    .map_or_else(String::new, |k| format!(" in stratum {k}"));
                println!("  budget tripped ({kind}){stratum}; profile covers the partial run");
            }
            for s in &dump.profile.strata {
                println!(
                    "  stratum {}: {} rounds, {} facts, {:.1} us",
                    s.index,
                    s.rounds,
                    s.facts,
                    s.nanos as f64 / 1_000.0,
                );
            }
            let hottest = dump.profile.hottest_rules();
            for rp in hottest.iter().take(3) {
                println!(
                    "  hot rule {} ({}): {} firings, {} tuples considered, {:.1} us",
                    rp.rule,
                    rp.head,
                    rp.firings,
                    rp.tuples_considered,
                    rp.nanos as f64 / 1_000.0,
                );
            }
        }
    }
}

/// Writes the collected per-file profiles to `out_path` as a JSON array
/// of `{"file", "profile"|"skipped", …}` objects, after checking that
/// the rendered text re-parses and that every profile object
/// deserializes back via [`EvalProfile::from_json`].
fn write_profiles(out_path: &str, entries: &[(String, ProfileOutcome)]) -> Result<(), String> {
    let arr = Json::Arr(
        entries
            .iter()
            .map(|(file, outcome)| {
                let mut fields = vec![
                    (
                        "schema_version".to_owned(),
                        Json::Num(JSON_SCHEMA_VERSION as f64),
                    ),
                    ("file".to_owned(), Json::Str(file.clone())),
                ];
                if let Json::Obj(rest) = profile_outcome_json(outcome) {
                    fields.extend(rest);
                }
                Json::Obj(fields)
            })
            .collect(),
    );
    let rendered = arr.render();
    let reparsed =
        json::parse(&rendered).map_err(|e| format!("emitted profile JSON does not parse: {e}"))?;
    if let Json::Arr(items) = &reparsed {
        for item in items {
            if let Some(profile) = item.get("profile") {
                EvalProfile::from_json(profile)
                    .map_err(|e| format!("emitted profile does not round-trip: {e}"))?;
            }
        }
    }
    std::fs::write(out_path, rendered + "\n").map_err(|e| e.to_string())
}

fn render_optimized(path: &str, outcome: &OptimizeOutcome) {
    match outcome {
        OptimizeOutcome::Skipped(reason) => {
            println!("\n{path}: optimizer skipped: {reason}");
        }
        OptimizeOutcome::Optimized(dump) => {
            let s = &dump.summary;
            println!(
                "\n{path}: optimized {} -> {} rules \
                 ({} removed, {} literals condensed, {} bounded SCCs, magic: {})",
                dump.rules_before,
                dump.rules.len(),
                s.removed_rules,
                s.condensed_literals,
                s.bounded_sccs,
                if s.magic_applied {
                    format!("{} demand rules", s.magic_rules)
                } else {
                    "not applied".to_owned()
                },
            );
            if s.budget_tripped {
                println!(
                    "  (budget tripped: some containment probes ran out of fuel or time, \
                     the affected transforms were skipped)"
                );
            }
            for rule in &dump.rules {
                println!("  {rule}");
            }
        }
    }
}
