//! Cross-evaluation memoization of compiled join plans.
//!
//! Planning a program is cheap, but the workloads built on the engine —
//! the PRIMALITY enumeration solver, the 3-colorability pipeline, the
//! property-test oracles — evaluate the *same* program over and over (per
//! candidate, per structure). A [`PlanCache`] memoizes the compiled
//! [`RulePlans`] so repeated evaluations skip planning (and, more
//! importantly, skip re-deriving the cardinality statistics that feed the
//! planner's tie-breaks). The stratified pipeline
//! ([`eval_stratified`](crate::stratify::eval_stratified)) plans each
//! stratum's rewritten sub-program against the structure extended with
//! the lower strata's materialized relations, so its cache keys — and
//! their cardinality shapes — incorporate those extensions like any other
//! relation.
//!
//! # Keying and invalidation
//!
//! An entry is keyed by *program identity* — a fingerprint of the rules
//! and intensional arities, verified by exact comparison on hit, so hash
//! collisions can never serve a wrong plan — together with a coarse
//! *cardinality shape* of the structure: the per-relation sizes bucketed
//! by powers of two. Consequently:
//!
//! * evaluating a different program, or the same program after editing a
//!   rule, misses and plans fresh (the old entry stays until evicted);
//! * re-evaluating the same program over the same structure — or any
//!   structure whose relation sizes stay within the same power-of-two
//!   buckets — hits;
//! * growing or shrinking a relation across a power-of-two boundary
//!   invalidates (misses), because the planner's cardinality tie-breaks
//!   may now choose a different join order.
//!
//! Within a bucket, plans may be mildly stale relative to the exact
//! statistics (a different structure of similar shape could prefer
//! another tie-break); staleness never affects correctness — every join
//! order computes the same fixpoint. [`PlanCache::clear`] drops all
//! entries; the cache also evicts its oldest entry beyond
//! [`PLAN_CACHE_CAPACITY`] entries, so long-running processes cannot
//! accumulate plans for unboundedly many programs.

use crate::ast::{Program, Rule};
use crate::eval::{run_seminaive, EvalStats, IdbStore};
use crate::plan::{plan_program_with, RulePlans, StructureStats};
use mdtw_structure::fx::FxHasher;
use mdtw_structure::Structure;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of cached plan sets; the oldest entry is evicted
/// beyond this.
pub const PLAN_CACHE_CAPACITY: usize = 64;

/// A memo of compiled rule plans, keyed by program identity and the
/// structure's cardinality shape (see the module docs for the exact
/// invalidation rules). Cheap to share: lookups take a mutex for the map
/// probe only, and plan sets are handed out as `Arc`s.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: Mutex<VecDeque<CacheEntry>>,
}

#[derive(Debug)]
struct CacheEntry {
    fingerprint: u64,
    stats_key: u64,
    /// Exact program identity, checked on fingerprint match so a hash
    /// collision can never serve a foreign plan.
    rules: Vec<Rule>,
    idb_arities: Vec<usize>,
    plans: Arc<Vec<RulePlans>>,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The compiled plans of `program` for structures shaped like
    /// `structure`, and whether they came from the cache (`true`) or were
    /// compiled by this call (`false`).
    pub fn plans(&self, program: &Program, structure: &Structure) -> (Arc<Vec<RulePlans>>, bool) {
        let fingerprint = program_fingerprint(program);
        let stats_key = cardinality_shape(structure);
        let find = |entries: &VecDeque<CacheEntry>| {
            entries
                .iter()
                .find(|e| {
                    e.fingerprint == fingerprint
                        && e.stats_key == stats_key
                        && e.idb_arities == program.idb_arities
                        && e.rules == program.rules
                })
                .map(|e| Arc::clone(&e.plans))
        };
        if let Some(plans) = find(&self.entries.lock().expect("plan cache lock")) {
            return (plans, true);
        }
        // Plan outside the lock — compiling walks every rule and derives
        // statistics from the structure; holding the mutex here would
        // serialize concurrent evaluations of unrelated programs.
        let plans = Arc::new(plan_program_with(program, &StructureStats::new(structure)));
        let mut entries = self.entries.lock().expect("plan cache lock");
        // Re-check: another thread may have planned the same program
        // between the locks; keep its entry rather than a duplicate.
        if let Some(plans) = find(&entries) {
            return (plans, true);
        }
        if entries.len() >= PLAN_CACHE_CAPACITY {
            entries.pop_front();
        }
        entries.push_back(CacheEntry {
            fingerprint,
            stats_key,
            rules: program.rules.clone(),
            idb_arities: program.idb_arities.clone(),
            plans: Arc::clone(&plans),
        });
        (plans, false)
    }

    /// Number of cached plan sets.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache lock").len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (e.g. to force replanning after bulk
    /// mutations of a structure).
    pub fn clear(&self) {
        self.entries.lock().expect("plan cache lock").clear();
    }
}

/// The process-wide cache used by the deprecated one-shot
/// [`eval_seminaive`](crate::eval::eval_seminaive) wrapper. Prefer an
/// [`Evaluator`](crate::evaluator::Evaluator) session, which owns its
/// cache.
pub fn global_plan_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(PlanCache::new)
}

/// Resolves the compiled plans of `program` for `structure`: through
/// `cache` when one is supplied (reporting whether it hit), or by
/// planning fresh when caching is disabled.
pub(crate) fn plans_for(
    program: &Program,
    structure: &Structure,
    cache: Option<&PlanCache>,
) -> (Arc<Vec<RulePlans>>, bool) {
    match cache {
        Some(cache) => cache.plans(program, structure),
        None => (
            Arc::new(plan_program_with(program, &StructureStats::new(structure))),
            false,
        ),
    }
}

/// Semi-naive evaluation with an explicit plan cache (the library-level
/// entry point for callers that want cache control or isolation;
/// [`eval_seminaive`](crate::eval::eval_seminaive) uses
/// [`global_plan_cache`]). [`EvalStats::plan_cache_hits`] reports whether
/// planning was skipped.
///
/// # Errors
/// [`EvalError`](crate::evaluator::EvalError::NotSemipositive) if the
/// program negates an intensional atom (negated intensional atoms need
/// [`eval_stratified`](crate::stratify::eval_stratified)) or is otherwise
/// ill-formed.
#[deprecated(
    since = "0.2.0",
    note = "construct an `Evaluator` session, which owns its `PlanCache` \
            (`Evaluator::new(program)?.evaluate(&structure)`)"
)]
pub fn eval_seminaive_with_cache(
    program: &Program,
    structure: &Structure,
    cache: &PlanCache,
) -> Result<(IdbStore, EvalStats), crate::evaluator::EvalError> {
    crate::eval::check_semipositive(program)?;
    let (plans, hit) = cache.plans(program, structure);
    let stats = EvalStats {
        plan_cache_hits: usize::from(hit),
        strata: 1,
        ..EvalStats::default()
    };
    Ok(run_seminaive(program, structure, &plans, stats))
}

fn program_fingerprint(program: &Program) -> u64 {
    let mut h = FxHasher::default();
    program.rules.hash(&mut h);
    program.idb_arities.hash(&mut h);
    h.finish()
}

/// The structure's cardinality shape: per-relation sizes bucketed by
/// powers of two (the granularity at which the planner's tie-breaks can
/// plausibly change), hashed in signature order.
fn cardinality_shape(structure: &Structure) -> u64 {
    let mut h = FxHasher::default();
    for p in structure.signature().preds() {
        h.write_u32((structure.relation(p).len() as u64 + 1).ilog2());
    }
    h.finish()
}

#[cfg(test)]
#[allow(deprecated)] // unit tests of the deprecated one-shot wrappers themselves
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use mdtw_structure::{Domain, ElemId, Signature};

    fn chain(n: usize) -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(n);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        for i in 0..n - 1 {
            s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
        }
        s
    }

    const TC: &str = "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).";

    #[test]
    fn second_evaluation_hits() {
        let s = chain(6);
        let p = parse_program(TC, &s).unwrap();
        let cache = PlanCache::new();
        let (_, first) = eval_seminaive_with_cache(&p, &s, &cache).unwrap();
        let (_, second) = eval_seminaive_with_cache(&p, &s, &cache).unwrap();
        assert_eq!(first.plan_cache_hits, 0);
        assert_eq!(second.plan_cache_hits, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(first.facts, second.facts);
    }

    #[test]
    fn same_shape_structure_hits_cross_boundary_misses() {
        let cache = PlanCache::new();
        let s6 = chain(6);
        let p = parse_program(TC, &s6).unwrap();
        let (plans6, _) = cache.plans(&p, &s6);
        // 6 edges vs 5: same power-of-two bucket (⌊log2(6..8)⌋ = 2) → hit.
        let s7 = chain(7);
        let (plans7, hit) = cache.plans(&p, &s7);
        assert!(hit);
        assert!(Arc::ptr_eq(&plans6, &plans7));
        // 63 edges: different bucket → replanned with the new stats.
        let s64 = chain(64);
        let (_, hit) = cache.plans(&p, &s64);
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn different_program_misses() {
        let s = chain(6);
        let p1 = parse_program(TC, &s).unwrap();
        let p2 = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).",
            &s,
        )
        .unwrap();
        let cache = PlanCache::new();
        let (_, _) = cache.plans(&p1, &s);
        let (_, hit) = cache.plans(&p2, &s);
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    /// A program whose rule body has `i + 1` copies of `e(X, Y)` —
    /// structurally distinct per `i` (identity ignores predicate *names*:
    /// plans only reference predicate ids, so a renamed but structurally
    /// identical program correctly shares the cached plans).
    fn distinct_program(i: usize, s: &Structure) -> crate::ast::Program {
        let body = vec!["e(X, Y)"; i + 1].join(", ");
        parse_program(&format!("q(X) :- {body}."), s).unwrap()
    }

    #[test]
    fn capacity_evicts_oldest() {
        let s = chain(4);
        let cache = PlanCache::new();
        for i in 0..PLAN_CACHE_CAPACITY + 5 {
            let (_, hit) = cache.plans(&distinct_program(i, &s), &s);
            assert!(!hit);
        }
        assert_eq!(cache.len(), PLAN_CACHE_CAPACITY);
        // The most recent program is still cached …
        assert!(
            cache
                .plans(&distinct_program(PLAN_CACHE_CAPACITY + 4, &s), &s)
                .1
        );
        // … the first one was evicted.
        assert!(!cache.plans(&distinct_program(0, &s), &s).1);
    }

    #[test]
    fn renamed_program_shares_structural_plans() {
        let s = chain(5);
        let cache = PlanCache::new();
        let p1 = parse_program("walk(X, Y) :- e(X, Y).", &s).unwrap();
        let p2 = parse_program("hop(X, Y) :- e(X, Y).", &s).unwrap();
        let _ = cache.plans(&p1, &s);
        // Plans reference predicate ids, never names: same structure, same
        // plans — a hit, and a correct one.
        assert!(cache.plans(&p2, &s).1);
    }

    #[test]
    fn clear_forces_replanning() {
        let s = chain(4);
        let p = parse_program(TC, &s).unwrap();
        let cache = PlanCache::new();
        let _ = cache.plans(&p, &s);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert!(!cache.plans(&p, &s).1);
    }

    #[test]
    fn global_eval_reports_hits() {
        let s = chain(5);
        let p = parse_program(
            "walk(X, Y) :- e(X, Y).\nwalk(X, Z) :- walk(X, Y), e(Y, Z).",
            &s,
        )
        .unwrap();
        let (_, first) = crate::eval::eval_seminaive(&p, &s).unwrap();
        let (_, second) = crate::eval::eval_seminaive(&p, &s).unwrap();
        // The global cache persists across calls (first may itself hit if
        // an earlier test evaluated this exact program+shape).
        let _ = first;
        assert_eq!(second.plan_cache_hits, 1);
    }
}
