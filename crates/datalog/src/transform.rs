//! Semantic program transformations: uniform-containment minimization,
//! boundedness detection with recursion elimination, and the magic-set
//! demand transformation.
//!
//! All three are *semantics-preserving on the declared outputs* and are
//! property-tested store-identical against the untransformed program:
//!
//! * [`minimize`] condenses rule bodies by homomorphism (the
//!   Chandra–Merlin core computation on each conjunctive body) and drops
//!   rules that are *uniformly contained* in the rest of the program
//!   (Sagiv's test: freeze the rule body into a canonical database, run
//!   the remaining program over it through the ordinary [`Evaluator`],
//!   and check whether the frozen head is re-derived).
//! * [`bounded_sccs`] / [`eliminate_bounded_recursion`] decide
//!   boundedness for linear, fully-positive recursive SCCs by iterating
//!   the same containment test between the k-stage and (k+1)-stage
//!   unfoldings (Mazowiecki–Ochremiak–Witkowski study exactly this
//!   collapse for monadic programs on trees); a bounded SCC is replaced
//!   by its nonrecursive unfolding.
//! * [`magic_program`] specializes evaluation to the declared output
//!   predicates with bound/free adornments and magic filter predicates,
//!   so point-shaped queries stop materializing whole relations.
//!
//! The [`Evaluator`] wires these behind
//! [`EvalOptions::minimize`](crate::EvalOptions::minimize),
//! [`EvalOptions::eliminate_bounded_recursion`](crate::EvalOptions::eliminate_bounded_recursion)
//! and [`EvalOptions::magic_sets`](crate::EvalOptions::magic_sets); the
//! [`analysis`](crate::analysis) pass reports what they would do as the
//! MD017 / MD023 / MD040-series diagnostics.

use crate::ast::{Atom, IdbId, Literal, PredRef, Program, Rule, Term};
use crate::evaluator::{EvalError, EvalOptions, Evaluator};
use crate::limits::EvalLimits;
use crate::span::RuleSpans;
use mdtw_structure::fx::{FxHashMap, FxHashSet};
use mdtw_structure::{Domain, ElemId, PredId, Signature, Structure};
use std::sync::Arc;

/// Containment tests are skipped for programs larger than this.
const MAX_RULES: usize = 64;
/// Rules with more body literals than this are never candidates.
const MAX_BODY: usize = 16;
/// Boundedness is tested up to this unfolding stage.
const MAX_STAGES: usize = 3;
/// Unfolding gives up once a stage holds more rules than this.
const MAX_UNFOLDED: usize = 128;
/// Backtracking-step budget for one homomorphism search.
const HOM_STEPS: usize = 10_000;

/// What [`minimize`] did to a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimizeReport {
    /// Rules removed because the rest of the program uniformly contains
    /// them.
    pub removed_rules: usize,
    /// Body literals dropped by homomorphism condensation.
    pub condensed_literals: usize,
}

/// A recursive SCC proven bounded, with its nonrecursive replacement.
#[derive(Debug, Clone)]
pub struct BoundedScc {
    /// Names of the intensional predicates in the SCC.
    pub preds: Vec<String>,
    /// The stage k at which the (k+1)-stage unfolding was contained in
    /// the k-stage one.
    pub stage: usize,
    /// Indices (into the analyzed program) of the SCC's rules.
    pub rules: Vec<usize>,
    /// The nonrecursive rules that replace them.
    pub replacement: Vec<Rule>,
}

/// What the magic-set transformation produced.
#[derive(Debug, Clone)]
pub struct MagicOutcome {
    /// The transformed program, or `None` when no output admits a bound
    /// adornment (the demand transformation would be the identity).
    pub program: Option<Program>,
    /// Number of adorned predicate versions created.
    pub adorned: usize,
    /// Number of magic (demand) rules emitted.
    pub magic_rules: usize,
    /// Predicates kept fully materialized (negation reaches them, so the
    /// demand restriction would change their meaning).
    pub full_preds: Vec<String>,
}

/// Combined summary of one [`optimize`] run, also surfaced by the
/// [`Evaluator`] as [`transforms()`](crate::Evaluator::transforms).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransformSummary {
    /// Rules dropped by uniform-containment minimization.
    pub removed_rules: usize,
    /// Body literals dropped by condensation.
    pub condensed_literals: usize,
    /// Recursive SCCs proven bounded and rewritten nonrecursive.
    pub bounded_sccs: usize,
    /// Whether the magic-set rewrite was applied.
    pub magic_applied: bool,
    /// Adorned predicate versions the magic rewrite created.
    pub magic_adorned: usize,
    /// Magic (demand) rules the rewrite emitted.
    pub magic_rules: usize,
    /// Whether a containment probe ran out of budget, so one or more
    /// transforms degraded to "not applied" instead of completing their
    /// proof. The program is still correct — an unproven containment
    /// just means the rule (or SCC) is conservatively kept.
    pub budget_tripped: bool,
}

// ---------------------------------------------------------------------------
// Canonical-database harness shared by the containment tests.
// ---------------------------------------------------------------------------

/// The synthetic world a containment test evaluates in: one EDB slot per
/// extensional predicate the program mentions (indices aligned with the
/// original [`PredId`]s) plus one `__in` slot per intensional predicate,
/// used to freeze IDB body atoms into extensional facts.
struct TestWorld {
    sig: Arc<Signature>,
    /// First [`ElemId`] used for frozen variables; constants keep their
    /// identity below it.
    offset: u32,
    edb_slots: usize,
}

impl TestWorld {
    fn new(program: &Program) -> Self {
        let mut arities: Vec<usize> = Vec::new();
        let mut max_const = None::<u32>;
        for rule in &program.rules {
            for atom in std::iter::once(&rule.head).chain(rule.body.iter().map(|l| &l.atom)) {
                if let PredRef::Edb(p) = atom.pred {
                    if p.index() >= arities.len() {
                        arities.resize(p.index() + 1, 0);
                    }
                    arities[p.index()] = atom.terms.len();
                }
                for term in &atom.terms {
                    if let Term::Const(c) = term {
                        max_const = Some(max_const.map_or(c.0, |m: u32| m.max(c.0)));
                    }
                }
            }
        }
        let edb_slots = arities.len();
        let pairs: Vec<(String, usize)> = arities
            .iter()
            .enumerate()
            .map(|(i, &a)| (format!("__e{i}"), a))
            .chain(
                program
                    .idb_arities
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| (format!("__in{i}"), a)),
            )
            .collect();
        TestWorld {
            sig: Arc::new(Signature::from_pairs(pairs)),
            offset: max_const.map_or(0, |m| m + 1),
            edb_slots,
        }
    }

    /// The EDB slot that freezes intensional predicate `p`.
    fn idb_slot(&self, p: IdbId) -> PredId {
        PredId((self.edb_slots + p.index()) as u32)
    }

    /// Freezes a term of the candidate rule into a domain element.
    fn freeze(&self, term: Term) -> ElemId {
        match term {
            Term::Const(c) => c,
            Term::Var(v) => ElemId(self.offset + v.0),
        }
    }

    /// The canonical database of `rule`: its positive body literals as
    /// facts, variables frozen to fresh elements.
    fn canonical_db(&self, rule: &Rule) -> Structure {
        let n = self.offset as usize + rule.var_count as usize;
        let mut db = Structure::new(Arc::clone(&self.sig), Domain::anonymous(n));
        for lit in &rule.body {
            if !lit.positive {
                continue;
            }
            let args: Vec<ElemId> = lit.atom.terms.iter().map(|&t| self.freeze(t)).collect();
            let pred = match lit.atom.pred {
                PredRef::Edb(p) => p,
                PredRef::Idb(q) => self.idb_slot(q),
            };
            db.insert(pred, &args);
        }
        db
    }

    /// Evaluates `test` over `db` and checks the frozen head of
    /// `candidate` is derived. Any construction or evaluation error is
    /// treated as "not contained" (conservative). When `limits` is
    /// given, the nested evaluation shares its budget meter (a clone of
    /// [`EvalLimits`] keeps the same counters), and a
    /// [`EvalError::LimitExceeded`] trip sets `tripped` — the probe then
    /// counts as "not contained", so the transform degrades to leaving
    /// the rule in place rather than risking an unproven removal.
    fn derives_head(
        &self,
        test: Program,
        db: &Structure,
        candidate: &Rule,
        limits: Option<&EvalLimits>,
        tripped: &mut bool,
    ) -> bool {
        let PredRef::Idb(head) = candidate.head.pred else {
            return false;
        };
        let args: Vec<ElemId> = candidate
            .head
            .terms
            .iter()
            .map(|&t| self.freeze(t))
            .collect();
        let options = match limits {
            Some(l) => EvalOptions::new().limits(l.clone()),
            None => EvalOptions::new(),
        };
        match Evaluator::with_options(test, options) {
            Ok(mut session) => match session.evaluate(db) {
                Ok(r) => r.store.holds(head, &args),
                Err(EvalError::LimitExceeded { .. }) => {
                    *tripped = true;
                    false
                }
                Err(_) => false,
            },
            Err(_) => false,
        }
    }
}

/// A rule eligible for the containment tests: fully positive, safe, and
/// intensional-headed, with a tractable body.
fn eligible(rule: &Rule) -> bool {
    matches!(rule.head.pred, PredRef::Idb(_))
        && rule.body.len() <= MAX_BODY
        && rule.body.iter().all(|l| l.positive)
        && rule.is_safe()
}

/// An empty program sharing `program`'s IDB tables, so [`IdbId`]s align.
fn idb_shell(program: &Program) -> Program {
    Program {
        rules: Vec::new(),
        idb_names: program.idb_names.clone(),
        idb_arities: program.idb_arities.clone(),
        spans: Vec::new(),
        idb_by_name: program.idb_by_name.clone(),
    }
}

// ---------------------------------------------------------------------------
// Uniform-containment rule minimization.
// ---------------------------------------------------------------------------

/// Decides, per rule, whether the rest of the program *uniformly
/// contains* it — i.e. removing it provably never loses a derivable
/// fact, over every database and every value of the intensional inputs.
///
/// The test is Sagiv's: freeze the rule body into a canonical database
/// (variables become fresh domain elements, intensional atoms become
/// `__in` facts), run the remaining program — extended with copy rules
/// `p(X̄) :- __in_p(X̄)` — over it, and check whether the frozen head is
/// derived. Rules are tested and removed sequentially, so mutually
/// subsumed copies never all vanish. Sound under stratified negation:
/// only the fully-positive fragment of the remaining program is used,
/// which can only under-approximate derivability.
pub fn redundant_rules(program: &Program) -> Vec<bool> {
    redundant_rules_with_limits(program, None).0
}

/// Budget-governed [`redundant_rules`]: every containment probe runs its
/// nested [`Evaluator`] under `limits` (sharing one meter, so the budget
/// is cumulative across probes). Returns the redundancy flags plus
/// whether any probe tripped; a tripped probe conservatively keeps its
/// rule, and remaining candidates are skipped.
pub fn redundant_rules_with_limits(
    program: &Program,
    limits: Option<&EvalLimits>,
) -> (Vec<bool>, bool) {
    let n = program.rules.len();
    let mut redundant = vec![false; n];
    let mut tripped = false;
    if !(2..=MAX_RULES).contains(&n) {
        return (redundant, tripped);
    }
    let world = TestWorld::new(program);
    let mut kept: Vec<usize> = (0..n).collect();
    for (j, flag) in redundant.iter_mut().enumerate() {
        if tripped {
            break;
        }
        if !eligible(&program.rules[j]) {
            continue;
        }
        if rule_redundant(&world, program, &kept, j, limits, &mut tripped) {
            *flag = true;
            kept.retain(|&k| k != j);
        }
    }
    (redundant, tripped)
}

fn rule_redundant(
    world: &TestWorld,
    program: &Program,
    kept: &[usize],
    j: usize,
    limits: Option<&EvalLimits>,
    tripped: &mut bool,
) -> bool {
    let candidate = &program.rules[j];
    let mut test = idb_shell(program);
    // Copy rules seed every intensional predicate from its frozen input
    // slot, so derivations in the remaining program may chain through
    // intensional atoms of the candidate body.
    for (i, &arity) in program.idb_arities.iter().enumerate() {
        let terms: Vec<Term> = (0..arity as u32)
            .map(|v| Term::Var(crate::ast::Var(v)))
            .collect();
        test.rules.push(Rule {
            head: Atom {
                pred: PredRef::Idb(IdbId(i as u32)),
                terms: terms.clone(),
            },
            body: vec![Literal {
                atom: Atom {
                    pred: PredRef::Edb(world.idb_slot(IdbId(i as u32))),
                    terms,
                },
                positive: true,
            }],
            var_count: arity as u32,
            var_names: (0..arity).map(|v| format!("A{v}")).collect(),
        });
    }
    for &k in kept {
        if k != j && eligible(&program.rules[k]) {
            test.rules.push(program.rules[k].clone());
        }
    }
    let db = world.canonical_db(candidate);
    world.derives_head(test, &db, candidate, limits, tripped)
}

/// Condenses rule bodies: a positive literal is dropped when a
/// homomorphism fixing the head variables (and constants) maps the full
/// body into the body without it — the body minus the literal is then
/// equivalent as a conjunctive query. Returns the number of literals
/// dropped; spans stay parallel.
pub(crate) fn condense(program: &mut Program) -> usize {
    let mut dropped = 0;
    for i in 0..program.rules.len() {
        if !eligible(&program.rules[i]) {
            continue;
        }
        loop {
            let rule = &program.rules[i];
            if rule.body.len() <= 1 {
                break;
            }
            let Some(d) = (0..rule.body.len()).find(|&d| literal_droppable(rule, d)) else {
                break;
            };
            program.rules[i].body.remove(d);
            if let Some(spans) = program.spans.get_mut(i) {
                if d < spans.literals.len() {
                    spans.literals.remove(d);
                }
            }
            dropped += 1;
        }
    }
    dropped
}

fn literal_droppable(rule: &Rule, d: usize) -> bool {
    let target: Vec<&Literal> = rule
        .body
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != d)
        .map(|(_, l)| l)
        .collect();
    let mut assign: Vec<Option<Term>> = vec![None; rule.var_count as usize];
    for v in rule.head.vars() {
        assign[v.index()] = Some(Term::Var(v));
    }
    let mut steps = HOM_STEPS;
    hom_search(&rule.body, 0, &target, &mut assign, &mut steps)
}

/// Backtracking search for a homomorphism from `src[i..]` into `target`
/// extending `assign`. Bounded by `steps`.
fn hom_search(
    src: &[Literal],
    i: usize,
    target: &[&Literal],
    assign: &mut Vec<Option<Term>>,
    steps: &mut usize,
) -> bool {
    if i == src.len() {
        return true;
    }
    for t in target {
        if *steps == 0 {
            return false;
        }
        *steps -= 1;
        if t.atom.pred != src[i].atom.pred || t.atom.terms.len() != src[i].atom.terms.len() {
            continue;
        }
        let saved = assign.clone();
        if match_terms(&src[i].atom.terms, &t.atom.terms, assign)
            && hom_search(src, i + 1, target, assign, steps)
        {
            return true;
        }
        *assign = saved;
    }
    false
}

fn match_terms(src: &[Term], tgt: &[Term], assign: &mut [Option<Term>]) -> bool {
    for (s, t) in src.iter().zip(tgt) {
        match s {
            Term::Const(c) => {
                if *t != Term::Const(*c) {
                    return false;
                }
            }
            Term::Var(v) => match &assign[v.index()] {
                Some(bound) => {
                    if bound != t {
                        return false;
                    }
                }
                None => assign[v.index()] = Some(*t),
            },
        }
    }
    true
}

/// Minimizes a program in place: condensation first, then sequential
/// uniform-containment removal. Semantics on every intensional predicate
/// are preserved (property-tested).
pub fn minimize(program: &mut Program) -> MinimizeReport {
    minimize_with_limits(program, None).0
}

/// Budget-governed [`minimize`]: containment probes run under `limits`
/// (condensation is a pure homomorphism search and is already bounded by
/// a fixed step budget, so only the removal pass is governed). Returns the
/// report plus whether the budget tripped; on a trip the remaining
/// candidate rules are conservatively kept.
pub fn minimize_with_limits(
    program: &mut Program,
    limits: Option<&EvalLimits>,
) -> (MinimizeReport, bool) {
    let condensed_literals = condense(program);
    let (redundant, tripped) = redundant_rules_with_limits(program, limits);
    let removed_rules = redundant.iter().filter(|&&r| r).count();
    if removed_rules > 0 {
        let mut keep = redundant.iter();
        program.rules.retain(|_| !*keep.next().unwrap());
        if !program.spans.is_empty() {
            let mut keep = redundant.iter();
            program.spans.retain(|_| !*keep.next().unwrap());
        }
    }
    (
        MinimizeReport {
            removed_rules,
            condensed_literals,
        },
        tripped,
    )
}

// ---------------------------------------------------------------------------
// Boundedness detection & recursion elimination.
// ---------------------------------------------------------------------------

/// Detects bounded recursion: for every linear, fully-positive recursive
/// SCC, the k-stage unfoldings `U_1 ∪ … ∪ U_k` are compared with the
/// (k+1)-stage ones by uniform containment (lower intensional
/// predicates abstracted to extensional inputs, so the proof holds for
/// *every* value of the lower strata). A SCC bounded at stage k is
/// reported with its nonrecursive replacement `N_k = U_1 ∪ … ∪ U_k`.
pub fn bounded_sccs(program: &Program) -> Vec<BoundedScc> {
    bounded_sccs_with_limits(program, None).0
}

/// Budget-governed [`bounded_sccs`]: the stage-containment probes run
/// their nested [`Evaluator`]s under `limits` (one shared meter).
/// Returns the proofs plus whether the budget tripped; a tripped SCC is
/// conservatively reported unbounded and remaining SCCs are skipped.
pub fn bounded_sccs_with_limits(
    program: &Program,
    limits: Option<&EvalLimits>,
) -> (Vec<BoundedScc>, bool) {
    let mut tripped = false;
    if program.rules.len() > MAX_RULES || program.idb_count() == 0 {
        return (Vec::new(), tripped);
    }
    let scc_of = crate::analysis::idb_sccs(program);
    let scc_count = scc_of.iter().map(|&s| s + 1).max().unwrap_or(0);
    let world = TestWorld::new(program);
    let mut out = Vec::new();
    for s in 0..scc_count {
        if tripped {
            break;
        }
        let members: Vec<usize> = (0..program.idb_count())
            .filter(|&p| scc_of[p] == s)
            .collect();
        if let Some(b) = try_bound_scc(program, &world, &scc_of, s, &members, limits, &mut tripped)
        {
            out.push(b);
        }
    }
    (out, tripped)
}

/// True if the atom's predicate lies in SCC `s`.
fn in_scc(pred: PredRef, scc_of: &[usize], s: usize) -> bool {
    matches!(pred, PredRef::Idb(p) if scc_of[p.index()] == s)
}

fn try_bound_scc(
    program: &Program,
    world: &TestWorld,
    scc_of: &[usize],
    s: usize,
    members: &[usize],
    limits: Option<&EvalLimits>,
    tripped: &mut bool,
) -> Option<BoundedScc> {
    // Gather the SCC's rules; every one must be eligible and *linear*
    // (at most one in-SCC body literal).
    let mut rule_ids = Vec::new();
    let mut exits: Vec<Rule> = Vec::new();
    let mut recursive: Vec<(Rule, usize)> = Vec::new();
    for (i, rule) in program.rules.iter().enumerate() {
        if !in_scc(rule.head.pred, scc_of, s) {
            continue;
        }
        if !eligible(rule) {
            return None;
        }
        rule_ids.push(i);
        let rec_positions: Vec<usize> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(_, l)| in_scc(l.atom.pred, scc_of, s))
            .map(|(k, _)| k)
            .collect();
        match rec_positions.len() {
            0 => exits.push(rule.clone()),
            1 => recursive.push((rule.clone(), rec_positions[0])),
            _ => return None,
        }
    }
    if recursive.is_empty() || exits.is_empty() || rule_ids.len() > MAX_BODY {
        return None;
    }

    // Iterate the unfolding stages.
    let mut accumulated: Vec<Rule> = Vec::new(); // N_k
    let mut frontier: Vec<Rule> = exits; // U_k
    for stage in 1..=MAX_STAGES {
        accumulated.extend(frontier.iter().cloned());
        let mut next: Vec<Rule> = Vec::new(); // U_{k+1}
        let mut seen: FxHashSet<String> = accumulated.iter().map(rule_key).collect();
        for (rule, pos) in &recursive {
            for u in &frontier {
                let Some(unfolded) = unfold(rule, *pos, u) else {
                    continue;
                };
                if unfolded.body.len() > 2 * MAX_BODY || !unfolded.is_safe() {
                    return None;
                }
                if seen.insert(rule_key(&unfolded)) {
                    next.push(unfolded);
                }
            }
        }
        if next.len() > MAX_UNFOLDED {
            return None;
        }
        if next.is_empty()
            || next.iter().all(|u| {
                !*tripped
                    && stage_contained(program, world, scc_of, s, &accumulated, u, limits, tripped)
            })
        {
            return Some(BoundedScc {
                preds: members
                    .iter()
                    .map(|&p| program.idb_names[p].clone())
                    .collect(),
                stage,
                rules: rule_ids,
                replacement: accumulated,
            });
        }
        if *tripped {
            return None;
        }
        frontier = next;
    }
    None
}

/// Resolves `rule`'s single in-SCC literal (at `pos`) against `u`'s head
/// by unification and returns the unfolded rule, or `None` on clash.
/// `u`'s variables are shifted above `rule`'s.
fn unfold(rule: &Rule, pos: usize, u: &Rule) -> Option<Rule> {
    use crate::ast::Var;
    let shift = rule.var_count;
    let nv = (rule.var_count + u.var_count) as usize;
    let shift_term = |t: Term| match t {
        Term::Var(v) => Term::Var(Var(v.0 + shift)),
        c => c,
    };
    let mut sub: Vec<Option<Term>> = vec![None; nv];
    fn resolve(sub: &[Option<Term>], mut t: Term) -> Term {
        while let Term::Var(v) = t {
            match sub[v.index()] {
                Some(next) => t = next,
                None => break,
            }
        }
        t
    }
    let call = &rule.body[pos].atom;
    if call.terms.len() != u.head.terms.len() {
        return None;
    }
    for (&a, &b) in call.terms.iter().zip(u.head.terms.iter()) {
        let a = resolve(&sub, a);
        let b = resolve(&sub, shift_term(b));
        match (a, b) {
            (Term::Const(x), Term::Const(y)) => {
                if x != y {
                    return None;
                }
            }
            (Term::Var(x), t) | (t, Term::Var(x)) => {
                if t != Term::Var(x) {
                    sub[x.index()] = Some(t);
                }
            }
        }
    }

    // Build the unfolded rule: rule's body minus the call, plus u's body,
    // all under the substitution, with variables compactly renumbered.
    let mut remap: Vec<Option<u32>> = vec![None; nv];
    let mut var_names: Vec<String> = Vec::new();
    let mut used: FxHashSet<String> = FxHashSet::default();
    let mut next_var = 0u32;
    let mut map_term = |t: Term, remap: &mut Vec<Option<u32>>, var_names: &mut Vec<String>| {
        let t = resolve(&sub, t);
        match t {
            Term::Const(_) => t,
            Term::Var(v) => {
                let id = *remap[v.index()].get_or_insert_with(|| {
                    let mut name = if v.0 < shift {
                        rule.var_names.get(v.index()).cloned()
                    } else {
                        u.var_names.get((v.0 - shift) as usize).cloned()
                    }
                    .unwrap_or_else(|| format!("V{}", v.0));
                    while !used.insert(name.clone()) {
                        name.push('\'');
                    }
                    var_names.push(name);
                    let id = next_var;
                    next_var += 1;
                    id
                });
                Term::Var(Var(id))
            }
        }
    };
    let mut map_atom = |a: &Atom, shifted: bool| Atom {
        pred: a.pred,
        terms: a
            .terms
            .iter()
            .map(|&t| {
                let t = if shifted { shift_term(t) } else { t };
                map_term(t, &mut remap, &mut var_names)
            })
            .collect(),
    };
    let head = map_atom(&rule.head, false);
    let mut body: Vec<Literal> = Vec::new();
    for (k, lit) in rule.body.iter().enumerate() {
        if k != pos {
            body.push(Literal {
                atom: map_atom(&lit.atom, false),
                positive: lit.positive,
            });
        }
    }
    for lit in &u.body {
        body.push(Literal {
            atom: map_atom(&lit.atom, true),
            positive: lit.positive,
        });
    }
    Some(Rule {
        head,
        body,
        var_count: next_var,
        var_names,
    })
}

/// A structural dedup key (not canonical under variable renaming — used
/// only to avoid re-deriving identical unfoldings).
fn rule_key(rule: &Rule) -> String {
    let mut lits: Vec<String> = rule.body.iter().map(|l| format!("{l:?}")).collect();
    lits.sort_unstable();
    format!("{:?}|{}", rule.head, lits.join(";"))
}

/// Is the unfolded rule `u` uniformly contained in the nonrecursive
/// program `stages`? Lower intensional predicates are rewritten to their
/// extensional input slots on both sides, so the containment holds for
/// every value of the lower strata.
#[allow(clippy::too_many_arguments)]
fn stage_contained(
    program: &Program,
    world: &TestWorld,
    scc_of: &[usize],
    s: usize,
    stages: &[Rule],
    u: &Rule,
    limits: Option<&EvalLimits>,
    tripped: &mut bool,
) -> bool {
    debug_assert!(!u.body.iter().any(|l| in_scc(l.atom.pred, scc_of, s)));
    let mut test = idb_shell(program);
    for rule in stages {
        let mut rewritten = rule.clone();
        for lit in &mut rewritten.body {
            if let PredRef::Idb(q) = lit.atom.pred {
                lit.atom.pred = PredRef::Edb(world.idb_slot(q));
            }
        }
        test.rules.push(rewritten);
    }
    let db = world.canonical_db(u);
    world.derives_head(test, &db, u, limits, tripped)
}

/// Rewrites every bounded SCC nonrecursive, in place: the SCC's rules
/// are dropped and the unfolded replacement appended (with dummy spans,
/// since the new rules have no single source location). Returns the
/// proofs. Store-identical on every predicate (property-tested).
pub fn eliminate_bounded_recursion(program: &mut Program) -> Vec<BoundedScc> {
    eliminate_bounded_recursion_with_limits(program, None).0
}

/// Budget-governed [`eliminate_bounded_recursion`]: boundedness proofs
/// run under `limits`. Returns the proofs plus whether the budget
/// tripped; a tripped SCC keeps its recursion (sound — only *proven*
/// bounded SCCs are rewritten).
pub fn eliminate_bounded_recursion_with_limits(
    program: &mut Program,
    limits: Option<&EvalLimits>,
) -> (Vec<BoundedScc>, bool) {
    let (sccs, tripped) = bounded_sccs_with_limits(program, limits);
    if sccs.is_empty() {
        return (sccs, tripped);
    }
    let mut drop = vec![false; program.rules.len()];
    for scc in &sccs {
        for &i in &scc.rules {
            drop[i] = true;
        }
    }
    let had_spans = !program.spans.is_empty();
    let mut keep = drop.iter();
    program.rules.retain(|_| !*keep.next().unwrap());
    if had_spans {
        let mut keep = drop.iter();
        program.spans.retain(|_| !*keep.next().unwrap());
    }
    for scc in &sccs {
        for rule in &scc.replacement {
            program.rules.push(rule.clone());
            if had_spans {
                program.spans.push(RuleSpans::default());
            }
        }
    }
    (sccs, tripped)
}

// ---------------------------------------------------------------------------
// Magic-set demand transformation.
// ---------------------------------------------------------------------------

fn adorned_name(name: &str, adorn: &[bool]) -> String {
    if adorn.iter().all(|&b| !b) {
        name.to_owned()
    } else {
        let tag: String = adorn.iter().map(|&b| if b { 'b' } else { 'f' }).collect();
        format!("{name}[{tag}]")
    }
}

struct MagicBuilder<'a> {
    src: &'a Program,
    out: Program,
    /// Predicates negation can reach: kept fully materialized.
    needs_full: Vec<bool>,
    rules_by_head: Vec<Vec<usize>>,
    adorned: FxHashMap<(u32, Vec<bool>), IdbId>,
    magic: FxHashMap<(u32, Vec<bool>), IdbId>,
    full_done: Vec<bool>,
    worklist: Vec<(IdbId, Vec<bool>)>,
    magic_seen: FxHashSet<String>,
    magic_rule_count: usize,
}

impl<'a> MagicBuilder<'a> {
    fn new(src: &'a Program) -> Self {
        let n = src.idb_count();
        let mut rules_by_head = vec![Vec::new(); n];
        for (i, rule) in src.rules.iter().enumerate() {
            if let PredRef::Idb(h) = rule.head.pred {
                rules_by_head[h.index()].push(i);
            }
        }
        // Negated predicates — and everything their rules depend on —
        // must keep their exact original extension: restricting them by
        // demand would change what the negation filters out.
        let mut needs_full = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for rule in &src.rules {
            for lit in &rule.body {
                if let (false, PredRef::Idb(q)) = (lit.positive, lit.atom.pred) {
                    if !needs_full[q.index()] {
                        needs_full[q.index()] = true;
                        stack.push(q.index());
                    }
                }
            }
        }
        while let Some(p) = stack.pop() {
            for &ri in &rules_by_head[p] {
                for lit in &src.rules[ri].body {
                    if let PredRef::Idb(q) = lit.atom.pred {
                        if !needs_full[q.index()] {
                            needs_full[q.index()] = true;
                            stack.push(q.index());
                        }
                    }
                }
            }
        }
        MagicBuilder {
            src,
            out: Program::default(),
            needs_full,
            rules_by_head,
            adorned: FxHashMap::default(),
            magic: FxHashMap::default(),
            full_done: vec![false; n],
            worklist: Vec::new(),
            magic_seen: FxHashSet::default(),
            magic_rule_count: 0,
        }
    }

    /// Interns predicate `p` under its original name and emits its
    /// original rules verbatim (bodies remapped recursively). Terminates
    /// on cycles because `full_done` is set before recursing.
    fn ensure_full(&mut self, p: IdbId) -> IdbId {
        let id = self
            .out
            .intern_idb(
                &self.src.idb_names[p.index()],
                self.src.idb_arities[p.index()],
            )
            .expect("full predicates keep their original arity");
        if !self.full_done[p.index()] {
            self.full_done[p.index()] = true;
            for ri in self.rules_by_head[p.index()].clone() {
                let mut rule = self.src.rules[ri].clone();
                rule.head.pred = PredRef::Idb(id);
                for lit in &mut rule.body {
                    if let PredRef::Idb(q) = lit.atom.pred {
                        lit.atom.pred = PredRef::Idb(self.ensure_full(q));
                    }
                }
                self.out.rules.push(rule);
            }
        }
        id
    }

    /// The adorned version of `p` under `adorn` (original name when all
    /// positions are free), scheduling its rules for rewriting on first
    /// use. Predicates negation reaches stay full.
    fn ensure_adorned(&mut self, p: IdbId, adorn: Vec<bool>) -> IdbId {
        if self.needs_full[p.index()] {
            return self.ensure_full(p);
        }
        let key = (p.0, adorn.clone());
        if let Some(&id) = self.adorned.get(&key) {
            return id;
        }
        let name = adorned_name(&self.src.idb_names[p.index()], &adorn);
        let id = self
            .out
            .intern_idb(&name, self.src.idb_arities[p.index()])
            .expect("adorned names are fresh");
        self.adorned.insert(key, id);
        self.worklist.push((p, adorn));
        id
    }

    /// The magic (demand) predicate for `p` under `adorn`; arity = number
    /// of bound positions.
    fn magic_id(&mut self, p: IdbId, adorn: &[bool]) -> IdbId {
        let key = (p.0, adorn.to_vec());
        if let Some(&id) = self.magic.get(&key) {
            return id;
        }
        let tag: String = adorn.iter().map(|&b| if b { 'b' } else { 'f' }).collect();
        let arity = adorn.iter().filter(|&&b| b).count();
        let id = self
            .out
            .intern_idb(
                &format!("m_{}[{tag}]", self.src.idb_names[p.index()]),
                arity,
            )
            .expect("magic names are fresh");
        self.magic.insert(key, id);
        id
    }

    /// Rewrites every rule of `p` for the adornment `adorn`.
    fn rewrite_pred(&mut self, p: IdbId, adorn: &[bool]) {
        for ri in self.rules_by_head[p.index()].clone() {
            self.rewrite_rule(p, adorn, ri);
        }
    }

    fn rewrite_rule(&mut self, p: IdbId, adorn: &[bool], ri: usize) {
        let rule = &self.src.rules[ri];
        let head_id = self.adorned[&(p.0, adorn.to_vec())];
        let mut bound = vec![false; rule.var_count as usize];
        let mut body_out: Vec<Literal> = Vec::new();

        // The magic filter: this rule only fires for demanded bindings.
        if adorn.iter().any(|&b| b) {
            let terms: Vec<Term> = rule
                .head
                .terms
                .iter()
                .zip(adorn)
                .filter(|&(_, &b)| b)
                .map(|(&t, _)| t)
                .collect();
            for t in &terms {
                if let Term::Var(v) = t {
                    bound[v.index()] = true;
                }
            }
            let magic = self.magic_id(p, adorn);
            body_out.push(Literal {
                atom: Atom {
                    pred: PredRef::Idb(magic),
                    terms,
                },
                positive: true,
            });
        }

        let src_body = rule.body.clone();
        let (head_terms, var_count, var_names) = (
            rule.head.terms.clone(),
            rule.var_count,
            rule.var_names.clone(),
        );
        for lit in &src_body {
            let rewritten = match lit.atom.pred {
                PredRef::Edb(_) => lit.clone(),
                PredRef::Idb(q) if !lit.positive || self.needs_full[q.index()] => Literal {
                    atom: Atom {
                        pred: PredRef::Idb(self.ensure_full(q)),
                        terms: lit.atom.terms.clone(),
                    },
                    positive: lit.positive,
                },
                PredRef::Idb(q) => {
                    let sub_adorn: Vec<bool> = lit
                        .atom
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => bound[v.index()],
                        })
                        .collect();
                    if sub_adorn.iter().any(|&b| b) {
                        self.emit_magic_rule(q, &sub_adorn, lit, &body_out, var_count, &var_names);
                    }
                    Literal {
                        atom: Atom {
                            pred: PredRef::Idb(self.ensure_adorned(q, sub_adorn)),
                            terms: lit.atom.terms.clone(),
                        },
                        positive: true,
                    }
                }
            };
            if rewritten.positive {
                for v in rewritten.atom.vars() {
                    bound[v.index()] = true;
                }
            }
            body_out.push(rewritten);
        }

        self.out.rules.push(Rule {
            head: Atom {
                pred: PredRef::Idb(head_id),
                terms: head_terms,
            },
            body: body_out,
            var_count,
            var_names: var_names.clone(),
        });
    }

    /// Emits `m_q[β'](bound args) :- <positive prefix of the rewritten
    /// body so far>`, skipping exact duplicates and the tautological
    /// single-literal self-loop.
    fn emit_magic_rule(
        &mut self,
        q: IdbId,
        sub_adorn: &[bool],
        lit: &Literal,
        body_so_far: &[Literal],
        var_count: u32,
        var_names: &[String],
    ) {
        let magic = self.magic_id(q, sub_adorn);
        let head = Atom {
            pred: PredRef::Idb(magic),
            terms: lit
                .atom
                .terms
                .iter()
                .zip(sub_adorn)
                .filter(|&(_, &b)| b)
                .map(|(&t, _)| t)
                .collect(),
        };
        let body: Vec<Literal> = body_so_far.iter().filter(|l| l.positive).cloned().collect();
        if body.len() == 1 && body[0].atom == head {
            return; // m_q(X) :- m_q(X).
        }
        let rule = Rule {
            head,
            body,
            var_count,
            var_names: var_names.to_vec(),
        };
        if self.magic_seen.insert(rule_key(&rule)) {
            self.magic_rule_count += 1;
            self.out.rules.push(rule);
        }
    }
}

/// The magic-set demand transformation keyed by the declared `outputs`
/// (queried all-free; bindings propagate left to right through rule
/// bodies). Output and fully-materialized predicates keep their original
/// names, so result lookups by name keep working. Returns
/// `program: None` when no bound adornment arises — the rewrite would
/// just be a renaming. The caller should fall back to the original
/// program if the rewrite fails to stratify.
pub fn magic_program(program: &Program, outputs: &[IdbId]) -> MagicOutcome {
    let inert = |full_preds: Vec<String>| MagicOutcome {
        program: None,
        adorned: 0,
        magic_rules: 0,
        full_preds,
    };
    if outputs.is_empty()
        || program.rules.len() > 4 * MAX_RULES
        || program
            .rules
            .iter()
            .any(|r| !r.is_safe() || matches!(r.head.pred, PredRef::Edb(_)))
    {
        return inert(Vec::new());
    }
    let mut b = MagicBuilder::new(program);
    for &o in outputs {
        let adorn = vec![false; program.idb_arities[o.index()]];
        b.ensure_adorned(o, adorn);
    }
    while let Some((p, adorn)) = b.worklist.pop() {
        b.rewrite_pred(p, &adorn);
    }
    let mut full_preds: Vec<String> = b
        .full_done
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d)
        .map(|(i, _)| program.idb_names[i].clone())
        .collect();
    full_preds.sort_unstable();
    if b.magic.is_empty() {
        return inert(full_preds);
    }
    MagicOutcome {
        program: Some(b.out),
        adorned: b.adorned.len(),
        magic_rules: b.magic_rule_count,
        full_preds,
    }
}

/// Runs the full pipeline in place — minimization, bounded-recursion
/// elimination, then (if any output admits a bound adornment and the
/// rewrite stratifies) the magic-set transformation — and reports what
/// happened. `outputs` are predicate ids of the *input* program; they
/// stay valid across the first two passes because predicates are never
/// renumbered.
pub fn optimize(program: &mut Program, outputs: &[IdbId]) -> TransformSummary {
    optimize_with_limits(program, outputs, None)
}

/// Budget-governed [`optimize`]: the containment probes of the first two
/// passes run under `limits` (one shared meter across all probes); the
/// magic-set rewrite is purely syntactic and never needs a budget. On a
/// trip the affected pass degrades to "not applied" and
/// [`TransformSummary::budget_tripped`] is set.
pub fn optimize_with_limits(
    program: &mut Program,
    outputs: &[IdbId],
    limits: Option<&EvalLimits>,
) -> TransformSummary {
    let (minimized, min_tripped) = minimize_with_limits(program, limits);
    let (bounded, scc_tripped) = eliminate_bounded_recursion_with_limits(program, limits);
    let magic = magic_program(program, outputs);
    let mut summary = TransformSummary {
        removed_rules: minimized.removed_rules,
        condensed_literals: minimized.condensed_literals,
        bounded_sccs: bounded.len(),
        magic_applied: false,
        magic_adorned: magic.adorned,
        magic_rules: magic.magic_rules,
        budget_tripped: min_tripped || scc_tripped,
    };
    if let Some(rewritten) = magic.program {
        if crate::stratify::stratify(&rewritten).is_ok() {
            summary.magic_applied = true;
            *program = rewritten;
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvalOptions;
    use crate::parser::parse_program;
    use mdtw_structure::{Domain, ElemId, Signature, Structure};
    use std::sync::Arc;

    fn chain(n: usize) -> Structure {
        let sig = Arc::new(Signature::from_pairs([
            ("e", 2),
            ("node", 1),
            ("source", 1),
        ]));
        let mut s = Structure::new(sig, Domain::anonymous(n));
        let e = s.signature().lookup("e").unwrap();
        let node = s.signature().lookup("node").unwrap();
        let source = s.signature().lookup("source").unwrap();
        for i in 0..n {
            s.insert(node, &[ElemId(i as u32)]);
        }
        for i in 0..n - 1 {
            s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
        }
        s.insert(source, &[ElemId(0)]);
        s
    }

    #[test]
    fn redundant_rule_is_detected_semantically() {
        // The second rule is an instance of the first (a homomorphic
        // image), but not a syntactic duplicate.
        let s = chain(4);
        let p = parse_program(
            "q(X) :- e(X, Y).\n\
             q(X) :- e(X, Y), node(Y).",
            &s,
        )
        .unwrap();
        assert_eq!(redundant_rules(&p), vec![false, true]);
    }

    #[test]
    fn recursive_rule_subsumed_by_exit_rule() {
        // reach ranges over all of node either way: the recursive rule is
        // semantically redundant given the exit rule.
        let s = chain(4);
        let p = parse_program(
            "reach(Y) :- e(X, Y).\n\
             reach(Y) :- reach(X), e(X, Y).",
            &s,
        )
        .unwrap();
        assert_eq!(redundant_rules(&p), vec![false, true]);
    }

    #[test]
    fn independent_rules_are_kept() {
        let s = chain(4);
        let p = parse_program(
            "q(X) :- source(X).\n\
             q(Y) :- e(X, Y).",
            &s,
        )
        .unwrap();
        assert_eq!(redundant_rules(&p), vec![false, false]);
    }

    #[test]
    fn condensation_drops_homomorphically_redundant_literals() {
        let s = chain(4);
        let mut p = parse_program("q(X) :- e(X, Y), e(X, Z).", &s).unwrap();
        let report = minimize(&mut p);
        assert_eq!(report.condensed_literals, 1);
        assert_eq!(p.rules[0].body.len(), 1);
        // Head variable is still bound by the remaining literal.
        assert!(p.rules[0].is_safe());
        // A rule where both literals are needed stays intact.
        let mut p = parse_program("q(X) :- e(X, Y), e(Y, X).", &s).unwrap();
        assert_eq!(minimize(&mut p).condensed_literals, 0);
        assert_eq!(p.rules[0].body.len(), 2);
    }

    #[test]
    fn bounded_tc_is_rewritten_nonrecursive() {
        // reach already covers every edge target, so the recursive rule
        // adds nothing: bounded at stage 1.
        let s = chain(5);
        let p = parse_program(
            "reach(Y) :- e(_X, Y).\n\
             reach(Y) :- reach(X), e(X, Y).",
            &s,
        )
        .unwrap();
        let sccs = bounded_sccs(&p);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].preds, vec!["reach".to_owned()]);
        assert_eq!(sccs[0].stage, 1);
        let mut rewritten = p.clone();
        let proofs = eliminate_bounded_recursion(&mut rewritten);
        assert_eq!(proofs.len(), 1);
        assert_eq!(crate::stratify::recursive_idb_scc_count(&rewritten), 0);
        assert_eq!(rewritten.spans.len(), rewritten.rules.len());
        // Same model.
        let a = Evaluator::new(p).unwrap().evaluate(&s).unwrap();
        let b = Evaluator::new(rewritten).unwrap().evaluate(&s).unwrap();
        let reach = IdbId(0);
        assert_eq!(a.store.tuples(reach), b.store.tuples(reach));
        assert!(!b.store.tuples(reach).is_empty());
    }

    #[test]
    fn true_transitive_closure_is_not_bounded() {
        let s = chain(5);
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\n\
             path(X, Z) :- path(X, Y), e(Y, Z).",
            &s,
        )
        .unwrap();
        assert!(bounded_sccs(&p).is_empty());
    }

    #[test]
    fn magic_rewrite_restricts_point_query() {
        let s = chain(30);
        let src = "path(X, Y) :- e(X, Y).\n\
                   path(X, Z) :- path(X, Y), e(Y, Z).\n\
                   answer(Y) :- source(X), path(X, Y).";
        let p = parse_program(src, &s).unwrap();
        let answer_id = p.idb("answer").unwrap();
        let outcome = magic_program(&p, &[answer_id]);
        let magic = outcome.program.expect("source binds path's first slot");
        assert!(outcome.magic_rules >= 1);
        assert!(outcome.adorned >= 2, "answer[ff-free] and path[bf]");
        assert!(outcome.full_preds.is_empty());
        assert!(crate::stratify::stratify(&magic).is_ok());

        let mut full = Evaluator::with_options(p, EvalOptions::new()).unwrap();
        let mut demand = Evaluator::with_options(magic, EvalOptions::new()).unwrap();
        let a = full.evaluate(&s).unwrap();
        let b = demand.evaluate(&s).unwrap();
        let fa = full.program().idb("answer").unwrap();
        let fb = demand.program().idb("answer").unwrap();
        assert_eq!(a.store.tuples(fa), b.store.tuples(fb));
        assert!(!b.store.tuples(fb).is_empty());
        assert!(
            b.stats.facts * 2 < a.stats.facts,
            "demand evaluation derives far fewer facts ({} vs {})",
            b.stats.facts,
            a.stats.facts
        );
    }

    #[test]
    fn magic_keeps_negated_predicates_fully_materialized() {
        // `reach` is negated, so it (and its whole dependency cone) must
        // keep its exact original extension; `miss` is only referenced
        // positively and is demand-restricted to `m_miss[b]`.
        let s = chain(6);
        let src = "reach(X) :- source(X).\n\
                   reach(Y) :- reach(X), e(X, Y).\n\
                   miss(Y) :- e(X, Y), !reach(Y).\n\
                   answer(Y) :- source(X), e(X, Y), miss(Y).";
        let p = parse_program(src, &s).unwrap();
        let answer_id = p.idb("answer").unwrap();
        let outcome = magic_program(&p, &[answer_id]);
        assert_eq!(outcome.full_preds, vec!["reach".to_owned()]);
        let magic = outcome.program.expect("e(X, Y) binds miss's argument");
        assert!(crate::stratify::stratify(&magic).is_ok());
        let mut full = Evaluator::new(p).unwrap();
        let mut demand = Evaluator::new(magic).unwrap();
        let a = full.evaluate(&s).unwrap();
        let b = demand.evaluate(&s).unwrap();
        let fa = full.program().idb("answer").unwrap();
        let fb = demand.program().idb("answer").unwrap();
        assert_eq!(a.store.tuples(fa), b.store.tuples(fb));
    }

    #[test]
    fn magic_is_inert_without_bound_adornments() {
        let s = chain(4);
        let p = parse_program("q(X) :- node(X).", &s).unwrap();
        let q = p.idb("q").unwrap();
        let outcome = magic_program(&p, &[q]);
        assert!(outcome.program.is_none());
        assert_eq!(outcome.magic_rules, 0);
    }

    #[test]
    fn minimization_subsumes_trivially_bounded_recursion() {
        // The recursive rule is uniformly contained in the exit rule, so
        // the pipeline's *first* stage already removes it — nothing is
        // left for boundedness to prove.
        let s = chain(8);
        let src = "reach(Y) :- e(_X, Y).\n\
                   reach(Y) :- reach(X), e(X, Y).";
        let mut p = parse_program(src, &s).unwrap();
        let reach_id = p.idb("reach").unwrap();
        let summary = optimize(&mut p, &[reach_id]);
        assert_eq!(summary.removed_rules, 1, "{summary:?}");
        assert_eq!(summary.bounded_sccs, 0, "{summary:?}");
        assert_eq!(crate::stratify::recursive_idb_scc_count(&p), 0);
    }

    #[test]
    fn optimize_pipeline_reports_every_stage() {
        // `q` is the symmetric closure of `e`: bounded (stage 2) but the
        // flip rule is *not* redundant, so it reaches the boundedness
        // stage; `big` condenses; the point query gets magic sets.
        let s = chain(8);
        let src = "q(X, Y) :- e(X, Y).\n\
                   q(X, Y) :- q(Y, X).\n\
                   big(X) :- node(X), node(X).\n\
                   answer(Y) :- source(X), q(X, Y), big(Y).";
        let mut p = parse_program(src, &s).unwrap();
        let answer_id = p.idb("answer").unwrap();
        let plain = Evaluator::new(p.clone()).unwrap().evaluate(&s).unwrap();
        let summary = optimize(&mut p, &[answer_id]);
        assert_eq!(summary.removed_rules, 0, "{summary:?}");
        assert_eq!(summary.condensed_literals, 1, "{summary:?}");
        assert_eq!(summary.bounded_sccs, 1, "{summary:?}");
        assert!(summary.magic_applied, "{summary:?}");
        let mut opt = Evaluator::new(p.clone()).unwrap();
        let b = opt.evaluate(&s).unwrap();
        let fb = opt.program().idb("answer").unwrap();
        assert_eq!(plain.store.tuples(answer_id), b.store.tuples(fb));
        assert!(!b.store.tuples(fb).is_empty());
        assert_eq!(crate::stratify::recursive_idb_scc_count(opt.program()), 0);
    }
}

#[cfg(test)]
mod probe_magic_const {
    use super::*;
    use crate::evaluator::EvalOptions;
    use crate::parser::parse_program;
    use mdtw_structure::{Domain, ElemId, Signature, Structure};
    use std::sync::Arc;

    #[test]
    fn magic_with_constant_bound_first_literal() {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let mut dom = Domain::new();
        dom.insert("a");
        for i in 1..6 {
            dom.insert(format!("n{i}"));
        }
        let mut s = Structure::new(Arc::clone(&sig), dom);
        let e = sig.lookup("e").unwrap();
        for i in 0..5u32 {
            s.insert(e, &[ElemId(i), ElemId(i + 1)]);
        }
        let src = "path(X, Y) :- e(X, Y).\n\
                   path(X, Z) :- path(X, Y), e(Y, Z).\n\
                   answer(Y) :- path(a, Y).";
        let p = parse_program(src, &s).unwrap();
        let answer = p.idb("answer").unwrap();
        let outcome = magic_program(&p, &[answer]);
        let magic = outcome.program.expect("constant binds path's first slot");
        let mut full = Evaluator::new(p).unwrap();
        let mut demand = Evaluator::with_options(magic, EvalOptions::new()).unwrap();
        let a = full.evaluate(&s).unwrap();
        let b = demand.evaluate(&s).unwrap();
        let fa = full.program().idb("answer").unwrap();
        let fb = demand.program().idb("answer").unwrap();
        assert_eq!(
            a.store.tuples(fa),
            b.store.tuples(fb),
            "magic changed the answer"
        );
        assert!(!b.store.tuples(fb).is_empty(), "answer must be nonempty");
    }
}
