//! Bottom-up evaluation: naive and semi-naive least-fixpoint computation
//! of semipositive datalog over a finite structure (paper §2.4).
//!
//! Three engines live here:
//!
//! * [`eval_naive`] — the executable definition of the minimal-model
//!   semantics (all rules, every round, no indexes). Ground truth.
//! * [`eval_seminaive`] — the production engine: per-rule join plans
//!   (module [`plan`](crate::plan)) probe lazily built secondary indexes
//!   ([`mdtw_structure::PosIndex`]) instead of scanning whole relations,
//!   the frontier is a set of per-predicate delta relations, and rules
//!   with several intensional body atoms use the textbook semi-naive
//!   split — for the delta at body position *i*, positions before *i*
//!   read the pre-round store and positions after read the updated
//!   store — so no instantiation fires twice in a round.
//! * [`eval_seminaive_scan`] — the pre-index engine (nested-loop joins,
//!   one shared delta set, full store on non-delta positions), kept as a
//!   differential-testing oracle and scan baseline for the
//!   `join_indexing` bench. It re-fires instantiations whose atoms match
//!   several delta tuples; its fixpoint is nevertheless correct.
//!
//! The *linear-time* evaluation of quasi-guarded programs (Theorem 4.4)
//! lives in the `ground` and `horn` modules.

use crate::ast::{Atom, IdbId, PredRef, Program, Rule, Term, Var};
use crate::evaluator::EvalError;
use crate::limits::Governor;
use crate::plan::{Access, JoinPlan, RulePlans};
use crate::profile::{LitCount, Profiler};
use mdtw_structure::fx::{FxHashMap, FxHashSet};
use mdtw_structure::{ElemId, PosIndex, Relation, Structure};
use std::sync::Arc;

/// The scan engine's semi-naive frontier: the set of IDB facts derived in
/// the previous iteration, keyed by predicate.
type DeltaSet = FxHashSet<(IdbId, Box<[ElemId]>)>;

/// The computed least fixpoint: one indexed relation per intensional
/// predicate. The relations expose the same secondary-index layer as the
/// extensional [`Relation`]s, so joins probe IDB and EDB atoms uniformly.
#[derive(Debug, Clone)]
pub struct IdbStore {
    rels: Vec<Relation>,
    by_name: FxHashMap<String, IdbId>,
}

impl IdbStore {
    fn new(program: &Program) -> Self {
        Self {
            rels: program
                .idb_arities
                .iter()
                .map(|&a| Relation::new(a))
                .collect(),
            by_name: program
                .idb_names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), IdbId(i as u32)))
                .collect(),
        }
    }

    /// True if `pred(args)` is in the least fixpoint.
    pub fn holds(&self, pred: IdbId, args: &[ElemId]) -> bool {
        self.rels[pred.index()].contains(args)
    }

    /// Looks a predicate up by name and tests membership. The name map is
    /// built once at store construction, so this is a hash lookup, not a
    /// scan over the predicate table.
    pub fn holds_named(&self, name: &str, args: &[ElemId]) -> bool {
        self.by_name
            .get(name)
            .is_some_and(|id| self.rels[id.index()].contains(args))
    }

    /// All tuples of `pred`, sorted for determinism.
    pub fn tuples(&self, pred: IdbId) -> Vec<Vec<ElemId>> {
        let mut out: Vec<Vec<ElemId>> = self.rels[pred.index()]
            .iter()
            .map(<[mdtw_structure::ElemId]>::to_vec)
            .collect();
        out.sort();
        out
    }

    /// The elements `x` with `pred(x)` in the fixpoint (unary predicates).
    pub fn unary(&self, pred: IdbId) -> Vec<ElemId> {
        let mut out: Vec<ElemId> = self.rels[pred.index()]
            .iter()
            .map(|t| {
                debug_assert_eq!(t.len(), 1);
                t[0]
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Total number of derived facts.
    pub fn fact_count(&self) -> usize {
        self.rels.iter().map(Relation::len).sum()
    }

    /// The relation of `pred` (with its secondary-index layer), e.g. to
    /// iterate derived tuples without the sorted copy of
    /// [`IdbStore::tuples`]. The stratified evaluator reads lower strata
    /// out of the store through this accessor when materializing them as
    /// extensional relations.
    #[inline]
    pub fn relation(&self, pred: IdbId) -> &Relation {
        &self.rels[pred.index()]
    }

    fn insert(&mut self, pred: IdbId, args: &[ElemId]) -> bool {
        self.rels[pred.index()].insert(args)
    }

    /// Creates an empty store shaped for `program` (used by the
    /// quasi-guarded evaluator to decode LTUR models).
    pub(crate) fn new_for(program: &Program) -> Self {
        Self::new(program)
    }

    /// Direct insertion (used when decoding a ground model and when
    /// folding stratum outputs into the final store) — takes a borrowed
    /// tuple so bulk copies stay allocation-free.
    pub(crate) fn insert_raw(&mut self, pred: IdbId, args: &[ElemId]) {
        self.rels[pred.index()].insert(args);
    }

    /// Direct removal — the DRed overdeletion path of incremental
    /// maintenance. Returns `false` if the fact was not in the store.
    pub(crate) fn retract_raw(&mut self, pred: IdbId, args: &[ElemId]) -> bool {
        self.rels[pred.index()].retract(args)
    }
}

/// Evaluation statistics (for the linearity experiments and the
/// `bench_report` perf trajectory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of successful rule instantiations considered (including
    /// re-derivations).
    pub firings: usize,
    /// Number of distinct facts derived.
    pub facts: usize,
    /// Number of fixpoint rounds.
    pub rounds: usize,
    /// Secondary-index probes performed (always 0 for the naive and scan
    /// engines, which never probe).
    pub index_probes: usize,
    /// Unindexed enumerations of an EDB relation or the IDB store,
    /// counted by all three engines (enumerating a round's delta — the
    /// point of semi-naive evaluation — is not counted).
    pub full_scans: usize,
    /// Candidate tuples enumerated across all literal accesses, counted
    /// by all three engines.
    pub tuples_considered: usize,
    /// Derivations that resolved to an already-interned tuple (in the
    /// store or the round's staging relation) instead of allocating new
    /// storage: `interned_hits + facts` equals the number of firings with
    /// an intensional head. Indexed engine only.
    pub interned_hits: usize,
    /// 1 if this evaluation reused compiled rule plans from a
    /// [`PlanCache`](crate::cache::PlanCache), 0 if it had to plan.
    /// Indexed engine only (the stratified pipeline reports one potential
    /// hit per stratum).
    pub plan_cache_hits: usize,
    /// Number of negative-literal membership checks performed, counted by
    /// all engines (a short-circuited conjunction counts only the checks
    /// it actually ran).
    pub negative_checks: usize,
    /// Number of evaluation strata: 1 for the single-pass engines, the
    /// stratification's stratum count for
    /// [`eval_stratified`](crate::stratify::eval_stratified).
    pub strata: usize,
    /// Amortized limit checkpoints the resource governor ran (0 when the
    /// evaluation carried no [`EvalLimits`](crate::limits::EvalLimits)).
    /// Session-level readback of the shared meter, reported per
    /// evaluation.
    pub limit_checks: usize,
    /// Fuel units the evaluation consumed against its
    /// [`EvalLimits`](crate::limits::EvalLimits) budget (0 without
    /// limits). Like [`EvalStats::limit_checks`], a per-evaluation delta
    /// of the shared meter.
    pub fuel_spent: u64,
}

impl EvalStats {
    /// Adds `part`'s additive work counters into `self` — the one place
    /// the field list is enumerated, used by the stratified pipeline's
    /// per-stratum totals and by multi-evaluation reports. `strata` is
    /// deliberately **not** summed: it describes an evaluation's shape,
    /// not accumulated work, so callers set it themselves.
    pub fn merge_counters(&mut self, part: &EvalStats) {
        self.firings += part.firings;
        self.facts += part.facts;
        self.rounds += part.rounds;
        self.index_probes += part.index_probes;
        self.full_scans += part.full_scans;
        self.tuples_considered += part.tuples_considered;
        self.interned_hits += part.interned_hits;
        self.plan_cache_hits += part.plan_cache_hits;
        self.negative_checks += part.negative_checks;
        self.limit_checks += part.limit_checks;
        self.fuel_spent += part.fuel_spent;
    }
}

/// The semipositive engines' input contract as a typed error. The parser
/// accepts any *stratified* program, so a negated intensional literal
/// could reach the one-shot engine entry points; without this check it
/// would surface as a confusing `unreachable!` deep inside the join loop.
pub(crate) fn check_semipositive(program: &Program) -> Result<(), EvalError> {
    program
        .check_semipositive()
        .map_err(|message| EvalError::NotSemipositive { message })
}

/// The debug twin of [`check_semipositive`] for call sites where
/// semipositivity is guaranteed by construction (an [`Evaluator`]
/// (crate::evaluator::Evaluator) session rejects multi-stratum programs
/// on semipositive-only engines before `evaluate` can run).
pub(crate) fn debug_assert_semipositive(program: &Program) {
    debug_assert!(
        program.check_semipositive().is_ok(),
        "caller must guarantee semipositivity"
    );
}

/// Naive evaluation: apply all rules until nothing changes.
///
/// # Errors
/// [`EvalError::NotSemipositive`] if the program negates an intensional
/// atom (use an `Evaluator` session, which auto-dispatches to the
/// stratified pipeline) or is otherwise ill-formed.
#[deprecated(
    since = "0.2.0",
    note = "construct an `Evaluator` session with `Engine::Naive` \
            (`Evaluator::with_options(program, EvalOptions::new().engine(Engine::Naive))`)"
)]
pub fn eval_naive(
    program: &Program,
    structure: &Structure,
) -> Result<(IdbStore, EvalStats), EvalError> {
    check_semipositive(program)?;
    Ok(naive_fixpoint(
        program,
        structure,
        &mut Governor::new(None),
        None,
    ))
}

/// The naive engine proper (shared by the deprecated [`eval_naive`]
/// wrapper and [`Engine::Naive`](crate::evaluator::Engine::Naive)
/// sessions). The caller guarantees semipositivity. On a governor trip
/// the store holds the facts derived so far — a sound subset of the
/// least fixpoint.
pub(crate) fn naive_fixpoint(
    program: &Program,
    structure: &Structure,
    gov: &mut Governor<'_>,
    mut prof: Option<&mut Profiler>,
) -> (IdbStore, EvalStats) {
    if let Some(p) = prof.as_deref_mut() {
        p.begin_stratum(0, program, None);
    }
    let mut store = IdbStore::new(program);
    let mut stats = EvalStats {
        strata: 1,
        ..EvalStats::default()
    };
    loop {
        if gov.round(stats.tuples_considered, stats.facts) {
            break;
        }
        stats.rounds += 1;
        let mut new_facts: Vec<(IdbId, Box<[ElemId]>)> = Vec::new();
        let mut stopped = false;
        for (ri, rule) in program.rules.iter().enumerate() {
            stopped = profiled_match(
                rule,
                ri,
                structure,
                &store,
                None,
                &mut stats,
                gov,
                &mut prof,
                &mut |head_args| {
                    if let PredRef::Idb(id) = rule.head.pred {
                        if !store.holds(id, &head_args) {
                            new_facts.push((id, head_args));
                        }
                    }
                },
            );
            if stopped {
                break;
            }
        }
        // Facts staged before a trip are still derivable, so folding them
        // in keeps the partial store a subset of the fixpoint.
        let mut changed = false;
        for (id, args) in new_facts {
            if store.insert(id, &args) {
                changed = true;
                stats.facts += 1;
            }
        }
        if stopped || !changed {
            break;
        }
    }
    if let Some(p) = prof {
        if gov.tripped().is_some() {
            p.mark_trip(0);
        }
        p.end_stratum(stats.rounds, stats.facts);
    }
    (store, stats)
}

// ---------------------------------------------------------------------------
// Indexed semi-naive engine
// ---------------------------------------------------------------------------

/// The per-predicate delta relations of one semi-naive round. Plugged into
/// the same index layer as the store, so delta atoms with bound arguments
/// are probed rather than scanned. Recycled across rounds ([`Self::clear`])
/// so round turnover reallocates nothing.
#[derive(Debug)]
struct DeltaStore {
    rels: Vec<Relation>,
    count: usize,
}

impl DeltaStore {
    fn new(program: &Program) -> Self {
        Self {
            rels: program
                .idb_arities
                .iter()
                .map(|&a| Relation::new(a))
                .collect(),
            count: 0,
        }
    }

    fn insert(&mut self, pred: IdbId, args: &[ElemId]) {
        if self.rels[pred.index()].insert(args) {
            self.count += 1;
        }
    }

    fn clear(&mut self) {
        for rel in &mut self.rels {
            rel.clear();
        }
        self.count = 0;
    }

    #[inline]
    fn rel(&self, pred: IdbId) -> &Relation {
        &self.rels[pred.index()]
    }
}

/// Per-predicate staging relations collecting one round's derivations
/// before they are folded into the store (facts derived in round *i*
/// become visible in round *i+1*). Arena-backed like everything else, so
/// the derive path stages tuples without boxing them; recycled across
/// rounds.
#[derive(Debug)]
struct FreshStore {
    rels: Vec<Relation>,
}

impl FreshStore {
    fn new(program: &Program) -> Self {
        Self {
            rels: program
                .idb_arities
                .iter()
                .map(|&a| Relation::new(a))
                .collect(),
        }
    }

    /// Stages a derivation; returns `false` if it was already staged this
    /// round (an interned-duplicate hit).
    #[inline]
    fn insert(&mut self, pred: IdbId, args: &[ElemId]) -> bool {
        self.rels[pred.index()].insert(args)
    }

    fn clear(&mut self) {
        for rel in &mut self.rels {
            rel.clear();
        }
    }
}

/// Everything a plan execution needs to look at (bundled so the recursion
/// stays within clippy's argument budget).
struct PlanCtx<'a> {
    rule: &'a Rule,
    plan: &'a JoinPlan,
    /// `Some((body index of the delta literal, delta store))` for delta
    /// passes, `None` for the unconstrained round-0 pass.
    delta: Option<(usize, &'a DeltaStore)>,
    /// `Some((body index, delta relation))` for an *extensional* delta
    /// pass — the incremental-maintenance seed pass, where one EDB body
    /// literal enumerates the batch's inserted tuples instead of the full
    /// base relation. `None` everywhere else.
    edb_delta: Option<(usize, &'a Relation)>,
    structure: &'a Structure,
    store: &'a IdbStore,
}

/// Semi-naive evaluation over indexed join plans: after the first round, a
/// rule fires only with at least one body atom taken from the previous
/// round's delta, and each body literal enumerates only the tuples
/// matching its already-bound arguments (via [`Relation::index_on`]).
///
/// Compiled plans are memoized in the process-wide
/// [`PlanCache`](crate::cache::PlanCache): repeated evaluations of the
/// same program skip planning entirely and report it in
/// [`EvalStats::plan_cache_hits`].
///
/// # Errors
/// [`EvalError::NotSemipositive`] if the program negates an intensional
/// atom (use an `Evaluator` session, which auto-dispatches to the
/// stratified pipeline) or is otherwise ill-formed.
#[deprecated(
    since = "0.2.0",
    note = "construct an `Evaluator` session (`Evaluator::new(program)?.evaluate(&structure)`) \
            so repeated evaluations reuse one analysis, plan cache and scratch buffers"
)]
pub fn eval_seminaive(
    program: &Program,
    structure: &Structure,
) -> Result<(IdbStore, EvalStats), EvalError> {
    check_semipositive(program)?;
    let (plans, hit) = crate::cache::global_plan_cache().plans(program, structure);
    let stats = EvalStats {
        plan_cache_hits: usize::from(hit),
        strata: 1,
        ..EvalStats::default()
    };
    Ok(run_seminaive(program, structure, &plans, stats))
}

/// The recycled working set of the semi-naive round loop: the ping-ponged
/// per-predicate delta relations, the per-round staging relations, and
/// the probe-key/head scratch buffer. One instance per
/// [`Evaluator`](crate::evaluator::Evaluator) session, reused across
/// evaluations (and across the strata of one stratified evaluation —
/// every stratum sub-program shares the session program's predicate
/// table, so the shapes always match), so round turnover and session
/// reuse reallocate nothing beyond amortized arena growth.
#[derive(Debug)]
pub(crate) struct SeminaiveScratch {
    delta: DeltaStore,
    next: DeltaStore,
    fresh: FreshStore,
    key: Vec<ElemId>,
}

impl SeminaiveScratch {
    /// A scratch set shaped for `program`'s intensional predicates.
    pub(crate) fn new(program: &Program) -> Self {
        Self {
            delta: DeltaStore::new(program),
            next: DeltaStore::new(program),
            fresh: FreshStore::new(program),
            key: Vec::new(),
        }
    }

    /// Empties every buffer (arena capacity is retained) so a new
    /// evaluation starts from a clean slate.
    fn reset(&mut self) {
        self.delta.clear();
        self.next.clear();
        self.fresh.clear();
        self.key.clear();
    }
}

/// The semi-naive round loop, parameterized by pre-compiled plans, with a
/// one-shot scratch set and no governor (the deprecated-wrapper path).
pub(crate) fn run_seminaive(
    program: &Program,
    structure: &Structure,
    plans: &[RulePlans],
    stats: EvalStats,
) -> (IdbStore, EvalStats) {
    let mut scratch = SeminaiveScratch::new(program);
    run_seminaive_scratch(
        program,
        structure,
        plans,
        stats,
        &mut scratch,
        &mut Governor::new(None),
        None,
    )
}

/// The semi-naive round loop over caller-owned (session-recycled) scratch
/// buffers. On a governor trip the loop unwinds after folding the staged
/// derivations in, so the returned store is a sound subset of the least
/// fixpoint; the caller reads the trip off the governor.
///
/// Profiling: the caller opens/closes the stratum
/// ([`Profiler::begin_stratum`] / [`Profiler::end_stratum`] — it knows
/// the stratum index and rule-id mapping); this loop accounts the
/// per-rule passes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_seminaive_scratch(
    program: &Program,
    structure: &Structure,
    plans: &[RulePlans],
    mut stats: EvalStats,
    scratch: &mut SeminaiveScratch,
    gov: &mut Governor<'_>,
    mut prof: Option<&mut Profiler>,
) -> (IdbStore, EvalStats) {
    scratch.reset();
    let SeminaiveScratch {
        delta,
        next,
        fresh,
        key,
    } = scratch;
    let mut store = IdbStore::new(program);

    if gov.round(stats.tuples_considered, stats.facts) {
        return (store, stats);
    }

    // Round 0: all rules, unconstrained.
    stats.rounds += 1;
    for (ri, (rule, rp)) in program.rules.iter().zip(plans).enumerate() {
        let ctx = PlanCtx {
            rule,
            plan: &rp.base,
            delta: None,
            edb_delta: None,
            structure,
            store: &store,
        };
        if profiled_apply(&ctx, ri, &mut stats, fresh, key, gov, &mut prof) {
            break;
        }
    }
    // Two delta stores ping-pong across rounds: `delta` is read by the
    // round while `next` collects the survivors, then they swap and the
    // stale one is cleared (arena capacity is retained).
    merge_round(&mut store, delta, fresh, &mut stats, None);

    seminaive_rounds(
        program, structure, plans, &mut stats, &mut store, delta, next, fresh, key, gov, &mut prof,
        None,
    );
    (store, stats)
}

/// The delta-driven rounds of semi-naive evaluation: while the frontier
/// is non-empty, run every rule's delta passes, fold the staged
/// derivations in, and swap the frontier buffers. Shared between
/// from-scratch evaluation ([`run_seminaive_scratch`], which seeds the
/// frontier with round 0's output) and incremental maintenance
/// ([`run_increment`], which seeds it from a base-relation delta). When
/// `added` is `Some`, every fact that enters the store is also recorded
/// in the corresponding sink relation (the maintenance path's net-change
/// ledger).
#[allow(clippy::too_many_arguments)]
fn seminaive_rounds(
    program: &Program,
    structure: &Structure,
    plans: &[RulePlans],
    stats: &mut EvalStats,
    store: &mut IdbStore,
    delta: &mut DeltaStore,
    next: &mut DeltaStore,
    fresh: &mut FreshStore,
    key: &mut Vec<ElemId>,
    gov: &mut Governor<'_>,
    prof: &mut Option<&mut Profiler>,
    mut added: Option<&mut [Relation]>,
) {
    while delta.count > 0 {
        if gov.round(stats.tuples_considered, stats.facts) {
            break;
        }
        stats.rounds += 1;
        'rules: for (ri, (rule, rp)) in program.rules.iter().zip(plans).enumerate() {
            for (dpos, plan) in &rp.delta {
                let ctx = PlanCtx {
                    rule,
                    plan,
                    delta: Some((*dpos, &*delta)),
                    edb_delta: None,
                    structure,
                    store,
                };
                if profiled_apply(&ctx, ri, stats, fresh, key, gov, prof) {
                    break 'rules;
                }
            }
        }
        next.clear();
        merge_round(store, next, fresh, stats, added.as_deref_mut());
        std::mem::swap(delta, next);
    }
}

/// One incremental re-derivation pass: semi-naive evaluation seeded from
/// a *base-relation* delta instead of round 0's full rule sweep.
///
/// The seed round runs each rule once per changed positive EDB body
/// literal with that literal reading the batch's inserted tuples
/// (`edb_delta`, indexed by extensional predicate; an empty relation
/// means "unchanged"), on the already-updated `structure` — the textbook
/// semi-naive insertion delta, sound because a rule instantiation with
/// several inserted EDB tuples merely fires once per changed literal and
/// the store deduplicates. `seeds` (DRed's rederived survivors and
/// negation-driven insertions) are staged alongside. From there the
/// ordinary delta rounds run to fixpoint. Every fact that enters the
/// store is mirrored into `added`, the maintenance ledger the caller
/// diffs against the overdeletion set.
///
/// On a governor trip the pass unwinds early; the caller must treat the
/// view as unmaintained and fall back to full re-evaluation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_increment(
    program: &Program,
    structure: &Structure,
    plans: &[RulePlans],
    edb_plans: &[Vec<(usize, JoinPlan)>],
    edb_delta: &[Relation],
    seeds: &[(IdbId, Box<[ElemId]>)],
    store: &mut IdbStore,
    scratch: &mut SeminaiveScratch,
    gov: &mut Governor<'_>,
    added: &mut [Relation],
) -> EvalStats {
    scratch.reset();
    let SeminaiveScratch {
        delta,
        next,
        fresh,
        key,
    } = scratch;
    let mut stats = EvalStats::default();
    if gov.round(stats.tuples_considered, stats.facts) {
        return stats;
    }
    stats.rounds += 1;
    'rules: for (ri, (rule, rule_edb)) in program.rules.iter().zip(edb_plans).enumerate() {
        for (pos, plan) in rule_edb {
            let PredRef::Edb(p) = rule.body[*pos].atom.pred else {
                unreachable!("EDB delta plans target extensional literals")
            };
            let drel = &edb_delta[p.index()];
            if drel.is_empty() {
                continue;
            }
            let ctx = PlanCtx {
                rule,
                plan,
                delta: None,
                edb_delta: Some((*pos, drel)),
                structure,
                store,
            };
            if profiled_apply(&ctx, ri, &mut stats, fresh, key, gov, &mut None) {
                break 'rules;
            }
        }
    }
    for (id, args) in seeds {
        fresh.insert(*id, args);
    }
    merge_round(store, delta, fresh, &mut stats, Some(added));
    seminaive_rounds(
        program,
        structure,
        plans,
        &mut stats,
        store,
        delta,
        next,
        fresh,
        key,
        gov,
        &mut None,
        Some(added),
    );
    stats
}

/// Folds a round's staged derivations into the store; survivors (genuinely
/// new facts) become the next round's delta. Drains the staging store.
/// When `added` is `Some`, every genuinely new fact is mirrored into the
/// per-predicate sink relations (incremental maintenance's ledger of
/// facts added by a re-derivation pass).
fn merge_round(
    store: &mut IdbStore,
    delta: &mut DeltaStore,
    fresh: &mut FreshStore,
    stats: &mut EvalStats,
    mut added: Option<&mut [Relation]>,
) {
    for (idx, staged) in fresh.rels.iter().enumerate() {
        let id = IdbId(idx as u32);
        for args in staged.iter() {
            if store.rels[idx].insert(args) {
                stats.facts += 1;
                delta.insert(id, args);
                if let Some(sink) = added.as_deref_mut() {
                    sink[idx].insert(args);
                }
            }
        }
    }
    fresh.clear();
}

/// [`apply_plan`] under the profiler: at `Rules` detail and above, the
/// pass is timed (on the sampled passes [`Profiler::pass_timer`]
/// selects) and its [`EvalStats`] delta (plus, at `Literals`, the
/// per-literal trace) is folded into rule `ri`'s accumulator. With the
/// profiler off (or at `Strata`) this is exactly one branch on top of
/// the plain pass — the zero-cost-when-off fast path.
fn profiled_apply(
    ctx: &PlanCtx<'_>,
    ri: usize,
    stats: &mut EvalStats,
    out: &mut FreshStore,
    scratch: &mut Vec<ElemId>,
    gov: &mut Governor<'_>,
    prof: &mut Option<&mut Profiler>,
) -> bool {
    match prof.as_deref_mut() {
        Some(p) if p.rules_on() => {
            let before = *stats;
            let timer = p.pass_timer(ri);
            p.begin_pass(ctx.rule.body.len());
            let stop = apply_plan(ctx, stats, out, scratch, gov, p.trace());
            p.end_pass(
                ri,
                &before,
                stats,
                timer.map(|t| t.elapsed().as_nanos() as u64),
            );
            stop
        }
        _ => apply_plan(ctx, stats, out, scratch, gov, None),
    }
}

/// Runs one rule pass; returns `true` when the governor tripped and the
/// round loop should unwind.
fn apply_plan(
    ctx: &PlanCtx<'_>,
    stats: &mut EvalStats,
    out: &mut FreshStore,
    scratch: &mut Vec<ElemId>,
    gov: &mut Governor<'_>,
    trace: Option<&mut [LitCount]>,
) -> bool {
    let mut bindings: Vec<Option<ElemId>> = vec![None; ctx.rule.var_count as usize];
    for &ni in &ctx.plan.ground_negatives {
        stats.negative_checks += 1;
        if negative_holds(ctx, ni, &bindings, scratch) {
            return false;
        }
    }
    let execs = resolve_steps(ctx);
    descend_plan(
        ctx,
        &execs,
        0,
        &mut bindings,
        stats,
        out,
        scratch,
        gov,
        trace,
    )
}

/// True if the *atom* of negative literal `ni` holds in the structure
/// (i.e. the literal fails). Instantiates into `scratch` — no allocation.
fn negative_holds(
    ctx: &PlanCtx<'_>,
    ni: usize,
    bindings: &[Option<ElemId>],
    scratch: &mut Vec<ElemId>,
) -> bool {
    let atom = &ctx.rule.body[ni].atom;
    instantiate_into(atom, bindings, scratch);
    match atom.pred {
        PredRef::Edb(p) => ctx.structure.holds(p, scratch),
        PredRef::Idb(_) => unreachable!(
            "negated intensional literal in the semipositive engine; use eval_stratified"
        ),
    }
}

/// A plan step resolved against one pass's relations: the source
/// relation, the delta exclusion (for pre-round reads), and the probe
/// index. Resolved once per [`apply_plan`] call so the recursive join
/// touches no locks and clones no `Arc`s.
struct StepExec<'a> {
    rel: &'a Relation,
    /// `Some(delta relation)` when the step reads the pre-round store
    /// (store minus delta).
    exclude: Option<&'a Relation>,
    /// The secondary index probed by `Access::Probe` steps.
    index: Option<Arc<PosIndex>>,
    /// True when the step enumerates the round's delta relation.
    from_delta: bool,
}

fn resolve_steps<'a>(ctx: &PlanCtx<'a>) -> Vec<StepExec<'a>> {
    ctx.plan
        .steps
        .iter()
        .map(|step| {
            let lit = &ctx.rule.body[step.literal];
            let mut from_delta = false;
            let (rel, exclude): (&Relation, Option<&Relation>) = match lit.atom.pred {
                PredRef::Edb(p) => match ctx.edb_delta {
                    // The incremental seed pass: one EDB literal reads the
                    // batch's inserted tuples instead of the base relation.
                    Some((dpos, drel)) if step.literal == dpos => {
                        from_delta = true;
                        (drel, None)
                    }
                    _ => (ctx.structure.relation(p), None),
                },
                PredRef::Idb(id) => match ctx.delta {
                    None => (ctx.store.relation(id), None),
                    Some((dpos, ds)) => {
                        use std::cmp::Ordering;
                        match step.literal.cmp(&dpos) {
                            // The delta literal itself reads the frontier.
                            Ordering::Equal => {
                                from_delta = true;
                                (ds.rel(id), None)
                            }
                            // Body positions before the delta read the
                            // pre-round store, positions after read the
                            // updated store: an instantiation with several
                            // delta atoms fires exactly once, in the pass
                            // of its first delta position.
                            Ordering::Less => (ctx.store.relation(id), Some(ds.rel(id))),
                            Ordering::Greater => (ctx.store.relation(id), None),
                        }
                    }
                },
            };
            let index = match &step.access {
                Access::Scan => None,
                Access::Probe { positions } => Some(rel.index_on(positions)),
            };
            StepExec {
                rel,
                exclude,
                index,
                from_delta,
            }
        })
        .collect()
}

/// The recursive join; returns `true` when the governor tripped (the
/// amortized per-tuple check fired) and the whole pass should unwind.
#[allow(clippy::too_many_arguments)]
fn descend_plan(
    ctx: &PlanCtx<'_>,
    execs: &[StepExec<'_>],
    step_idx: usize,
    bindings: &mut Vec<Option<ElemId>>,
    stats: &mut EvalStats,
    out: &mut FreshStore,
    scratch: &mut Vec<ElemId>,
    gov: &mut Governor<'_>,
    mut trace: Option<&mut [LitCount]>,
) -> bool {
    if step_idx == ctx.plan.steps.len() {
        stats.firings += 1;
        if let PredRef::Idb(id) = ctx.rule.head.pred {
            instantiate_into(&ctx.rule.head, bindings, scratch);
            if ctx.store.holds(id, scratch) || !out.insert(id, scratch) {
                stats.interned_hits += 1;
            }
        }
        return false;
    }

    let step = &ctx.plan.steps[step_idx];
    let lit = &ctx.rule.body[step.literal];
    let exec = &execs[step_idx];
    let (rel, exclude) = (exec.rel, exec.exclude);

    let on_tuple = |tuple: &[ElemId],
                    bindings: &mut Vec<Option<ElemId>>,
                    stats: &mut EvalStats,
                    out: &mut FreshStore,
                    scratch: &mut Vec<ElemId>,
                    gov: &mut Governor<'_>,
                    mut trace: Option<&mut [LitCount]>|
     -> bool {
        stats.tuples_considered += 1;
        if let Some(t) = trace.as_deref_mut() {
            t[step.literal].tuples_in += 1;
        }
        if gov.work(stats.tuples_considered, stats.facts) {
            return true;
        }
        let mut stop = false;
        let mut touched: Vec<Var> = Vec::new();
        if unify(&lit.atom, tuple, bindings, &mut touched) {
            let negatives_ok = step.negatives_after.iter().all(|&ni| {
                stats.negative_checks += 1;
                !negative_holds(ctx, ni, bindings, scratch)
            });
            if negatives_ok {
                if let Some(t) = trace.as_deref_mut() {
                    t[step.literal].tuples_out += 1;
                }
                stop = descend_plan(
                    ctx,
                    execs,
                    step_idx + 1,
                    bindings,
                    stats,
                    out,
                    scratch,
                    gov,
                    trace,
                );
            }
        }
        for v in touched {
            bindings[v.index()] = None;
        }
        stop
    };

    match &step.access {
        Access::Scan => {
            if !exec.from_delta {
                stats.full_scans += 1;
            }
            for row in 0..rel.len() as u32 {
                let tuple = rel.tuple(row);
                if exclude.is_some_and(|d| d.contains(tuple)) {
                    continue;
                }
                if on_tuple(
                    tuple,
                    bindings,
                    stats,
                    out,
                    scratch,
                    gov,
                    trace.as_deref_mut(),
                ) {
                    return true;
                }
            }
        }
        Access::Probe { positions } => {
            stats.index_probes += 1;
            // Build the probe key in the shared scratch buffer: its use
            // ends at `rows_matching` (the row slice borrows the index,
            // not the key), so deeper recursion levels can reuse it.
            scratch.clear();
            for &p in positions {
                scratch.push(match lit.atom.terms[p] {
                    Term::Const(c) => c,
                    Term::Var(v) => bindings[v.index()].expect("planner binds key positions"),
                });
            }
            let index = exec.index.as_ref().expect("probe steps resolve an index");
            let rows = rel.rows_matching(index, scratch);
            for &row in rows {
                let tuple = rel.tuple(row);
                if exclude.is_some_and(|d| d.contains(tuple)) {
                    continue;
                }
                if on_tuple(
                    tuple,
                    bindings,
                    stats,
                    out,
                    scratch,
                    gov,
                    trace.as_deref_mut(),
                ) {
                    return true;
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Scan engine (pre-index oracle and baseline)
// ---------------------------------------------------------------------------

/// The pre-index semi-naive engine: nested-loop joins over full relation
/// scans, one shared delta set, and one delta pass per intensional body
/// position with every other position reading the already-updated store.
///
/// Kept verbatim as a differential-testing oracle (its least fixpoint is
/// correct) and as the scan baseline of the `join_indexing` bench. Note
/// its known inefficiency: an instantiation whose intensional atoms match
/// several delta tuples fires once per delta pass, inflating
/// [`EvalStats::firings`]; [`eval_seminaive`] fixes this with the proper
/// rule split.
///
/// # Errors
/// [`EvalError::NotSemipositive`] if the program negates an intensional
/// atom (use an `Evaluator` session, which auto-dispatches to the
/// stratified pipeline) or is otherwise ill-formed.
#[deprecated(
    since = "0.2.0",
    note = "construct an `Evaluator` session with `Engine::SemiNaiveScan` \
            (`Evaluator::with_options(program, EvalOptions::new().engine(Engine::SemiNaiveScan))`)"
)]
pub fn eval_seminaive_scan(
    program: &Program,
    structure: &Structure,
) -> Result<(IdbStore, EvalStats), EvalError> {
    check_semipositive(program)?;
    Ok(scan_fixpoint(
        program,
        structure,
        &mut Governor::new(None),
        None,
    ))
}

/// The scan engine proper (shared by the deprecated
/// [`eval_seminaive_scan`] wrapper and
/// [`Engine::SemiNaiveScan`](crate::evaluator::Engine::SemiNaiveScan)
/// sessions). The caller guarantees semipositivity. On a governor trip
/// the store holds a sound subset of the least fixpoint.
pub(crate) fn scan_fixpoint(
    program: &Program,
    structure: &Structure,
    gov: &mut Governor<'_>,
    mut prof: Option<&mut Profiler>,
) -> (IdbStore, EvalStats) {
    if let Some(p) = prof.as_deref_mut() {
        p.begin_stratum(0, program, None);
    }
    let mut store = IdbStore::new(program);
    let mut stats = EvalStats {
        strata: 1,
        ..EvalStats::default()
    };

    if gov.round(stats.tuples_considered, stats.facts) {
        if let Some(p) = prof {
            p.mark_trip(0);
            p.end_stratum(stats.rounds, stats.facts);
        }
        return (store, stats);
    }

    // Round 0: all rules, unconstrained.
    stats.rounds += 1;
    let mut delta: Vec<(IdbId, Box<[ElemId]>)> = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        let stopped = profiled_match(
            rule,
            ri,
            structure,
            &store,
            None,
            &mut stats,
            gov,
            &mut prof,
            &mut |head_args| {
                if let PredRef::Idb(id) = rule.head.pred {
                    if !store.holds(id, &head_args) {
                        delta.push((id, head_args));
                    }
                }
            },
        );
        if stopped {
            break;
        }
    }
    let mut frontier: Vec<(IdbId, Box<[ElemId]>)> = Vec::new();
    for (id, args) in delta {
        if store.insert(id, &args) {
            stats.facts += 1;
            frontier.push((id, args));
        }
    }

    while !frontier.is_empty() {
        if gov.round(stats.tuples_considered, stats.facts) {
            break;
        }
        stats.rounds += 1;
        let delta_set: DeltaSet = frontier.drain(..).collect();
        let mut new_facts: Vec<(IdbId, Box<[ElemId]>)> = Vec::new();
        let mut stopped = false;
        'rules: for (ri, rule) in program.rules.iter().enumerate() {
            // One pass per IDB body position: that position must match the
            // delta; other positions use the full store.
            let idb_positions: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, l)| l.positive && matches!(l.atom.pred, PredRef::Idb(_)))
                .map(|(i, _)| i)
                .collect();
            for &pos in &idb_positions {
                stopped = profiled_match(
                    rule,
                    ri,
                    structure,
                    &store,
                    Some((pos, &delta_set)),
                    &mut stats,
                    gov,
                    &mut prof,
                    &mut |head_args| {
                        if let PredRef::Idb(id) = rule.head.pred {
                            if !store.holds(id, &head_args) {
                                new_facts.push((id, head_args));
                            }
                        }
                    },
                );
                if stopped {
                    break 'rules;
                }
            }
        }
        for (id, args) in new_facts {
            if store.insert(id, &args) {
                stats.facts += 1;
                frontier.push((id, args));
            }
        }
        if stopped {
            break;
        }
    }
    if let Some(p) = prof {
        if gov.tripped().is_some() {
            p.mark_trip(0);
        }
        p.end_stratum(stats.rounds, stats.facts);
    }
    (store, stats)
}

/// [`for_each_match`] under the profiler — the scan/naive twin of
/// [`profiled_apply`]: one branch when off, sampled-timed pass + stats
/// delta (and per-literal trace at `Literals`) folded into rule `ri`'s
/// accumulator when on.
#[allow(clippy::too_many_arguments)]
fn profiled_match(
    rule: &Rule,
    ri: usize,
    structure: &Structure,
    store: &IdbStore,
    delta: Option<(usize, &DeltaSet)>,
    stats: &mut EvalStats,
    gov: &mut Governor<'_>,
    prof: &mut Option<&mut Profiler>,
    emit: &mut dyn FnMut(Box<[ElemId]>),
) -> bool {
    match prof.as_deref_mut() {
        Some(p) if p.rules_on() => {
            let before = *stats;
            let timer = p.pass_timer(ri);
            p.begin_pass(rule.body.len());
            let stop = for_each_match(rule, structure, store, delta, stats, gov, p.trace(), emit);
            p.end_pass(
                ri,
                &before,
                stats,
                timer.map(|t| t.elapsed().as_nanos() as u64),
            );
            stop
        }
        _ => for_each_match(rule, structure, store, delta, stats, gov, None, emit),
    }
}

/// Enumerates all substitutions satisfying `rule`'s body and yields the
/// instantiated head arguments. Returns `true` when the governor tripped
/// and the caller should unwind.
///
/// `delta`: if `Some((pos, set))`, the body literal at `pos` must match a
/// tuple in `set` (semi-naive restriction).
#[allow(clippy::too_many_arguments)]
fn for_each_match(
    rule: &Rule,
    structure: &Structure,
    store: &IdbStore,
    delta: Option<(usize, &DeltaSet)>,
    stats: &mut EvalStats,
    gov: &mut Governor<'_>,
    trace: Option<&mut [LitCount]>,
    emit: &mut dyn FnMut(Box<[ElemId]>),
) -> bool {
    let mut bindings: Vec<Option<ElemId>> = vec![None; rule.var_count as usize];

    // Literal processing order: positives in body order (no reordering —
    // this is the scan oracle), negatives once all positives are matched.
    let positives: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| l.positive)
        .map(|(i, _)| i)
        .collect();
    let negatives: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.positive)
        .map(|(i, _)| i)
        .collect();

    descend(
        rule,
        structure,
        store,
        delta,
        &positives,
        0,
        &negatives,
        &mut bindings,
        stats,
        gov,
        trace,
        emit,
    )
}

#[allow(clippy::too_many_arguments)]
fn descend(
    rule: &Rule,
    structure: &Structure,
    store: &IdbStore,
    delta: Option<(usize, &DeltaSet)>,
    positives: &[usize],
    next: usize,
    negatives: &[usize],
    bindings: &mut Vec<Option<ElemId>>,
    stats: &mut EvalStats,
    gov: &mut Governor<'_>,
    mut trace: Option<&mut [LitCount]>,
    emit: &mut dyn FnMut(Box<[ElemId]>),
) -> bool {
    if next == positives.len() {
        // All positives matched; check negatives (safety guarantees all
        // their variables are bound) and emit.
        for &ni in negatives {
            let lit = &rule.body[ni];
            stats.negative_checks += 1;
            let args =
                instantiate(&lit.atom, bindings).expect("safe rule: negative literal fully bound");
            let holds = match lit.atom.pred {
                PredRef::Edb(p) => structure.holds(p, &args),
                PredRef::Idb(_) => unreachable!(
                    "negated intensional literal in the semipositive engine; use eval_stratified"
                ),
            };
            if holds {
                return false;
            }
        }
        stats.firings += 1;
        let head_args = instantiate(&rule.head, bindings).expect("safe rule: head bound");
        emit(head_args);
        return false;
    }

    let li = positives[next];
    let lit = &rule.body[li];
    let is_delta_pos = delta.is_some_and(|(pos, _)| pos == li);

    // Enumerate candidate tuples for this literal.
    let try_tuple = |tuple: &[ElemId],
                     bindings: &mut Vec<Option<ElemId>>,
                     stats: &mut EvalStats,
                     gov: &mut Governor<'_>,
                     mut trace: Option<&mut [LitCount]>,
                     emit: &mut dyn FnMut(Box<[ElemId]>)|
     -> bool {
        stats.tuples_considered += 1;
        if let Some(t) = trace.as_deref_mut() {
            t[li].tuples_in += 1;
        }
        if gov.work(stats.tuples_considered, stats.facts) {
            return true;
        }
        let mut stop = false;
        let mut touched: Vec<Var> = Vec::new();
        if unify(&lit.atom, tuple, bindings, &mut touched) {
            if let Some(t) = trace.as_deref_mut() {
                t[li].tuples_out += 1;
            }
            stop = descend(
                rule,
                structure,
                store,
                delta,
                positives,
                next + 1,
                negatives,
                bindings,
                stats,
                gov,
                trace,
                emit,
            );
        }
        for v in touched {
            bindings[v.index()] = None;
        }
        stop
    };

    // The scan engines enumerate whole relations on every non-delta
    // literal — that is the point of the ablation. Count those scans so
    // the three engines report comparable [`EvalStats`]; enumerating the
    // delta (the semi-naive frontier) is not a full scan.
    match (lit.atom.pred, is_delta_pos) {
        (PredRef::Edb(p), _) => {
            stats.full_scans += 1;
            for tuple in structure.relation(p).iter() {
                if try_tuple(tuple, bindings, stats, gov, trace.as_deref_mut(), emit) {
                    return true;
                }
            }
        }
        (PredRef::Idb(id), false) => {
            stats.full_scans += 1;
            for tuple in store.rels[id.index()].iter() {
                if try_tuple(tuple, bindings, stats, gov, trace.as_deref_mut(), emit) {
                    return true;
                }
            }
        }
        (PredRef::Idb(id), true) => {
            let (_, set) = delta.expect("delta position implies delta set");
            for (tid, tuple) in set {
                if *tid == id && try_tuple(tuple, bindings, stats, gov, trace.as_deref_mut(), emit)
                {
                    return true;
                }
            }
        }
    }
    false
}

/// Tries to unify `atom` with `tuple` under the current bindings;
/// records newly bound variables in `touched`. Shared with the
/// incremental-maintenance join executor.
pub(crate) fn unify(
    atom: &Atom,
    tuple: &[ElemId],
    bindings: &mut [Option<ElemId>],
    touched: &mut Vec<Var>,
) -> bool {
    debug_assert_eq!(atom.terms.len(), tuple.len());
    for (term, &value) in atom.terms.iter().zip(tuple) {
        match term {
            Term::Const(c) => {
                if *c != value {
                    for v in touched.drain(..) {
                        bindings[v.index()] = None;
                    }
                    return false;
                }
            }
            Term::Var(v) => match bindings[v.index()] {
                Some(bound) if bound != value => {
                    for v in touched.drain(..) {
                        bindings[v.index()] = None;
                    }
                    return false;
                }
                Some(_) => {}
                None => {
                    bindings[v.index()] = Some(value);
                    touched.push(*v);
                }
            },
        }
    }
    true
}

/// Instantiates an atom under complete bindings into a reusable buffer
/// (the zero-allocation twin of [`instantiate`], used by the indexed
/// engine's derive path).
///
/// # Panics
/// Panics if a variable of the atom is unbound (plan safety guarantees
/// all are).
#[inline]
pub(crate) fn instantiate_into(atom: &Atom, bindings: &[Option<ElemId>], out: &mut Vec<ElemId>) {
    out.clear();
    for t in &atom.terms {
        out.push(match t {
            Term::Const(c) => *c,
            Term::Var(v) => bindings[v.index()].expect("safe rule: atom fully bound"),
        });
    }
}

/// Instantiates an atom under complete bindings.
fn instantiate(atom: &Atom, bindings: &[Option<ElemId>]) -> Option<Box<[ElemId]>> {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => bindings[v.index()],
        })
        .collect()
}

#[cfg(test)]
#[allow(deprecated)] // unit tests of the deprecated one-shot wrappers themselves
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use mdtw_structure::{Domain, Signature};
    use std::sync::Arc;

    fn chain(n: usize) -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(n);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        for i in 0..n - 1 {
            s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
        }
        s
    }

    const TC: &str = "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).";
    const TC_NONLINEAR: &str = "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).";

    #[test]
    fn transitive_closure_naive() {
        let s = chain(5);
        let p = parse_program(TC, &s).unwrap();
        let (store, _) = eval_naive(&p, &s).unwrap();
        let path = p.idb("path").unwrap();
        assert_eq!(store.tuples(path).len(), 4 + 3 + 2 + 1);
        assert!(store.holds(path, &[ElemId(0), ElemId(4)]));
        assert!(!store.holds(path, &[ElemId(4), ElemId(0)]));
    }

    #[test]
    fn seminaive_agrees_with_naive() {
        let s = chain(7);
        let p = parse_program(TC, &s).unwrap();
        let (naive, _) = eval_naive(&p, &s).unwrap();
        let (semi, _) = eval_seminaive(&p, &s).unwrap();
        let path = p.idb("path").unwrap();
        assert_eq!(naive.tuples(path), semi.tuples(path));
    }

    #[test]
    fn scan_engine_agrees_with_naive() {
        let s = chain(7);
        let p = parse_program(TC_NONLINEAR, &s).unwrap();
        let (naive, naive_stats) = eval_naive(&p, &s).unwrap();
        let (scan, scan_stats) = eval_seminaive_scan(&p, &s).unwrap();
        let path = p.idb("path").unwrap();
        assert_eq!(naive.tuples(path), scan.tuples(path));
        assert_eq!(naive_stats.facts, scan_stats.facts);
    }

    #[test]
    fn seminaive_fires_less_than_naive() {
        let s = chain(12);
        let p = parse_program(TC, &s).unwrap();
        let (_, naive_stats) = eval_naive(&p, &s).unwrap();
        let (_, semi_stats) = eval_seminaive(&p, &s).unwrap();
        assert!(semi_stats.firings < naive_stats.firings);
        assert_eq!(semi_stats.facts, naive_stats.facts);
    }

    /// Regression test for the semi-naive double-firing bug: with a rule
    /// carrying two intensional body atoms, the scan engine runs one delta
    /// pass per position against the already-updated store, so an
    /// instantiation whose atoms both match delta tuples fires once per
    /// pass. The rule split in the indexed engine fires it exactly once.
    ///
    /// On the 4-chain with nonlinear transitive closure the counts are
    /// small enough to pin exactly. Round 0 fires the base rule 3 times;
    /// round 1 joins the delta {p01,p12,p23} with itself — instantiations
    /// (p01,p12) and (p12,p23) are all-delta, so the split engine fires
    /// them once (2 firings) while the scan engine fires them in both
    /// passes (4 firings); round 2 has two genuinely distinct derivations
    /// of p03 (via p02⋈p23 and p01⋈p13) in both engines; round 3 fires
    /// nothing. Totals: 3+2+2 = 7 indexed, 3+4+2 = 9 scan.
    #[test]
    fn two_idb_atoms_fire_once_per_instantiation() {
        let s = chain(4);
        let p = parse_program(TC_NONLINEAR, &s).unwrap();
        let (indexed_store, indexed) = eval_seminaive(&p, &s).unwrap();
        let (scan_store, scan) = eval_seminaive_scan(&p, &s).unwrap();
        let path = p.idb("path").unwrap();
        assert_eq!(indexed_store.tuples(path), scan_store.tuples(path));
        assert_eq!(indexed.facts, 6);
        assert_eq!(scan.facts, 6);
        assert_eq!(
            indexed.firings, 7,
            "rule split must fire all-delta instantiations once"
        );
        assert_eq!(
            scan.firings, 9,
            "scan oracle keeps the seed double-firing behavior"
        );
    }

    /// On delta-bound literals the indexed engine must probe, not scan:
    /// the only full-relation scans of the whole linear-TC evaluation are
    /// the two round-0 scans (one per rule's first literal).
    #[test]
    fn delta_passes_probe_instead_of_scanning() {
        let s = chain(50);
        let p = parse_program(TC, &s).unwrap();
        let (_, stats) = eval_seminaive(&p, &s).unwrap();
        assert_eq!(
            stats.full_scans, 2,
            "only the unconstrained round-0 scans remain"
        );
        assert!(stats.index_probes > 0);
        // Each round's recursive pass probes `e` once per delta tuple, so
        // the work stays proportional to the output, not |store| × |e|.
        assert!(stats.tuples_considered < 5 * stats.facts + 100);
    }

    #[test]
    fn negation_on_edb() {
        let s = chain(4);
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).\n\
             skip(X, Y) :- path(X, Y), !e(X, Y).",
            &s,
        )
        .unwrap();
        let (store, _) = eval_seminaive(&p, &s).unwrap();
        let skip = p.idb("skip").unwrap();
        assert!(store.holds(skip, &[ElemId(0), ElemId(2)]));
        assert!(!store.holds(skip, &[ElemId(0), ElemId(1)]));
    }

    /// The parser accepts stratified programs, so the semipositive
    /// engines must reject a negated intensional atom at entry with a
    /// typed [`EvalError::NotSemipositive`], not a panic (the seed
    /// behavior) or an `unreachable!` mid-join.
    #[test]
    fn semipositive_engine_rejects_stratified_programs_with_typed_error() {
        let s = chain(3);
        let p = parse_program("q(X) :- e(X, Y), !r(X). r(X) :- e(X, X).", &s).unwrap();
        for result in [
            eval_naive(&p, &s),
            eval_seminaive(&p, &s),
            eval_seminaive_scan(&p, &s),
        ] {
            let err = result.unwrap_err();
            assert!(
                matches!(&err, EvalError::NotSemipositive { message } if !message.is_empty()),
                "{err:?}"
            );
            assert!(err.to_string().contains("semipositive engine"));
        }
    }

    #[test]
    fn zero_ary_goal() {
        let s = chain(3);
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).\n\
             reachable :- path(x0, x2).",
            &s,
        )
        .unwrap();
        let (store, _) = eval_seminaive(&p, &s).unwrap();
        let g = p.idb("reachable").unwrap();
        assert!(store.holds(g, &[]));
    }

    #[test]
    fn constants_in_rules() {
        let s = chain(4);
        let p = parse_program("from_start(Y) :- e(x0, Y).", &s).unwrap();
        let (store, _) = eval_seminaive(&p, &s).unwrap();
        let q = p.idb("from_start").unwrap();
        assert_eq!(store.unary(q), vec![ElemId(1)]);
    }

    #[test]
    fn facts_in_program() {
        let s = chain(3);
        let p = parse_program("mark(x1). marked2(X) :- mark(X), e(X, Y).", &s).unwrap();
        let (store, _) = eval_seminaive(&p, &s).unwrap();
        let m2 = p.idb("marked2").unwrap();
        assert_eq!(store.unary(m2), vec![ElemId(1)]);
    }

    #[test]
    fn repeated_variables_filter() {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(3);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        s.insert(e, &[ElemId(0), ElemId(0)]);
        s.insert(e, &[ElemId(0), ElemId(1)]);
        let p = parse_program("loop(X) :- e(X, X).", &s).unwrap();
        let (store, _) = eval_seminaive(&p, &s).unwrap();
        let l = p.idb("loop").unwrap();
        assert_eq!(store.unary(l), vec![ElemId(0)]);
    }

    #[test]
    fn empty_relation_derives_nothing() {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(2);
        let s = Structure::new(sig, dom);
        let p = parse_program(TC, &s).unwrap();
        let (store, stats) = eval_seminaive(&p, &s).unwrap();
        assert_eq!(store.fact_count(), 0);
        assert_eq!(stats.facts, 0);
    }

    #[test]
    fn holds_named_uses_interned_names() {
        let s = chain(4);
        let p = parse_program(TC, &s).unwrap();
        let (store, _) = eval_seminaive(&p, &s).unwrap();
        assert!(store.holds_named("path", &[ElemId(0), ElemId(3)]));
        assert!(!store.holds_named("path", &[ElemId(3), ElemId(0)]));
        assert!(!store.holds_named("no_such_predicate", &[ElemId(0)]));
    }

    #[test]
    fn mutual_recursion_same_fixpoint_across_engines() {
        let sig = Arc::new(Signature::from_pairs([("succ", 2), ("zero", 1)]));
        let dom = Domain::anonymous(8);
        let mut s = Structure::new(sig, dom);
        let succ = s.signature().lookup("succ").unwrap();
        let zero = s.signature().lookup("zero").unwrap();
        s.insert(zero, &[ElemId(0)]);
        for i in 0..7u32 {
            s.insert(succ, &[ElemId(i), ElemId(i + 1)]);
        }
        let p = parse_program(
            "even(X) :- zero(X).\nodd(Y) :- even(X), succ(X, Y).\n\
             even(Y) :- odd(X), succ(X, Y).",
            &s,
        )
        .unwrap();
        let (naive, _) = eval_naive(&p, &s).unwrap();
        let (indexed, _) = eval_seminaive(&p, &s).unwrap();
        let (scan, _) = eval_seminaive_scan(&p, &s).unwrap();
        for name in ["even", "odd"] {
            let id = p.idb(name).unwrap();
            assert_eq!(naive.tuples(id), indexed.tuples(id), "{name}");
            assert_eq!(naive.tuples(id), scan.tuples(id), "{name}");
        }
    }
}
