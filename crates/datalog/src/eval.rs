//! Bottom-up evaluation: naive and semi-naive least-fixpoint computation
//! of semipositive datalog over a finite structure (paper §2.4).
//!
//! The naive evaluator is the executable definition of the minimal-model
//! semantics and serves as ground truth; the semi-naive evaluator is the
//! general-purpose engine. The *linear-time* evaluation of quasi-guarded
//! programs (Theorem 4.4) lives in the `ground` and `horn` modules.

use crate::ast::{Atom, IdbId, PredRef, Program, Rule, Term, Var};
use mdtw_structure::fx::FxHashSet;
use mdtw_structure::{ElemId, Structure};

/// The semi-naive frontier: the set of IDB facts derived in the previous
/// iteration, keyed by predicate.
type DeltaSet = FxHashSet<(IdbId, Box<[ElemId]>)>;

/// The computed least fixpoint: one relation per intensional predicate.
#[derive(Debug, Clone)]
pub struct IdbStore {
    rels: Vec<FxHashSet<Box<[ElemId]>>>,
    names: Vec<String>,
}

impl IdbStore {
    fn new(program: &Program) -> Self {
        Self {
            rels: vec![FxHashSet::default(); program.idb_count()],
            names: program.idb_names.clone(),
        }
    }

    /// True if `pred(args)` is in the least fixpoint.
    pub fn holds(&self, pred: IdbId, args: &[ElemId]) -> bool {
        self.rels[pred.index()].contains(args)
    }

    /// Looks a predicate up by name and tests membership.
    pub fn holds_named(&self, name: &str, args: &[ElemId]) -> bool {
        self.names
            .iter()
            .position(|n| n == name)
            .is_some_and(|i| self.rels[i].contains(args))
    }

    /// All tuples of `pred`, sorted for determinism.
    pub fn tuples(&self, pred: IdbId) -> Vec<Vec<ElemId>> {
        let mut out: Vec<Vec<ElemId>> =
            self.rels[pred.index()].iter().map(|t| t.to_vec()).collect();
        out.sort();
        out
    }

    /// The elements `x` with `pred(x)` in the fixpoint (unary predicates).
    pub fn unary(&self, pred: IdbId) -> Vec<ElemId> {
        let mut out: Vec<ElemId> = self.rels[pred.index()]
            .iter()
            .map(|t| {
                debug_assert_eq!(t.len(), 1);
                t[0]
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Total number of derived facts.
    pub fn fact_count(&self) -> usize {
        self.rels.iter().map(FxHashSet::len).sum()
    }

    fn insert(&mut self, pred: IdbId, args: Box<[ElemId]>) -> bool {
        self.rels[pred.index()].insert(args)
    }

    /// Creates an empty store shaped for `program` (used by the
    /// quasi-guarded evaluator to decode LTUR models).
    pub(crate) fn new_for(program: &Program) -> Self {
        Self::new(program)
    }

    /// Direct insertion (used when decoding a ground model).
    pub(crate) fn insert_raw(&mut self, pred: IdbId, args: Box<[ElemId]>) {
        self.rels[pred.index()].insert(args);
    }
}

/// Evaluation statistics (for the linearity experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of successful rule instantiations considered (including
    /// re-derivations).
    pub firings: usize,
    /// Number of distinct facts derived.
    pub facts: usize,
    /// Number of fixpoint rounds.
    pub rounds: usize,
}

/// Naive evaluation: apply all rules until nothing changes.
pub fn eval_naive(program: &Program, structure: &Structure) -> (IdbStore, EvalStats) {
    let mut store = IdbStore::new(program);
    let mut stats = EvalStats::default();
    loop {
        stats.rounds += 1;
        let mut new_facts: Vec<(IdbId, Box<[ElemId]>)> = Vec::new();
        for rule in &program.rules {
            for_each_match(rule, structure, &store, None, &mut |head_args| {
                stats.firings += 1;
                if let PredRef::Idb(id) = rule.head.pred {
                    if !store.holds(id, &head_args) {
                        new_facts.push((id, head_args));
                    }
                }
            });
        }
        let mut changed = false;
        for (id, args) in new_facts {
            if store.insert(id, args) {
                changed = true;
                stats.facts += 1;
            }
        }
        if !changed {
            break;
        }
    }
    (store, stats)
}

/// Semi-naive evaluation: after the first round, a rule fires only with at
/// least one body atom taken from the previous round's delta.
pub fn eval_seminaive(program: &Program, structure: &Structure) -> (IdbStore, EvalStats) {
    let mut store = IdbStore::new(program);
    let mut stats = EvalStats::default();

    // Round 0: all rules, unconstrained.
    stats.rounds += 1;
    let mut delta: Vec<(IdbId, Box<[ElemId]>)> = Vec::new();
    for rule in &program.rules {
        for_each_match(rule, structure, &store, None, &mut |head_args| {
            stats.firings += 1;
            if let PredRef::Idb(id) = rule.head.pred {
                if !store.holds(id, &head_args) {
                    delta.push((id, head_args));
                }
            }
        });
    }
    let mut frontier: Vec<(IdbId, Box<[ElemId]>)> = Vec::new();
    for (id, args) in delta {
        if store.insert(id, args.clone()) {
            stats.facts += 1;
            frontier.push((id, args));
        }
    }

    while !frontier.is_empty() {
        stats.rounds += 1;
        let delta_set: DeltaSet = frontier.drain(..).collect();
        let mut new_facts: Vec<(IdbId, Box<[ElemId]>)> = Vec::new();
        for rule in &program.rules {
            // One pass per IDB body position: that position must match the
            // delta; other positions use the full store.
            let idb_positions: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, l)| l.positive && matches!(l.atom.pred, PredRef::Idb(_)))
                .map(|(i, _)| i)
                .collect();
            for &pos in &idb_positions {
                for_each_match(
                    rule,
                    structure,
                    &store,
                    Some((pos, &delta_set)),
                    &mut |head_args| {
                        stats.firings += 1;
                        if let PredRef::Idb(id) = rule.head.pred {
                            if !store.holds(id, &head_args) {
                                new_facts.push((id, head_args));
                            }
                        }
                    },
                );
            }
        }
        for (id, args) in new_facts {
            if store.insert(id, args.clone()) {
                stats.facts += 1;
                frontier.push((id, args));
            }
        }
    }
    (store, stats)
}

/// Enumerates all substitutions satisfying `rule`'s body and yields the
/// instantiated head arguments.
///
/// `delta`: if `Some((pos, set))`, the body literal at `pos` must match a
/// tuple in `set` (semi-naive restriction).
fn for_each_match(
    rule: &Rule,
    structure: &Structure,
    store: &IdbStore,
    delta: Option<(usize, &DeltaSet)>,
    emit: &mut dyn FnMut(Box<[ElemId]>),
) {
    let mut bindings: Vec<Option<ElemId>> = vec![None; rule.var_count as usize];

    // Literal processing order: positive literals first (greedy: most
    // bound variables first at each step), negative literals as soon as
    // fully bound. We precompute just a static order: positives in body
    // order, then after each positive we flush any negative whose
    // variables are all bound. Simpler: recursive descent over positives
    // in body order, checking negatives whenever bound.
    let positives: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| l.positive)
        .map(|(i, _)| i)
        .collect();
    let negatives: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.positive)
        .map(|(i, _)| i)
        .collect();

    descend(
        rule,
        structure,
        store,
        delta,
        &positives,
        0,
        &negatives,
        &mut bindings,
        emit,
    );
}

#[allow(clippy::too_many_arguments)]
fn descend(
    rule: &Rule,
    structure: &Structure,
    store: &IdbStore,
    delta: Option<(usize, &DeltaSet)>,
    positives: &[usize],
    next: usize,
    negatives: &[usize],
    bindings: &mut Vec<Option<ElemId>>,
    emit: &mut dyn FnMut(Box<[ElemId]>),
) {
    if next == positives.len() {
        // All positives matched; check negatives (safety guarantees all
        // their variables are bound) and emit.
        for &ni in negatives {
            let lit = &rule.body[ni];
            let args =
                instantiate(&lit.atom, bindings).expect("safe rule: negative literal fully bound");
            let holds = match lit.atom.pred {
                PredRef::Edb(p) => structure.holds(p, &args),
                PredRef::Idb(_) => unreachable!("semipositive program"),
            };
            if holds {
                return;
            }
        }
        let head_args = instantiate(&rule.head, bindings).expect("safe rule: head bound");
        emit(head_args);
        return;
    }

    let li = positives[next];
    let lit = &rule.body[li];
    let is_delta_pos = delta.is_some_and(|(pos, _)| pos == li);

    // Enumerate candidate tuples for this literal.
    let try_tuple = |tuple: &[ElemId],
                     bindings: &mut Vec<Option<ElemId>>,
                     emit: &mut dyn FnMut(Box<[ElemId]>)| {
        let mut touched: Vec<Var> = Vec::new();
        if unify(&lit.atom, tuple, bindings, &mut touched) {
            descend(
                rule,
                structure,
                store,
                delta,
                positives,
                next + 1,
                negatives,
                bindings,
                emit,
            );
        }
        for v in touched {
            bindings[v.index()] = None;
        }
    };

    match (lit.atom.pred, is_delta_pos) {
        (PredRef::Edb(p), _) => {
            for tuple in structure.relation(p).iter() {
                try_tuple(tuple, bindings, emit);
            }
        }
        (PredRef::Idb(id), false) => {
            for tuple in store.rels[id.index()].iter() {
                try_tuple(tuple, bindings, emit);
            }
        }
        (PredRef::Idb(id), true) => {
            let (_, set) = delta.expect("delta position implies delta set");
            for (tid, tuple) in set.iter() {
                if *tid == id {
                    try_tuple(tuple, bindings, emit);
                }
            }
        }
    }
}

/// Tries to unify `atom` with `tuple` under the current bindings;
/// records newly bound variables in `touched`.
fn unify(
    atom: &Atom,
    tuple: &[ElemId],
    bindings: &mut [Option<ElemId>],
    touched: &mut Vec<Var>,
) -> bool {
    debug_assert_eq!(atom.terms.len(), tuple.len());
    for (term, &value) in atom.terms.iter().zip(tuple) {
        match term {
            Term::Const(c) => {
                if *c != value {
                    for v in touched.drain(..) {
                        bindings[v.index()] = None;
                    }
                    return false;
                }
            }
            Term::Var(v) => match bindings[v.index()] {
                Some(bound) if bound != value => {
                    for v in touched.drain(..) {
                        bindings[v.index()] = None;
                    }
                    return false;
                }
                Some(_) => {}
                None => {
                    bindings[v.index()] = Some(value);
                    touched.push(*v);
                }
            },
        }
    }
    true
}

/// Instantiates an atom under complete bindings.
fn instantiate(atom: &Atom, bindings: &[Option<ElemId>]) -> Option<Box<[ElemId]>> {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => bindings[v.index()],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use mdtw_structure::{Domain, Signature};
    use std::sync::Arc;

    fn chain(n: usize) -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(n);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        for i in 0..n - 1 {
            s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
        }
        s
    }

    const TC: &str = "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).";

    #[test]
    fn transitive_closure_naive() {
        let s = chain(5);
        let p = parse_program(TC, &s).unwrap();
        let (store, _) = eval_naive(&p, &s);
        let path = p.idb("path").unwrap();
        assert_eq!(store.tuples(path).len(), 4 + 3 + 2 + 1);
        assert!(store.holds(path, &[ElemId(0), ElemId(4)]));
        assert!(!store.holds(path, &[ElemId(4), ElemId(0)]));
    }

    #[test]
    fn seminaive_agrees_with_naive() {
        let s = chain(7);
        let p = parse_program(TC, &s).unwrap();
        let (naive, _) = eval_naive(&p, &s);
        let (semi, _) = eval_seminaive(&p, &s);
        let path = p.idb("path").unwrap();
        assert_eq!(naive.tuples(path), semi.tuples(path));
    }

    #[test]
    fn seminaive_fires_less_than_naive() {
        let s = chain(12);
        let p = parse_program(TC, &s).unwrap();
        let (_, naive_stats) = eval_naive(&p, &s);
        let (_, semi_stats) = eval_seminaive(&p, &s);
        assert!(semi_stats.firings < naive_stats.firings);
        assert_eq!(semi_stats.facts, naive_stats.facts);
    }

    #[test]
    fn negation_on_edb() {
        let s = chain(4);
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).\n\
             skip(X, Y) :- path(X, Y), !e(X, Y).",
            &s,
        )
        .unwrap();
        let (store, _) = eval_seminaive(&p, &s);
        let skip = p.idb("skip").unwrap();
        assert!(store.holds(skip, &[ElemId(0), ElemId(2)]));
        assert!(!store.holds(skip, &[ElemId(0), ElemId(1)]));
    }

    #[test]
    fn zero_ary_goal() {
        let s = chain(3);
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).\n\
             reachable :- path(x0, x2).",
            &s,
        )
        .unwrap();
        let (store, _) = eval_seminaive(&p, &s);
        let g = p.idb("reachable").unwrap();
        assert!(store.holds(g, &[]));
    }

    #[test]
    fn constants_in_rules() {
        let s = chain(4);
        let p = parse_program("from_start(Y) :- e(x0, Y).", &s).unwrap();
        let (store, _) = eval_seminaive(&p, &s);
        let q = p.idb("from_start").unwrap();
        assert_eq!(store.unary(q), vec![ElemId(1)]);
    }

    #[test]
    fn facts_in_program() {
        let s = chain(3);
        let p = parse_program("mark(x1). marked2(X) :- mark(X), e(X, Y).", &s).unwrap();
        let (store, _) = eval_seminaive(&p, &s);
        let m2 = p.idb("marked2").unwrap();
        assert_eq!(store.unary(m2), vec![ElemId(1)]);
    }

    #[test]
    fn repeated_variables_filter() {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(3);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        s.insert(e, &[ElemId(0), ElemId(0)]);
        s.insert(e, &[ElemId(0), ElemId(1)]);
        let p = parse_program("loop(X) :- e(X, X).", &s).unwrap();
        let (store, _) = eval_seminaive(&p, &s);
        let l = p.idb("loop").unwrap();
        assert_eq!(store.unary(l), vec![ElemId(0)]);
    }

    #[test]
    fn empty_relation_derives_nothing() {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(2);
        let s = Structure::new(sig, dom);
        let p = parse_program(TC, &s).unwrap();
        let (store, stats) = eval_seminaive(&p, &s);
        assert_eq!(store.fact_count(), 0);
        assert_eq!(stats.facts, 0);
    }
}
