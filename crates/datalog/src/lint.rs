//! Standalone linting of `.dl` program files — the library half of the
//! `mdtw-lint` binary.
//!
//! The [`analysis`](crate::analysis) passes need a [`Structure`] to parse
//! against, but a lint driver has only the program text. This module
//! closes the gap: it scans the file for *pragmas* and infers a synthetic
//! extensional signature and constant domain, then runs the lenient
//! parser and the full analysis battery:
//!
//! * `%! edb name/arity` — declares an extensional predicate. Without
//!   declarations, every predicate that never appears in head position is
//!   inferred extensional, with its first-seen arity.
//! * `%! output name` — declares an output predicate, enabling the
//!   relevance passes (`MD010` unreachable predicate, `MD011` dead rule).
//!   Without output pragmas those passes are skipped.
//!
//! Both pragmas sit inside `%` comments, so the same file feeds
//! [`parse_program`] unchanged.
//!
//! [`lint_source`] returns a [`LintOutcome`]; [`diagnostic_to_json`] /
//! [`diagnostic_from_json`] and the [`json`] value type give the binary a
//! dependency-free `--json` mode that round-trips.

use crate::analysis::{analyze, AnalysisOptions, Diagnostic, LintCode, ProgramReport, Severity};
use crate::eval::EvalStats;
use crate::evaluator::{EvalError, EvalOptions, Evaluator};
use crate::limits::EvalLimits;
use crate::parser::{is_variable, parse_program, parse_program_lenient, ParseError};
use crate::profile::{EvalProfile, Explanation, ProfileDetail};
use crate::span::Span;
use crate::transform::{optimize_with_limits, TransformSummary};
use mdtw_structure::fx::FxHashMap;
use mdtw_structure::{Domain, ElemId, PredId, Signature, Structure};
use std::fmt;
use std::sync::Arc;

/// The pragma declarations scanned from a `.dl` file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintDecls {
    /// `%! edb name/arity` declarations, in file order.
    pub edb: Vec<(String, usize)>,
    /// `%! output name` declarations, in file order.
    pub outputs: Vec<String>,
}

/// What [`lint_source`] produced for one file.
#[derive(Debug)]
pub struct LintOutcome {
    /// The analysis report, when the file parsed (leniently).
    pub report: Option<ProgramReport>,
    /// The fatal parse error, when it did not.
    pub parse_error: Option<ParseError>,
    /// The pragmas found in the file.
    pub decls: LintDecls,
}

impl LintOutcome {
    /// True if the file has error-level findings (or failed to parse).
    pub fn has_errors(&self) -> bool {
        self.parse_error.is_some() || self.report.as_ref().is_some_and(ProgramReport::has_errors)
    }
}

/// A malformed `%!` pragma line, located by a real [`Span`] covering the
/// pragma text (so drivers can render it with carets — see
/// [`render_pragma_error`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    /// Where the malformed pragma sits in the source.
    pub span: Span,
    /// What is wrong with it.
    pub message: String,
}

impl PragmaError {
    /// The 1-based source line of the pragma.
    pub fn line(&self) -> usize {
        self.span.line as usize
    }
}

impl fmt::Display for PragmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.span.line, self.message)
    }
}

/// Scans `%!` pragma lines. Only lines whose first non-whitespace
/// characters are `%!` are considered; anything else is a plain comment.
/// Byte offsets are tracked per raw line (CRLF included), so the spans on
/// errors stay caret-accurate on Windows line endings.
pub fn scan_pragmas(source: &str) -> Result<LintDecls, PragmaError> {
    let mut decls = LintDecls::default();
    let mut offset = 0usize;
    for (idx, raw) in source.split_inclusive('\n').enumerate() {
        let line_start = offset;
        offset += raw.len();
        let content = raw.strip_suffix('\n').unwrap_or(raw);
        let content = content.strip_suffix('\r').unwrap_or(content);
        let trimmed = content.trim();
        let Some(body) = trimmed.strip_prefix("%!") else {
            continue;
        };
        let lead = content.len() - content.trim_start().len();
        let span = Span {
            start: (line_start + lead) as u32,
            end: (line_start + lead + trimmed.len()) as u32,
            line: idx as u32 + 1,
            col: content[..lead].chars().count() as u32 + 1,
        };
        let err = |message: String| PragmaError { span, message };
        let mut words = body.split_whitespace();
        match words.next() {
            Some("edb") => {
                let spec = words
                    .next()
                    .ok_or_else(|| err("`%! edb` needs a `name/arity` argument".into()))?;
                let (name, arity) = spec
                    .split_once('/')
                    .ok_or_else(|| err(format!("`%! edb {spec}`: expected `name/arity`")))?;
                let arity: usize = arity
                    .parse()
                    .map_err(|_| err(format!("`%! edb {spec}`: arity is not a number")))?;
                decls.edb.push((name.to_owned(), arity));
            }
            Some("output") => {
                let name = words
                    .next()
                    .ok_or_else(|| err("`%! output` needs a predicate name".into()))?;
                decls.outputs.push(name.to_owned());
            }
            Some(other) => {
                return Err(err(format!(
                    "unknown pragma `%! {other}` (expected `edb` or `output`)"
                )))
            }
            None => return Err(err("empty `%!` pragma".into())),
        }
        if let Some(extra) = words.next() {
            return Err(err(format!("trailing `{extra}` after pragma")));
        }
    }
    Ok(decls)
}

/// A syntactic scan of the comment-stripped file: which predicates appear
/// in head position, every predicate's first-seen arity, and every
/// lowercase argument (a constant). Deliberately forgiving — real
/// syntax errors are the parser's to report.
fn scan_atoms(source: &str) -> (Vec<(String, usize)>, Vec<String>, Vec<String>) {
    let mut stripped = String::with_capacity(source.len());
    for raw in source.lines() {
        let line = match raw.find(['%', '#']) {
            Some(p) => &raw[..p],
            None => raw,
        };
        stripped.push_str(line);
        stripped.push('\n');
    }
    let mut order: Vec<String> = Vec::new();
    let mut arity: FxHashMap<String, usize> = FxHashMap::default();
    let mut heads: Vec<String> = Vec::new();
    let mut constants: Vec<String> = Vec::new();
    let mut seen_const: FxHashMap<String, ()> = FxHashMap::default();
    for statement in stripped.split('.') {
        for (piece_idx, piece) in statement.split(":-").enumerate() {
            let bytes = piece.as_bytes();
            let mut i = 0usize;
            let mut head_seen = false;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if !(c.is_ascii_alphanumeric() || c == '_') {
                    i += 1;
                    continue;
                }
                let start = i;
                while i < bytes.len() && {
                    let c = bytes[i] as char;
                    c.is_ascii_alphanumeric() || c == '_'
                } {
                    i += 1;
                }
                let ident = &piece[start..i];
                if ident == "not" {
                    continue;
                }
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                    j += 1;
                }
                let (args, after) = if j < bytes.len() && bytes[j] == b'(' {
                    let mut depth = 0usize;
                    let mut k = j;
                    while k < bytes.len() {
                        match bytes[k] {
                            b'(' => depth += 1,
                            b')' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if k >= bytes.len() {
                        // Unbalanced parens — leave it to the parser.
                        (Vec::new(), bytes.len())
                    } else {
                        let inner = piece[j + 1..k].trim();
                        let args: Vec<&str> = if inner.is_empty() {
                            Vec::new()
                        } else {
                            inner.split(',').map(str::trim).collect()
                        };
                        (args, k + 1)
                    }
                } else {
                    (Vec::new(), i)
                };
                if !arity.contains_key(ident) {
                    arity.insert(ident.to_owned(), args.len());
                    order.push(ident.to_owned());
                }
                if piece_idx == 0 && !head_seen {
                    heads.push(ident.to_owned());
                    head_seen = true;
                }
                for arg in args {
                    if !arg.is_empty() && !is_variable(arg) && !seen_const.contains_key(arg) {
                        seen_const.insert(arg.to_owned(), ());
                        constants.push(arg.to_owned());
                    }
                }
                i = after;
            }
        }
    }
    let preds = order
        .into_iter()
        .map(|name| {
            let a = arity[&name];
            (name, a)
        })
        .collect();
    (preds, heads, constants)
}

/// Builds the synthetic [`Structure`] a file is parsed against: the
/// declared (or inferred) extensional predicates as empty relations, and
/// every constant of the file in the domain.
pub fn synthetic_structure(source: &str, decls: &LintDecls) -> Structure {
    let (preds, heads, constants) = scan_atoms(source);
    let mut pairs: Vec<(String, usize)> = decls.edb.clone();
    if decls.edb.is_empty() {
        for (name, arity) in preds {
            if !heads.contains(&name) {
                pairs.push((name, arity));
            }
        }
    }
    // `Signature::from_pairs` is append-only and panics on duplicates.
    let mut dedup: Vec<(String, usize)> = Vec::new();
    for (name, arity) in pairs {
        if !dedup.iter().any(|(n, _)| *n == name) {
            dedup.push((name, arity));
        }
    }
    let sig = Arc::new(Signature::from_pairs(
        dedup.iter().map(|(n, a)| (n.as_str(), *a)),
    ));
    let mut domain = Domain::new();
    for c in constants {
        domain.insert(c);
    }
    Structure::new(sig, domain)
}

/// Lints one `.dl` source file: scans pragmas, builds the synthetic
/// structure, parses leniently (so analysis can report unsafe rules,
/// extensional heads and negative cycles as spanned `MD0xx` diagnostics
/// instead of dying on the first), and runs [`analyze`].
pub fn lint_source(source: &str) -> Result<LintOutcome, PragmaError> {
    lint_source_with_limits(source, None)
}

/// [`lint_source`] with an explicit budget for the semantic tier's
/// containment probes (e.g. from `mdtw-lint --fuel` / `--timeout-ms`).
/// `None` falls back to the analysis layer's default fuel budget
/// ([`crate::analysis::DEFAULT_SEMANTIC_FUEL`]), so linting terminates
/// even on adversarial programs.
pub fn lint_source_with_limits(
    source: &str,
    limits: Option<&EvalLimits>,
) -> Result<LintOutcome, PragmaError> {
    let decls = scan_pragmas(source)?;
    let structure = synthetic_structure(source, &decls);
    match parse_program_lenient(source, &structure) {
        Err(e) => Ok(LintOutcome {
            report: None,
            parse_error: Some(e),
            decls,
        }),
        Ok(program) => {
            let mut options = AnalysisOptions::new()
                .edb_signature(Arc::clone(structure.signature()))
                .semantic(true);
            if let Some(l) = limits {
                options = options.limits(l.clone());
            }
            if !decls.outputs.is_empty() {
                options = options.outputs(decls.outputs.iter().cloned());
            }
            let report = analyze(&program, &options);
            Ok(LintOutcome {
                report: Some(report),
                parse_error: None,
                decls,
            })
        }
    }
}

/// Renders a fatal parse error rustc-style (mirrors
/// [`Diagnostic::render`], without a lint code).
pub fn render_parse_error(err: &ParseError, source: &str, path: &str) -> String {
    format!(
        "error: {}{}",
        err.message,
        crate::span::caret_snippet(err.span, Some(source), path)
    )
}

/// Renders a malformed-pragma error rustc-style, with a caret run under
/// the offending pragma line.
pub fn render_pragma_error(err: &PragmaError, source: &str, path: &str) -> String {
    format!(
        "error: malformed pragma: {}{}",
        err.message,
        crate::span::caret_snippet(err.span, Some(source), path)
    )
}

/// What `mdtw-lint --optimize` produced for one file: either the
/// optimized program dump or the reason the dry-run was skipped.
#[derive(Debug)]
pub enum OptimizeOutcome {
    /// The program parsed strictly and the optimizer pipeline ran.
    Optimized(OptimizeDump),
    /// The dry-run could not (or had no reason to) run: parse failure or
    /// error-level diagnostics. Carries a human-readable reason.
    Skipped(String),
}

/// The result of running the full [`optimize_with_limits`] pipeline on a file, for
/// display: the surviving rules re-rendered as text, plus the summary.
#[derive(Debug)]
pub struct OptimizeDump {
    /// The optimized program's rules, rendered back to datalog text.
    pub rules: Vec<String>,
    /// Rule count before the pipeline ran.
    pub rules_before: usize,
    /// What each transform did.
    pub summary: TransformSummary,
}

/// Runs the semantic-optimizer dry-run for `mdtw-lint --optimize`:
/// minimization, bounded-recursion elimination and (when `%! output`
/// pragmas declare a query) the magic-set rewrite, then renders the
/// resulting program. Never evaluates over real data — the only
/// evaluation is the containment test's canonical databases.
pub fn optimize_source(source: &str) -> Result<OptimizeOutcome, PragmaError> {
    optimize_source_with_limits(source, None)
}

/// Default fuel budget for the `--optimize` dry-run's containment probes
/// when no explicit limits are given: the pipeline runs more probes than
/// a lint pass, so its ceiling is higher, but it still guarantees
/// termination on adversarial inputs.
pub const DEFAULT_OPTIMIZE_FUEL: u64 = 20_000_000;

/// [`optimize_source`] with an explicit budget for the pipeline's
/// containment probes. `None` falls back to [`DEFAULT_OPTIMIZE_FUEL`];
/// a tripped budget is visible as
/// [`TransformSummary::budget_tripped`](crate::transform::TransformSummary::budget_tripped)
/// on the returned dump — the affected transforms degrade to "not
/// applied" instead of hanging.
pub fn optimize_source_with_limits(
    source: &str,
    limits: Option<&EvalLimits>,
) -> Result<OptimizeOutcome, PragmaError> {
    let decls = scan_pragmas(source)?;
    let structure = synthetic_structure(source, &decls);
    let mut program = match parse_program(source, &structure) {
        Ok(p) => p,
        Err(e) => {
            return Ok(OptimizeOutcome::Skipped(format!(
                "parse error at {}: {}",
                e.span, e.message
            )))
        }
    };
    let rules_before = program.rules.len();
    let outputs: Vec<_> = decls
        .outputs
        .iter()
        .filter_map(|name| program.idb(name))
        .collect();
    let budget = limits
        .cloned()
        .unwrap_or_else(|| EvalLimits::new().fuel(DEFAULT_OPTIMIZE_FUEL));
    let summary = optimize_with_limits(&mut program, &outputs, Some(&budget));
    let rules = program
        .rules
        .iter()
        .map(|r| program.render_rule(r, &structure))
        .collect();
    Ok(OptimizeOutcome::Optimized(OptimizeDump {
        rules,
        rules_before,
        summary,
    }))
}

/// What `mdtw-lint --explain` produced for one file: either the
/// compiled-plan explanation or the reason it was skipped.
#[derive(Debug)]
pub enum ExplainOutcome {
    /// The program parsed strictly, stratified, and its plans compiled.
    Explained(Box<Explanation>),
    /// Explanation could not run: parse or stratification failure.
    /// Carries a human-readable reason.
    Skipped(String),
}

/// Compiles and renders the join plans of a `.dl` file for
/// `mdtw-lint --explain`: pragmas → synthetic structure → strict parse →
/// [`Evaluator::explain`] against the seeded dry-run structure (see
/// [`dry_run_structure`]), so access-path choices reflect non-degenerate
/// relation statistics.
///
/// # Errors
/// A [`PragmaError`] when a `%!` pragma is malformed (matching
/// [`lint_source`]); parse and stratification failures are reported as
/// [`ExplainOutcome::Skipped`], not errors.
pub fn explain_source(source: &str) -> Result<ExplainOutcome, PragmaError> {
    let decls = scan_pragmas(source)?;
    let structure = synthetic_structure(source, &decls);
    let program = match parse_program(source, &structure) {
        Ok(p) => p,
        Err(e) => {
            return Ok(ExplainOutcome::Skipped(format!(
                "parse error at {}: {}",
                e.span, e.message
            )))
        }
    };
    let evaluator = match Evaluator::new(program) {
        Ok(ev) => ev,
        Err(e) => return Ok(ExplainOutcome::Skipped(format!("evaluation setup: {e}"))),
    };
    Ok(ExplainOutcome::Explained(Box::new(
        evaluator.explain(&dry_run_structure(&structure)),
    )))
}

/// What `mdtw-lint --profile` produced for one file.
#[derive(Debug)]
pub enum ProfileOutcome {
    /// The program parsed strictly and a profiled evaluation ran over the
    /// seeded dry-run structure.
    Profiled(Box<ProfileDump>),
    /// Profiling could not run: parse or stratification failure. Carries
    /// a human-readable reason.
    Skipped(String),
}

/// A profiled dry-run evaluation, for display and `--json` export.
#[derive(Debug)]
pub struct ProfileDump {
    /// The collected evaluation profile.
    pub profile: EvalProfile,
    /// The evaluation's work counters.
    pub stats: EvalStats,
    /// The limit kind that tripped the dry-run budget, if one did (the
    /// profile then covers the partial evaluation).
    pub tripped: Option<String>,
}

/// Runs a profiled dry-run evaluation of a `.dl` file for
/// `mdtw-lint --profile`: the program is evaluated at `detail` over the
/// seeded [`dry_run_structure`] under a fuel budget (`limits`, or
/// [`DEFAULT_OPTIMIZE_FUEL`]), and the profile — per-stratum timeline,
/// per-rule breakdown, per-literal selectivities — is returned for
/// rendering. The dry-run data is synthetic; the numbers show *where* the
/// program burns work on cyclic EDB data, not production magnitudes.
///
/// # Errors
/// A [`PragmaError`] when a `%!` pragma is malformed; parse and
/// stratification failures are reported as [`ProfileOutcome::Skipped`].
pub fn profile_source_with_limits(
    source: &str,
    detail: ProfileDetail,
    limits: Option<&EvalLimits>,
) -> Result<ProfileOutcome, PragmaError> {
    let decls = scan_pragmas(source)?;
    let structure = synthetic_structure(source, &decls);
    let program = match parse_program(source, &structure) {
        Ok(p) => p,
        Err(e) => {
            return Ok(ProfileOutcome::Skipped(format!(
                "parse error at {}: {}",
                e.span, e.message
            )))
        }
    };
    let budget = limits
        .cloned()
        .unwrap_or_else(|| EvalLimits::new().fuel(DEFAULT_OPTIMIZE_FUEL));
    let mut options = EvalOptions::new().profile(detail).limits(budget);
    if !decls.outputs.is_empty() {
        options = options.outputs(decls.outputs.iter().cloned());
    }
    let mut evaluator = match Evaluator::with_options(program, options) {
        Ok(ev) => ev,
        Err(e) => return Ok(ProfileOutcome::Skipped(format!("evaluation setup: {e}"))),
    };
    match evaluator.evaluate(&dry_run_structure(&structure)) {
        Ok(result) => Ok(ProfileOutcome::Profiled(Box::new(ProfileDump {
            profile: result.profile.map(|p| *p).unwrap_or_default(),
            stats: result.stats,
            tripped: None,
        }))),
        Err(EvalError::LimitExceeded {
            kind,
            stats,
            partial,
        }) => Ok(ProfileOutcome::Profiled(Box::new(ProfileDump {
            profile: partial
                .and_then(|p| p.profile)
                .map(|p| *p)
                .unwrap_or_default(),
            stats,
            tripped: Some(kind.as_str().to_owned()),
        }))),
        Err(e) => Ok(ProfileOutcome::Skipped(format!("evaluation: {e}"))),
    }
}

/// The structure the `--explain` / `--profile` dry-runs evaluate over:
/// the synthetic structure's signature and domain (padded to at least
/// four elements so seeding is possible for files without constants),
/// with every extensional relation seeded with a cyclic diagonal —
/// tuples `(i, i+1, …)` modulo the domain size, one per element. Cheap,
/// deterministic, and enough to make recursive rules actually iterate,
/// so profiles show real firings and selectivities instead of an empty
/// round 0.
pub fn dry_run_structure(synthetic: &Structure) -> Structure {
    let sig = Arc::clone(synthetic.signature());
    let mut domain = Domain::new();
    for i in 0..synthetic.domain().len() {
        domain.insert(synthetic.domain().name(ElemId(i as u32)));
    }
    let mut pad = 0usize;
    while domain.len() < 4 {
        let name = format!("_dry{pad}");
        if domain.lookup(&name).is_none() {
            domain.insert(name);
        }
        pad += 1;
    }
    let n = domain.len();
    let mut out = Structure::new(Arc::clone(&sig), domain);
    for p in 0..sig.len() {
        let pred = PredId(p as u32);
        let arity = sig.arity(pred);
        if arity == 0 {
            continue;
        }
        let mut tuple = vec![ElemId(0); arity];
        for i in 0..n {
            for (k, slot) in tuple.iter_mut().enumerate() {
                *slot = ElemId(((i + k) % n) as u32);
            }
            out.insert(pred, &tuple);
        }
    }
    out
}

/// A minimal JSON value — parser and printer — so `--json` output
/// round-trips without external dependencies.
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (parsed as `f64`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object; key order is preserved.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field access.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as a string, if it is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as a non-negative integer, if it is a number.
        pub fn as_usize(&self) -> Option<usize> {
            match self {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
                _ => None,
            }
        }

        /// The array items, if it is an array.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// Compact rendering (no insignificant whitespace).
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out);
            out
        }

        fn render_into(&self, out: &mut String) {
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Num(n) => {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                }
                Json::Str(s) => render_string(s, out),
                Json::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.render_into(out);
                    }
                    out.push(']');
                }
                Json::Obj(fields) => {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        render_string(k, out);
                        out.push(':');
                        v.render_into(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    fn render_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.ws();
        let value = p.value()?;
        p.ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn ws(&mut self) {
            while self.pos < self.bytes.len()
                && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
            {
                self.pos += 1;
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.bytes.get(self.pos) {
                None => Err("unexpected end of input".into()),
                Some(b'n') => self.literal("null", Json::Null),
                Some(b't') => self.literal("true", Json::Bool(true)),
                Some(b'f') => self.literal("false", Json::Bool(false)),
                Some(b'"') => self.string().map(Json::Str),
                Some(b'[') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    self.ws();
                    if self.eat(b']') {
                        return Ok(Json::Arr(items));
                    }
                    loop {
                        self.ws();
                        items.push(self.value()?);
                        self.ws();
                        if self.eat(b']') {
                            return Ok(Json::Arr(items));
                        }
                        if !self.eat(b',') {
                            return Err(format!("expected `,` or `]` at byte {}", self.pos));
                        }
                    }
                }
                Some(b'{') => {
                    self.pos += 1;
                    let mut fields = Vec::new();
                    self.ws();
                    if self.eat(b'}') {
                        return Ok(Json::Obj(fields));
                    }
                    loop {
                        self.ws();
                        let key = self.string()?;
                        self.ws();
                        if !self.eat(b':') {
                            return Err(format!("expected `:` at byte {}", self.pos));
                        }
                        self.ws();
                        fields.push((key, self.value()?));
                        self.ws();
                        if self.eat(b'}') {
                            return Ok(Json::Obj(fields));
                        }
                        if !self.eat(b',') {
                            return Err(format!("expected `,` or `}}` at byte {}", self.pos));
                        }
                    }
                }
                Some(_) => self.number(),
            }
        }

        fn eat(&mut self, b: u8) -> bool {
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn string(&mut self) -> Result<String, String> {
            if !self.eat(b'"') {
                return Err(format!("expected `\"` at byte {}", self.pos));
            }
            let mut out = String::new();
            loop {
                let Some(&b) = self.bytes.get(self.pos) else {
                    return Err("unterminated string".into());
                };
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&esc) = self.bytes.get(self.pos) else {
                            return Err("unterminated escape".into());
                        };
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "invalid \\u escape")?;
                                self.pos += 4;
                                out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                            }
                            _ => return Err(format!("invalid escape at byte {}", self.pos)),
                        }
                    }
                    _ => {
                        // Re-decode from the byte position: strings are
                        // UTF-8 in, UTF-8 out.
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len()
                            && self.bytes[end] != b'"'
                            && self.bytes[end] != b'\\'
                        {
                            end += 1;
                        }
                        let chunk = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        out.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && matches!(
                    self.bytes[self.pos],
                    b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
                )
            {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number `{text}` at byte {start}"))
        }
    }
}

use json::Json;

/// Serializes a diagnostic for `--json` output. Inverse of
/// [`diagnostic_from_json`].
pub fn diagnostic_to_json(d: &Diagnostic) -> Json {
    Json::Obj(vec![
        ("code".into(), Json::Str(d.code.code().into())),
        ("severity".into(), Json::Str(d.severity.as_str().into())),
        ("message".into(), Json::Str(d.message.clone())),
        ("line".into(), Json::Num(d.span.line as f64)),
        ("col".into(), Json::Num(d.span.col as f64)),
        ("start".into(), Json::Num(d.span.start as f64)),
        ("end".into(), Json::Num(d.span.end as f64)),
        (
            "rule".into(),
            d.rule.map_or(Json::Null, |r| Json::Num(r as f64)),
        ),
    ])
}

/// Deserializes a diagnostic emitted by [`diagnostic_to_json`].
pub fn diagnostic_from_json(value: &Json) -> Option<Diagnostic> {
    let code = LintCode::from_code(value.get("code")?.as_str()?)?;
    let severity = Severity::from_str_opt(value.get("severity")?.as_str()?)?;
    let span = Span {
        start: value.get("start")?.as_usize()? as u32,
        end: value.get("end")?.as_usize()? as u32,
        line: value.get("line")?.as_usize()? as u32,
        col: value.get("col")?.as_usize()? as u32,
    };
    let rule = match value.get("rule")? {
        Json::Null => None,
        v => Some(v.as_usize()?),
    };
    Some(Diagnostic {
        code,
        severity,
        message: value.get("message")?.as_str()?.to_owned(),
        span,
        rule,
    })
}

/// Version stamp of every machine-readable envelope `mdtw-lint` emits
/// (`--json` per-file objects and the `--profile` output file). Bump it
/// when a field is renamed, removed, or changes meaning — additive
/// fields keep the version.
pub const JSON_SCHEMA_VERSION: u64 = 1;

/// The per-file object of `mdtw-lint --json`: `schema_version`
/// ([`JSON_SCHEMA_VERSION`]), `file`, `diagnostics` (via
/// [`diagnostic_to_json`]), and either a `parse_error` object or a
/// `summary` object; with `--optimize`, an `optimize` field built by
/// [`optimize_json`].
pub fn file_json(path: &str, outcome: &LintOutcome, optimized: Option<&OptimizeOutcome>) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        (
            "schema_version".into(),
            Json::Num(JSON_SCHEMA_VERSION as f64),
        ),
        ("file".into(), Json::Str(path.into())),
    ];
    if let Some(err) = &outcome.parse_error {
        fields.push((
            "parse_error".into(),
            Json::Obj(vec![
                ("message".into(), Json::Str(err.message.clone())),
                ("line".into(), Json::Num(f64::from(err.span.line))),
                ("col".into(), Json::Num(f64::from(err.span.col))),
            ]),
        ));
        fields.push(("diagnostics".into(), Json::Arr(Vec::new())));
        return Json::Obj(fields);
    }
    let report = outcome.report.as_ref().expect("no parse error => report");
    fields.push((
        "diagnostics".into(),
        Json::Arr(report.diagnostics.iter().map(diagnostic_to_json).collect()),
    ));
    fields.push((
        "summary".into(),
        Json::Obj(vec![
            ("errors".into(), Json::Num(report.error_count() as f64)),
            ("warnings".into(), Json::Num(report.warning_count() as f64)),
            ("monadic".into(), Json::Bool(report.monadic)),
            ("recursion".into(), Json::Str(report.recursion.to_string())),
            (
                "strata".into(),
                report.strata.map_or(Json::Null, |n| Json::Num(n as f64)),
            ),
        ]),
    ));
    if let Some(opt) = optimized {
        fields.push(("optimize".into(), optimize_json(opt)));
    }
    Json::Obj(fields)
}

/// Serializes an [`OptimizeOutcome`] for `--json --optimize` output.
pub fn optimize_json(outcome: &OptimizeOutcome) -> Json {
    match outcome {
        OptimizeOutcome::Skipped(reason) => {
            Json::Obj(vec![("skipped".into(), Json::Str(reason.clone()))])
        }
        OptimizeOutcome::Optimized(dump) => Json::Obj(vec![
            (
                "rules".into(),
                Json::Arr(dump.rules.iter().map(|r| Json::Str(r.clone())).collect()),
            ),
            ("rules_before".into(), Json::Num(dump.rules_before as f64)),
            (
                "removed_rules".into(),
                Json::Num(dump.summary.removed_rules as f64),
            ),
            (
                "condensed_literals".into(),
                Json::Num(dump.summary.condensed_literals as f64),
            ),
            (
                "bounded_sccs".into(),
                Json::Num(dump.summary.bounded_sccs as f64),
            ),
            (
                "magic_applied".into(),
                Json::Bool(dump.summary.magic_applied),
            ),
            (
                "magic_rules".into(),
                Json::Num(dump.summary.magic_rules as f64),
            ),
        ]),
    }
}

/// Serializes an [`EvalStats`] counter block for `--json` output; the
/// field names match the struct fields.
pub fn eval_stats_json(stats: &EvalStats) -> Json {
    Json::Obj(vec![
        ("firings".into(), Json::Num(stats.firings as f64)),
        ("facts".into(), Json::Num(stats.facts as f64)),
        ("rounds".into(), Json::Num(stats.rounds as f64)),
        ("index_probes".into(), Json::Num(stats.index_probes as f64)),
        ("full_scans".into(), Json::Num(stats.full_scans as f64)),
        (
            "tuples_considered".into(),
            Json::Num(stats.tuples_considered as f64),
        ),
        (
            "negative_checks".into(),
            Json::Num(stats.negative_checks as f64),
        ),
        ("strata".into(), Json::Num(stats.strata as f64)),
        ("limit_checks".into(), Json::Num(stats.limit_checks as f64)),
        ("fuel_spent".into(), Json::Num(stats.fuel_spent as f64)),
    ])
}

/// Serializes an [`ExplainOutcome`] for `mdtw-lint --explain --json`:
/// either the [`Explanation::to_json`] object or `{"skipped": reason}`.
pub fn explain_outcome_json(outcome: &ExplainOutcome) -> Json {
    match outcome {
        ExplainOutcome::Explained(explanation) => explanation.to_json(),
        ExplainOutcome::Skipped(reason) => {
            Json::Obj(vec![("skipped".into(), Json::Str(reason.clone()))])
        }
    }
}

/// Serializes a [`ProfileOutcome`] for `mdtw-lint --profile --json`:
/// `{"profile": …, "stats": …, "tripped": …}` (see
/// [`EvalProfile::to_json`] and [`eval_stats_json`]) or
/// `{"skipped": reason}`.
pub fn profile_outcome_json(outcome: &ProfileOutcome) -> Json {
    match outcome {
        ProfileOutcome::Profiled(dump) => Json::Obj(vec![
            ("profile".into(), dump.profile.to_json()),
            ("stats".into(), eval_stats_json(&dump.stats)),
            (
                "tripped".into(),
                dump.tripped
                    .as_ref()
                    .map_or(Json::Null, |k| Json::Str(k.clone())),
            ),
        ]),
        ProfileOutcome::Skipped(reason) => {
            Json::Obj(vec![("skipped".into(), Json::Str(reason.clone()))])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragmas_scanned_and_validated() {
        let decls = scan_pragmas(
            "%! edb e/2\n%! edb node/1\n%! output reach\n% plain comment\nreach(X) :- node(X).",
        )
        .unwrap();
        assert_eq!(decls.edb, vec![("e".to_owned(), 2), ("node".to_owned(), 1)]);
        assert_eq!(decls.outputs, vec!["reach".to_owned()]);
        assert!(scan_pragmas("%! edb e").is_err());
        assert!(scan_pragmas("%! edb e/x").is_err());
        assert!(scan_pragmas("%! frobnicate y").is_err());
        assert!(scan_pragmas("%! output reach extra").is_err());
    }

    #[test]
    fn edb_inferred_from_non_head_predicates() {
        let s = synthetic_structure(
            "reach(X) :- start(X).\nreach(Y) :- reach(X), edge(X, Y).",
            &LintDecls::default(),
        );
        let sig = s.signature();
        assert!(sig.lookup("start").is_some());
        assert_eq!(sig.arity(sig.lookup("edge").unwrap()), 2);
        assert!(sig.lookup("reach").is_none(), "head predicates are IDB");
    }

    #[test]
    fn constants_populate_the_domain() {
        let s = synthetic_structure("flag(X) :- e(a, X), e(X, b_2).", &LintDecls::default());
        assert!(s.domain().lookup("a").is_some());
        assert!(s.domain().lookup("b_2").is_some());
        assert!(s.domain().lookup("X").is_none());
    }

    #[test]
    fn lint_source_end_to_end() {
        let out = lint_source(
            "%! output reach\n\
             reach(X) :- start(X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             orphan(X) :- edge(X, Unused).\n",
        )
        .unwrap();
        let report = out.report.expect("parses");
        assert!(!report.has_errors());
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code.code()).collect();
        assert!(codes.contains(&"MD010"), "{codes:?}");
        assert!(codes.contains(&"MD011"), "{codes:?}");
        assert!(codes.contains(&"MD013"), "{codes:?}");
    }

    #[test]
    fn lint_source_reports_parse_errors() {
        let out = lint_source("q(X :- e(X, Y).").unwrap();
        assert!(out.report.is_none());
        let err = out.parse_error.expect("fatal parse error");
        let rendered = render_parse_error(&err, "q(X :- e(X, Y).", "bad.dl");
        assert!(rendered.contains("--> bad.dl:1:1"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn declared_edb_overrides_inference() {
        // `helper` has a rule head, but the explicit declaration wins;
        // lenient parsing then treats `helper(X) :- …` as an
        // extensional-head error the analysis reports as MD002.
        let out =
            lint_source("%! edb e/2\n%! edb helper/1\nq(X) :- helper(X).\nhelper(X) :- e(X, X).")
                .unwrap();
        let report = out.report.expect("lenient parse survives");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::ExtensionalHead));
    }

    #[test]
    fn pragma_errors_carry_real_spans() {
        let source = "% ok\n  %! edb broken\nq(X) :- e(X, X).";
        let err = scan_pragmas(source).unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.span.line, 2);
        assert_eq!(err.span.col, 3);
        assert_eq!(
            &source[err.span.start as usize..err.span.end as usize],
            "%! edb broken"
        );
        let rendered = render_pragma_error(&err, source, "p.dl");
        assert!(rendered.contains("--> p.dl:2:3"), "{rendered}");
        assert!(rendered.contains("^^^^^^^^^^^^^"), "{rendered}");
    }

    #[test]
    fn pragma_spans_survive_crlf_line_endings() {
        let source = "% ok\r\n%! output\r\nq(X) :- e(X, X).\r\n";
        let err = scan_pragmas(source).unwrap_err();
        assert_eq!((err.span.line, err.span.col), (2, 1));
        assert_eq!(
            &source[err.span.start as usize..err.span.end as usize],
            "%! output"
        );
        let rendered = render_pragma_error(&err, source, "p.dl");
        // The caret line must sit under the pragma, not drift by the
        // stripped `\r` bytes, and the echoed source line must not
        // carry the `\r`.
        assert!(rendered.contains("2 | %! output\n"), "{rendered}");
        assert!(rendered.ends_with("| ^^^^^^^^^"), "{rendered}");
    }

    #[test]
    fn optimize_source_dry_runs_the_pipeline() {
        let out = optimize_source(
            "%! edb e/2\n%! edb source/1\n%! output answer\n\
             q(X, Y) :- e(X, Y).\n\
             q(X, Y) :- q(Y, X).\n\
             answer(Y) :- source(X), q(X, Y).",
        )
        .unwrap();
        let OptimizeOutcome::Optimized(dump) = out else {
            panic!("should optimize: {out:?}");
        };
        assert_eq!(dump.rules_before, 3);
        assert_eq!(dump.summary.bounded_sccs, 1);
        assert!(dump.summary.magic_applied);
        assert!(!dump.rules.is_empty());
        assert!(
            dump.rules.iter().any(|r| r.contains("m_")),
            "magic predicates visible in the dump: {:?}",
            dump.rules
        );
    }

    #[test]
    fn optimize_source_skips_unparsable_files() {
        let out = optimize_source("q(X :- e(X, Y).").unwrap();
        assert!(matches!(out, OptimizeOutcome::Skipped(_)));
    }

    #[test]
    fn json_round_trips_diagnostics() {
        let out =
            lint_source("%! output reach\nreach(X) :- start(X).\ndead(X) :- start(X).").unwrap();
        let report = out.report.unwrap();
        assert!(!report.diagnostics.is_empty());
        for d in &report.diagnostics {
            let encoded = diagnostic_to_json(d).render();
            let decoded = diagnostic_from_json(&json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(&decoded, d);
        }
    }

    #[test]
    fn json_value_round_trips() {
        let value = Json::Obj(vec![
            ("s".into(), Json::Str("a\"b\\c\nd\u{1f600}".into())),
            ("n".into(), Json::Num(42.0)),
            ("f".into(), Json::Num(1.5)),
            (
                "a".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Bool(false)]),
            ),
            ("o".into(), Json::Obj(vec![])),
        ]);
        let text = value.render();
        assert_eq!(json::parse(&text).unwrap(), value);
        assert!(json::parse("{\"x\":").is_err());
        assert!(json::parse("[1,2,]").is_err());
        assert!(json::parse("01x").is_err());
    }
}
