//! Quasi-guarded datalog (Definition 4.3) and its linear-time evaluation
//! (Theorem 4.4).
//!
//! A rule is *quasi-guarded* if it contains an extensional body atom `B`
//! such that every rule variable either occurs in `B` or is *functionally
//! dependent* on `B`: its value is uniquely determined by `B`'s in every
//! ground instantiation. Functional dependencies are declared per
//! extensional predicate in an [`FdCatalog`] — e.g. in the τ_td signature
//! the tree-node argument of `bag` determines the whole bag, and `child1`
//! is functional in both directions (a node has at most one first child
//! and at most one parent).
//!
//! Evaluation follows the proof of Theorem 4.4 literally: instantiate each
//! rule once per guard tuple (≤ |𝒜| instantiations), resolve the remaining
//! variables through unique-index lookups, check the residual extensional
//! literals, and hand the resulting ground program `P′` (of size
//! `O(|P|·|𝒜|)`) to the LTUR solver of the [`horn`](mod@crate::horn) module.

use crate::ast::{Literal, PredRef, Program, Rule, Term};
use crate::eval::IdbStore;
use crate::horn::{HornProgram, HornRule};
use crate::limits::Governor;
use mdtw_structure::fx::FxHashMap;
use mdtw_structure::{ElemId, PosIndex, PredId, Structure};
use std::sync::Arc;

/// A declared functional dependency on an extensional predicate: the
/// argument positions in `determinant` uniquely determine the positions in
/// `determined`. Together they must cover the full arity so that a
/// determinant value identifies at most one tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDep {
    /// Determinant argument positions.
    pub determinant: Vec<usize>,
    /// Determined argument positions.
    pub determined: Vec<usize>,
}

/// A catalog of functional dependencies per extensional predicate.
#[derive(Debug, Clone, Default)]
pub struct FdCatalog {
    deps: FxHashMap<PredId, Vec<FuncDep>>,
}

impl FdCatalog {
    /// An empty catalog (only literal guards are then usable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a functional dependency.
    ///
    /// # Panics
    /// Panics if `determinant ∪ determined` does not cover `0..arity` of
    /// intended use (checked lazily during grounding).
    pub fn declare(&mut self, pred: PredId, determinant: Vec<usize>, determined: Vec<usize>) {
        self.deps.entry(pred).or_default().push(FuncDep {
            determinant,
            determined,
        });
    }

    /// The standard catalog for a τ_td signature (paper §4): `child1` and
    /// `child2` are functional in both directions, and the node argument
    /// of `bag` determines the bag contents.
    pub fn for_td_signature(structure: &Structure) -> Self {
        let sig = structure.signature();
        let mut cat = Self::new();
        for name in ["child1", "child2"] {
            if let Some(p) = sig.lookup(name) {
                cat.declare(p, vec![0], vec![1]);
                cat.declare(p, vec![1], vec![0]);
            }
        }
        if let Some(bag) = sig.lookup("bag") {
            let arity = sig.arity(bag);
            cat.declare(bag, vec![0], (1..arity).collect());
        }
        cat
    }

    fn of(&self, pred: PredId) -> &[FuncDep] {
        self.deps.get(&pred).map_or(&[], Vec::as_slice)
    }
}

/// Errors from quasi-guard analysis or grounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QgError {
    /// A rule has no quasi-guard under the declared dependencies.
    NotQuasiGuarded {
        /// Index of the offending rule.
        rule: usize,
    },
    /// The data violates a declared functional dependency.
    FdViolated {
        /// The predicate whose relation violates the dependency.
        pred: PredId,
    },
    /// The program negates an intensional atom: the quasi-guarded
    /// pipeline evaluates semipositive programs only.
    NotSemipositive {
        /// What the semipositivity check rejected.
        message: String,
    },
}

impl std::fmt::Display for QgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QgError::NotQuasiGuarded { rule } => {
                write!(f, "rule {rule} is not quasi-guarded")
            }
            QgError::FdViolated { pred } => {
                write!(
                    f,
                    "relation {pred} violates a declared functional dependency"
                )
            }
            QgError::NotSemipositive { message } => {
                write!(f, "quasi-guarded pipeline is semipositive-only: {message}")
            }
        }
    }
}

impl std::error::Error for QgError {}

/// Statistics from quasi-guarded evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct QgStats {
    /// Number of ground rules produced (`|P′| ≤ |P|·|𝒜|`).
    pub ground_rules: usize,
    /// Number of guard instantiations attempted.
    pub guard_instantiations: usize,
    /// Number of distinct ground atoms.
    pub ground_atoms: usize,
}

/// One step of a rule's variable-resolution plan.
#[derive(Debug, Clone)]
struct PlanStep {
    /// Body literal index supplying the lookup.
    literal: usize,
    /// Functional dependency used.
    fd: FuncDep,
}

/// The grounding plan of one rule.
#[derive(Debug, Clone)]
struct RulePlan {
    /// Guard literal index (`None` for variable-free rules).
    guard: Option<usize>,
    /// Lookup steps executed after binding the guard.
    steps: Vec<PlanStep>,
}

/// Verifies that every rule of `program` is quasi-guarded under `catalog`
/// (structure-independent, so an [`Evaluator`](crate::evaluator::Evaluator)
/// session can validate once at construction).
pub(crate) fn check_quasi_guarded(program: &Program, catalog: &FdCatalog) -> Result<(), QgError> {
    analyze(program, catalog).map(|_| ())
}

/// Verifies that every rule of `program` is quasi-guarded under `catalog`
/// and returns the per-rule plans.
fn analyze(program: &Program, catalog: &FdCatalog) -> Result<Vec<RulePlan>, QgError> {
    let mut plans = Vec::with_capacity(program.rules.len());
    for (ri, rule) in program.rules.iter().enumerate() {
        plans.push(analyze_rule(rule, catalog).ok_or(QgError::NotQuasiGuarded { rule: ri })?);
    }
    Ok(plans)
}

fn analyze_rule(rule: &Rule, catalog: &FdCatalog) -> Option<RulePlan> {
    let nvars = rule.var_count as usize;
    if nvars == 0 {
        return Some(RulePlan {
            guard: None,
            steps: Vec::new(),
        });
    }
    let edb_literals: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| l.positive && matches!(l.atom.pred, PredRef::Edb(_)))
        .map(|(i, _)| i)
        .collect();
    'guards: for &gi in &edb_literals {
        let mut bound = vec![false; nvars];
        for v in rule.body[gi].atom.vars() {
            bound[v.index()] = true;
        }
        let mut steps = Vec::new();
        loop {
            if bound.iter().all(|&b| b) {
                return Some(RulePlan {
                    guard: Some(gi),
                    steps,
                });
            }
            // Find a literal+FD whose determinant is fully bound and which
            // binds at least one new variable.
            let mut progressed = false;
            for &li in &edb_literals {
                let lit = &rule.body[li];
                let pred = match lit.atom.pred {
                    PredRef::Edb(p) => p,
                    PredRef::Idb(_) => unreachable!(),
                };
                for fd in catalog.of(pred) {
                    if fd
                        .determinant
                        .iter()
                        .chain(&fd.determined)
                        .any(|&pos| pos >= lit.atom.terms.len())
                    {
                        continue; // malformed declaration for this arity
                    }
                    let det_bound = fd.determinant.iter().all(|&pos| match lit.atom.terms[pos] {
                        Term::Const(_) => true,
                        Term::Var(v) => bound[v.index()],
                    });
                    if !det_bound {
                        continue;
                    }
                    let mut news = false;
                    for &pos in &fd.determined {
                        if let Term::Var(v) = lit.atom.terms[pos] {
                            if !bound[v.index()] {
                                bound[v.index()] = true;
                                news = true;
                            }
                        }
                    }
                    if news {
                        steps.push(PlanStep {
                            literal: li,
                            fd: fd.clone(),
                        });
                        progressed = true;
                    }
                }
            }
            if !progressed {
                continue 'guards;
            }
        }
    }
    None
}

/// Builds (through the relation's shared index cache) the secondary index
/// on `pred`'s determinant positions and verifies the declared dependency
/// actually holds in the data: a [`PosIndex`] bucket with two rows means
/// two distinct tuples share a determinant value — an FD violation.
///
/// This *is* the unique index of Theorem 4.4's proof; uniqueness makes
/// every bucket a singleton, so lookups are `rows_matching(..).first()`.
fn unique_index(
    structure: &Structure,
    pred: PredId,
    key_positions: &[usize],
) -> Result<Arc<PosIndex>, QgError> {
    let idx = structure.relation(pred).index_on(key_positions);
    if idx.buckets().any(|b| b.len() > 1) {
        return Err(QgError::FdViolated { pred });
    }
    Ok(idx)
}

/// The ground program plus the atom interner used to decode the model.
#[derive(Debug)]
pub struct Grounding {
    /// The propositional Horn program `P′`.
    pub horn: HornProgram,
    /// Ground atom interner: `(IdbId index, args) → atom id`.
    atom_ids: FxHashMap<(u32, Box<[ElemId]>), u32>,
    /// Statistics.
    pub stats: QgStats,
}

impl Grounding {
    /// The atom id of `pred(args)` if it occurs in the grounding.
    pub fn atom_id(&self, pred: crate::ast::IdbId, args: &[ElemId]) -> Option<u32> {
        self.atom_ids.get(&(pred.0, args.into())).copied()
    }
}

/// Grounds a quasi-guarded program over a structure (the construction in
/// the proof of Theorem 4.4).
///
/// # Errors
/// [`QgError::NotSemipositive`] if the program negates an intensional
/// atom, [`QgError::NotQuasiGuarded`] / [`QgError::FdViolated`] from the
/// guard analysis and FD validation.
pub fn ground(
    program: &Program,
    structure: &Structure,
    catalog: &FdCatalog,
) -> Result<Grounding, QgError> {
    ground_governed(program, structure, catalog, &mut Governor::new(None))
}

/// [`ground`] with a resource governor: the guard-instantiation loop is
/// the pipeline's only data-proportional loop, so it carries the work
/// checkpoints (1 fuel unit per guard instantiation). On a trip the
/// grounding is *incomplete* — the caller must not solve it for a model
/// (an incomplete grounding under-constrains nothing but proves nothing).
pub(crate) fn ground_governed(
    program: &Program,
    structure: &Structure,
    catalog: &FdCatalog,
    gov: &mut Governor<'_>,
) -> Result<Grounding, QgError> {
    program
        .check_semipositive()
        .map_err(|message| QgError::NotSemipositive { message })?;
    let plans = analyze(program, catalog)?;

    // Resolve each rule's lookup steps to (predicate, unique index) pairs
    // up front, validating the declared FDs once per distinct index.
    let mut validated: FxHashMap<(PredId, Box<[usize]>), Arc<PosIndex>> = FxHashMap::default();
    let mut step_indexes: Vec<Vec<(PredId, Arc<PosIndex>)>> = Vec::with_capacity(plans.len());
    for (rule, plan) in program.rules.iter().zip(&plans) {
        let mut resolved = Vec::with_capacity(plan.steps.len());
        for step in &plan.steps {
            let pred = match rule.body[step.literal].atom.pred {
                PredRef::Edb(p) => p,
                PredRef::Idb(_) => unreachable!(),
            };
            let key = (pred, step.fd.determinant.clone().into_boxed_slice());
            let idx = match validated.get(&key) {
                Some(idx) => Arc::clone(idx),
                None => {
                    let idx = unique_index(structure, pred, &step.fd.determinant)?;
                    validated.insert(key, Arc::clone(&idx));
                    idx
                }
            };
            resolved.push((pred, idx));
        }
        step_indexes.push(resolved);
    }

    let mut atom_ids: FxHashMap<(u32, Box<[ElemId]>), u32> = FxHashMap::default();
    let mut horn = HornProgram::default();
    let mut stats = QgStats::default();

    let mut intern = |atom_ids: &mut FxHashMap<(u32, Box<[ElemId]>), u32>,
                      pred: u32,
                      args: Box<[ElemId]>|
     -> u32 {
        let next = atom_ids.len() as u32;
        *atom_ids.entry((pred, args)).or_insert(next)
    };

    let mut key_buf: Vec<ElemId> = Vec::new();
    'rules: for ((rule, plan), rule_indexes) in program.rules.iter().zip(&plans).zip(&step_indexes)
    {
        let mut bindings: Vec<Option<ElemId>> = vec![None; rule.var_count as usize];
        match plan.guard {
            None => {
                // Variable-free rule: single instantiation.
                stats.guard_instantiations += 1;
                emit_ground_rule(
                    rule,
                    &bindings,
                    structure,
                    &mut horn,
                    &mut atom_ids,
                    &mut intern,
                    &mut stats,
                );
            }
            Some(gi) => {
                let guard_pred = match rule.body[gi].atom.pred {
                    PredRef::Edb(p) => p,
                    PredRef::Idb(_) => unreachable!(),
                };
                let guard_atom = &rule.body[gi].atom;
                'tuples: for tuple in structure.relation(guard_pred).iter() {
                    stats.guard_instantiations += 1;
                    if gov.work(stats.guard_instantiations, 0) {
                        break 'rules;
                    }
                    bindings.fill(None);
                    // Bind the guard.
                    for (term, &value) in guard_atom.terms.iter().zip(tuple) {
                        match term {
                            Term::Const(c) => {
                                if *c != value {
                                    continue 'tuples;
                                }
                            }
                            Term::Var(v) => match bindings[v.index()] {
                                Some(prev) if prev != value => continue 'tuples,
                                _ => bindings[v.index()] = Some(value),
                            },
                        }
                    }
                    // Execute the lookup plan.
                    for (step, (pred, idx)) in plan.steps.iter().zip(rule_indexes) {
                        let lit = &rule.body[step.literal];
                        key_buf.clear();
                        for &pos in &step.fd.determinant {
                            key_buf.push(match lit.atom.terms[pos] {
                                Term::Const(c) => c,
                                Term::Var(v) => {
                                    bindings[v.index()].expect("determinant bound by plan")
                                }
                            });
                        }
                        let rel = structure.relation(*pred);
                        // FD validation made every bucket a singleton.
                        let Some(&row) = rel.rows_matching(idx, &key_buf).first() else {
                            continue 'tuples; // no matching tuple: rule body unsatisfiable
                        };
                        let found = rel.tuple(row);
                        for (pos, &value) in found.iter().enumerate() {
                            match lit.atom.terms[pos] {
                                Term::Const(c) => {
                                    if c != value {
                                        continue 'tuples;
                                    }
                                }
                                Term::Var(v) => match bindings[v.index()] {
                                    Some(prev) if prev != value => continue 'tuples,
                                    _ => bindings[v.index()] = Some(value),
                                },
                            }
                        }
                    }
                    emit_ground_rule(
                        rule,
                        &bindings,
                        structure,
                        &mut horn,
                        &mut atom_ids,
                        &mut intern,
                        &mut stats,
                    );
                }
            }
        }
    }
    horn.n_atoms = atom_ids.len();
    stats.ground_atoms = atom_ids.len();
    stats.ground_rules = horn.rules.len();
    Ok(Grounding {
        horn,
        atom_ids,
        stats,
    })
}

/// Checks residual extensional literals under full bindings and, if they
/// pass, adds the instantiated rule to the Horn program.
#[allow(clippy::too_many_arguments)]
fn emit_ground_rule(
    rule: &Rule,
    bindings: &[Option<ElemId>],
    structure: &Structure,
    horn: &mut HornProgram,
    atom_ids: &mut FxHashMap<(u32, Box<[ElemId]>), u32>,
    intern: &mut impl FnMut(&mut FxHashMap<(u32, Box<[ElemId]>), u32>, u32, Box<[ElemId]>) -> u32,
    stats: &mut QgStats,
) {
    let value = |t: &Term| -> ElemId {
        match t {
            Term::Const(c) => *c,
            Term::Var(v) => bindings[v.index()].expect("plan bound all variables"),
        }
    };
    let mut body_atoms: Vec<u32> = Vec::new();
    for Literal { atom, positive } in &rule.body {
        let args: Box<[ElemId]> = atom.terms.iter().map(value).collect();
        match atom.pred {
            PredRef::Edb(p) => {
                if structure.holds(p, &args) != *positive {
                    return; // extensional literal fails: drop instantiation
                }
            }
            PredRef::Idb(id) => {
                debug_assert!(*positive, "semipositive program");
                body_atoms.push(intern(atom_ids, id.0, args));
            }
        }
    }
    let head_args: Box<[ElemId]> = rule.head.terms.iter().map(value).collect();
    let head = match rule.head.pred {
        PredRef::Idb(id) => intern(atom_ids, id.0, head_args),
        PredRef::Edb(_) => unreachable!("extensional heads rejected earlier"),
    };
    horn.rules.push(HornRule {
        head,
        body: body_atoms,
    });
    let _ = stats;
}

/// Full quasi-guarded evaluation: ground, run LTUR, decode into an
/// [`IdbStore`]. Runs in `O(|P| · |𝒜|)` (Theorem 4.4).
#[deprecated(
    since = "0.2.0",
    note = "construct an `Evaluator` session with an attached `FdCatalog` \
            (`Evaluator::with_options(program, EvalOptions::new().fd_catalog(catalog))`)"
)]
pub fn eval_quasi_guarded(
    program: &Program,
    structure: &Structure,
    catalog: &FdCatalog,
) -> Result<(IdbStore, QgStats), QgError> {
    run_quasi_guarded(program, structure, catalog, &mut Governor::new(None))
}

/// The quasi-guarded pipeline proper (shared by the deprecated
/// [`eval_quasi_guarded`] wrapper and
/// [`Evaluator`](crate::evaluator::Evaluator) sessions with an attached
/// [`FdCatalog`]). On a governor trip the grounding is incomplete, so the
/// LTUR solve is *skipped* — a least model of a partial grounding is not a
/// subset of the real one — and an empty store is returned; the caller
/// reads the trip off the governor and reports no partial result.
pub(crate) fn run_quasi_guarded(
    program: &Program,
    structure: &Structure,
    catalog: &FdCatalog,
    gov: &mut Governor<'_>,
) -> Result<(IdbStore, QgStats), QgError> {
    let grounding = ground_governed(program, structure, catalog, gov)?;
    // Stage checkpoint at the grounding → solve boundary: guarantees every
    // governed QG run passes at least one checkpoint, however small the
    // structure (the amortized work checks inside the grounding loop only
    // fire every few thousand guard instantiations).
    gov.round(grounding.stats.guard_instantiations, 0);
    if gov.tripped().is_some() {
        return Ok((IdbStore::new_for(program), grounding.stats));
    }
    let model = grounding.horn.least_model();
    let mut store = IdbStore::new_for(program);
    for ((pred, args), id) in &grounding.atom_ids {
        if model[*id as usize] {
            store.insert_raw(crate::ast::IdbId(*pred), args);
        }
    }
    Ok((store, grounding.stats))
}

#[cfg(test)]
#[allow(deprecated)] // unit tests of the deprecated one-shot wrappers themselves
mod tests {
    use super::*;
    use crate::eval::eval_seminaive;
    use crate::parser::parse_program;
    use mdtw_structure::{Domain, Signature};
    use std::sync::Arc;

    /// A chain encoded τ_td-style: next(a,b) functional both ways.
    fn chain_structure(n: usize) -> Structure {
        let sig = Arc::new(Signature::from_pairs([("next", 2), ("first", 1)]));
        let dom = Domain::anonymous(n);
        let mut s = Structure::new(sig, dom);
        let next = s.signature().lookup("next").unwrap();
        let first = s.signature().lookup("first").unwrap();
        s.insert(first, &[ElemId(0)]);
        for i in 0..n - 1 {
            s.insert(next, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
        }
        s
    }

    fn chain_catalog(s: &Structure) -> FdCatalog {
        let mut cat = FdCatalog::new();
        let next = s.signature().lookup("next").unwrap();
        cat.declare(next, vec![0], vec![1]);
        cat.declare(next, vec![1], vec![0]);
        cat
    }

    #[test]
    fn quasi_guarded_chain_reachability() {
        let s = chain_structure(6);
        let cat = chain_catalog(&s);
        let p = parse_program(
            "reach(X) :- first(X).\nreach(Y) :- reach(X), next(X, Y).",
            &s,
        )
        .unwrap();
        let (store, stats) = eval_quasi_guarded(&p, &s, &cat).unwrap();
        let reach = p.idb("reach").unwrap();
        assert_eq!(store.unary(reach).len(), 6);
        // Ground rules: one per `first` tuple + one per `next` tuple.
        assert_eq!(stats.ground_rules, 1 + 5);
    }

    #[test]
    fn agrees_with_seminaive() {
        let s = chain_structure(9);
        let cat = chain_catalog(&s);
        let src = "reach(X) :- first(X).\nreach(Y) :- reach(X), next(X, Y).\n\
                   inner(X) :- reach(X), next(X, Y), !first(X).";
        let p = parse_program(src, &s).unwrap();
        let (qg, _) = eval_quasi_guarded(&p, &s, &cat).unwrap();
        let (sn, _) = eval_seminaive(&p, &s).unwrap();
        for name in ["reach", "inner"] {
            let id = p.idb(name).unwrap();
            assert_eq!(qg.tuples(id), sn.tuples(id), "{name}");
        }
    }

    #[test]
    fn rejects_unguarded_rule() {
        let s = chain_structure(4);
        let cat = FdCatalog::new(); // no FDs declared
                                    // Y is not functionally dependent on any single EDB atom's vars.
        let p = parse_program("pair(X, Y) :- first(X), first(Y).", &s).unwrap();
        // first(X) binds X only; first(Y) binds Y only; neither atom alone
        // covers both and no FDs help... but wait: both are EDB candidates
        // and the *other* literal is also extensional. Without FDs the
        // analysis cannot bind the other variable.
        let err = ground(&p, &s, &cat).unwrap_err();
        assert_eq!(err, QgError::NotQuasiGuarded { rule: 0 });
    }

    #[test]
    fn variable_free_rules_are_quasi_guarded() {
        let s = chain_structure(3);
        let cat = chain_catalog(&s);
        let p = parse_program("flag :- next(x0, x1).\nflag2 :- flag.", &s).unwrap();
        let (store, _) = eval_quasi_guarded(&p, &s, &cat).unwrap();
        assert!(store.holds(p.idb("flag2").unwrap(), &[]));
    }

    #[test]
    fn failing_lookup_drops_instantiation() {
        let s = chain_structure(3);
        let cat = chain_catalog(&s);
        // The last element has no successor: rule must simply not fire.
        let p = parse_program("succ_of(Y) :- first(X), next(X, Y).", &s).unwrap();
        let (store, _) = eval_quasi_guarded(&p, &s, &cat).unwrap();
        assert_eq!(store.unary(p.idb("succ_of").unwrap()), vec![ElemId(1)]);
    }

    #[test]
    fn fd_violation_is_detected() {
        let sig = Arc::new(Signature::from_pairs([("next", 2)]));
        let dom = Domain::anonymous(3);
        let mut s = Structure::new(sig, dom);
        let next = s.signature().lookup("next").unwrap();
        s.insert(next, &[ElemId(0), ElemId(1)]);
        s.insert(next, &[ElemId(0), ElemId(2)]); // violates {0}→{1}
        let mut cat = FdCatalog::new();
        cat.declare(next, vec![0], vec![1]);
        // Guard next(X, X) binds only X; resolving Y requires the (bad)
        // index on next keyed by position 0.
        let p = parse_program("r(Y) :- next(X, X), next(X, Y).", &s).unwrap();
        assert_eq!(
            ground(&p, &s, &cat).unwrap_err(),
            QgError::FdViolated { pred: next }
        );
    }

    #[test]
    fn negative_literals_checked_at_grounding() {
        let s = chain_structure(4);
        let cat = chain_catalog(&s);
        let p = parse_program("mid(Y) :- next(X, Y), !first(X).", &s).unwrap();
        let (store, _) = eval_quasi_guarded(&p, &s, &cat).unwrap();
        assert_eq!(
            store.unary(p.idb("mid").unwrap()),
            vec![ElemId(2), ElemId(3)]
        );
    }
}
