//! Evaluation profiling and plan explanation — the observability layer.
//!
//! [`EvalStats`] answers "how much work did the evaluation do"; this
//! module answers *where*: which stratum, which rule, which body literal.
//! Two surfaces live here:
//!
//! * **Profiles.** [`EvalOptions::profile`](crate::EvalOptions::profile)
//!   selects a [`ProfileDetail`] level; the engines then thread an
//!   `Option<&mut Profiler>` through their hot loops (the same
//!   zero-cost-when-off shape as the resource governor: `Off` costs one
//!   `Option` branch per rule pass and nothing per tuple) and the
//!   evaluation returns a structured [`EvalProfile`] on
//!   [`EvalResult`](crate::EvalResult) — and on the partial result of an
//!   [`EvalError::LimitExceeded`] trip, so a blown budget says where it
//!   blew. Per-literal mode records *observed selectivities* (tuples
//!   enumerated vs. tuples surviving the join position), the feedstock a
//!   feedback-directed re-planner needs.
//! * **Explanations.** [`Evaluator::explain`](crate::Evaluator::explain)
//!   renders the compiled join plans — join order, scan-vs-probe access
//!   paths, chosen key positions, delta splits — as an [`Explanation`]
//!   with human-text and JSON renderings (`mdtw-lint --explain`).
//!
//! Both serialize through the dependency-free [`crate::lint::json`]
//! layer and round-trip ([`EvalProfile::from_json`]).

use crate::ast::{PredRef, Program};
use crate::eval::EvalStats;
use crate::evaluator::EvalError;
use crate::lint::json::Json;
use crate::plan::{Access, JoinPlan, RulePlans};
use crate::stratify::Stratification;
use mdtw_structure::Structure;
use std::time::Instant;

/// How much profiling detail an evaluation collects. Levels are ordered:
/// each one collects everything below it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProfileDetail {
    /// No profiling (the default). Evaluation is bit-identical — store
    /// *and* statistics — to a build without the profiler.
    #[default]
    Off,
    /// Per-stratum timeline: wall time, rounds, facts.
    Strata,
    /// Plus a per-rule breakdown: firings, tuples considered, index
    /// probes vs. full scans, wall time.
    Rules,
    /// Plus per-literal observed selectivities: tuples enumerated at
    /// each join position vs. tuples surviving it.
    Literals,
}

impl ProfileDetail {
    /// A stable lowercase label (`"off"`, `"strata"`, `"rules"`,
    /// `"literals"`), used by the JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            ProfileDetail::Off => "off",
            ProfileDetail::Strata => "strata",
            ProfileDetail::Rules => "rules",
            ProfileDetail::Literals => "literals",
        }
    }

    /// Parses [`ProfileDetail::as_str`] back; `None` on anything else.
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Some(match s {
            "off" => ProfileDetail::Off,
            "strata" => ProfileDetail::Strata,
            "rules" => ProfileDetail::Rules,
            "literals" => ProfileDetail::Literals,
            _ => return None,
        })
    }
}

/// Observed selectivity of one positive body literal of one rule: of the
/// `tuples_in` candidate tuples enumerated at this join position,
/// `tuples_out` unified with the current bindings and survived the
/// negative checks scheduled at the position — i.e. led to deeper join
/// work. `tuples_out / tuples_in` is the literal's observed selectivity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiteralProfile {
    /// Index of the literal in the rule body.
    pub literal: usize,
    /// Candidate tuples enumerated (scanned or probed) at this position.
    pub tuples_in: u64,
    /// Candidates that unified and passed the position's negative checks.
    pub tuples_out: u64,
}

/// Per-rule profile within one stratum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleProfile {
    /// Index of the rule in the session's program.
    pub rule: usize,
    /// The rule's head predicate name.
    pub head: String,
    /// Successful instantiations (including re-derivations).
    pub firings: usize,
    /// Candidate tuples enumerated across the rule's literal accesses.
    pub tuples_considered: usize,
    /// Secondary-index probes the rule's plans performed.
    pub index_probes: usize,
    /// Unindexed full-relation enumerations the rule's plans performed.
    pub full_scans: usize,
    /// Wall time spent in the rule's passes, in nanoseconds. Sampled:
    /// beyond a per-stratum warmup, only a fixed fraction of a rule's
    /// passes read the clock and the total is scaled by the true pass
    /// count, keeping profiling overhead flat on round-heavy fixpoints
    /// where clock reads would otherwise dominate. Counters are exact;
    /// treat `nanos` as an estimate.
    pub nanos: u64,
    /// Per-literal selectivities ([`ProfileDetail::Literals`] only), one
    /// entry per *positive* body literal, in body order.
    pub literals: Vec<LiteralProfile>,
}

/// One stratum's slice of the evaluation timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StratumProfile {
    /// The stratum index in the session's stratification. Empty strata
    /// are skipped, so indices may have gaps.
    pub index: usize,
    /// Wall time spent evaluating the stratum, in nanoseconds.
    pub nanos: u64,
    /// Fixpoint rounds the stratum ran.
    pub rounds: usize,
    /// Facts the stratum derived.
    pub facts: usize,
    /// Per-rule breakdown ([`ProfileDetail::Rules`] and up; empty at
    /// [`ProfileDetail::Strata`]).
    pub rules: Vec<RuleProfile>,
}

/// A structured evaluation profile (see the [module docs](self)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalProfile {
    /// The detail level the profile was collected at.
    pub detail: ProfileDetail,
    /// Per-stratum timeline, in evaluation order.
    pub strata: Vec<StratumProfile>,
    /// The stratum a resource limit tripped in, when the evaluation ended
    /// in [`EvalError::LimitExceeded`].
    pub trip_stratum: Option<usize>,
}

impl EvalProfile {
    /// Total wall time across strata, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.strata.iter().map(|s| s.nanos).sum()
    }

    /// The rule profiles of every stratum flattened, sorted hottest
    /// (most wall time) first — the "which rule burned the time" view.
    pub fn hottest_rules(&self) -> Vec<&RuleProfile> {
        let mut rules: Vec<&RuleProfile> =
            self.strata.iter().flat_map(|s| s.rules.iter()).collect();
        rules.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.rule.cmp(&b.rule)));
        rules
    }

    /// Serializes the profile through the dependency-free JSON layer.
    /// Inverse of [`EvalProfile::from_json`].
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("detail".into(), Json::Str(self.detail.as_str().into())),
            (
                "trip_stratum".into(),
                match self.trip_stratum {
                    Some(k) => Json::Num(k as f64),
                    None => Json::Null,
                },
            ),
            (
                "strata".into(),
                Json::Arr(self.strata.iter().map(stratum_to_json).collect()),
            ),
        ])
    }

    /// Parses a profile serialized by [`EvalProfile::to_json`].
    ///
    /// # Errors
    /// A human-readable message naming the first malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let detail = json
            .get("detail")
            .and_then(Json::as_str)
            .and_then(ProfileDetail::from_str_opt)
            .ok_or("profile: bad `detail`")?;
        let trip_stratum = match json.get("trip_stratum") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_usize().ok_or("profile: bad `trip_stratum`")?),
        };
        let strata = json
            .get("strata")
            .and_then(Json::as_arr)
            .ok_or("profile: missing `strata`")?
            .iter()
            .map(stratum_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EvalProfile {
            detail,
            strata,
            trip_stratum,
        })
    }
}

fn stratum_to_json(s: &StratumProfile) -> Json {
    Json::Obj(vec![
        ("index".into(), Json::Num(s.index as f64)),
        ("nanos".into(), Json::Num(s.nanos as f64)),
        ("rounds".into(), Json::Num(s.rounds as f64)),
        ("facts".into(), Json::Num(s.facts as f64)),
        (
            "rules".into(),
            Json::Arr(s.rules.iter().map(rule_to_json).collect()),
        ),
    ])
}

fn stratum_from_json(json: &Json) -> Result<StratumProfile, String> {
    let field = |k: &str| -> Result<usize, String> {
        json.get(k)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("stratum: bad `{k}`"))
    };
    Ok(StratumProfile {
        index: field("index")?,
        nanos: field("nanos")? as u64,
        rounds: field("rounds")?,
        facts: field("facts")?,
        rules: json
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or("stratum: missing `rules`")?
            .iter()
            .map(rule_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn rule_to_json(r: &RuleProfile) -> Json {
    Json::Obj(vec![
        ("rule".into(), Json::Num(r.rule as f64)),
        ("head".into(), Json::Str(r.head.clone())),
        ("firings".into(), Json::Num(r.firings as f64)),
        (
            "tuples_considered".into(),
            Json::Num(r.tuples_considered as f64),
        ),
        ("index_probes".into(), Json::Num(r.index_probes as f64)),
        ("full_scans".into(), Json::Num(r.full_scans as f64)),
        ("nanos".into(), Json::Num(r.nanos as f64)),
        (
            "literals".into(),
            Json::Arr(
                r.literals
                    .iter()
                    .map(|l| {
                        Json::Obj(vec![
                            ("literal".into(), Json::Num(l.literal as f64)),
                            ("tuples_in".into(), Json::Num(l.tuples_in as f64)),
                            ("tuples_out".into(), Json::Num(l.tuples_out as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn rule_from_json(json: &Json) -> Result<RuleProfile, String> {
    let field = |k: &str| -> Result<usize, String> {
        json.get(k)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("rule profile: bad `{k}`"))
    };
    let literals = json
        .get("literals")
        .and_then(Json::as_arr)
        .ok_or("rule profile: missing `literals`")?
        .iter()
        .map(|l| -> Result<LiteralProfile, String> {
            let lf = |k: &str| -> Result<usize, String> {
                l.get(k)
                    .and_then(Json::as_usize)
                    .ok_or_else(|| format!("literal profile: bad `{k}`"))
            };
            Ok(LiteralProfile {
                literal: lf("literal")?,
                tuples_in: lf("tuples_in")? as u64,
                tuples_out: lf("tuples_out")? as u64,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RuleProfile {
        rule: field("rule")?,
        head: json
            .get("head")
            .and_then(Json::as_str)
            .ok_or("rule profile: bad `head`")?
            .to_owned(),
        firings: field("firings")?,
        tuples_considered: field("tuples_considered")?,
        index_probes: field("index_probes")?,
        full_scans: field("full_scans")?,
        nanos: field("nanos")? as u64,
        literals,
    })
}

// ---------------------------------------------------------------------------
// The collector threaded through the engines
// ---------------------------------------------------------------------------

/// Per-literal counters accumulated during one rule pass (the trace slice
/// the join recursion writes into, indexed by body-literal index).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LitCount {
    pub(crate) tuples_in: u64,
    pub(crate) tuples_out: u64,
}

/// One rule's accumulating counters within the current stratum.
#[derive(Debug)]
struct RuleAcc {
    rule: usize,
    head: String,
    firings: usize,
    tuples_considered: usize,
    index_probes: usize,
    full_scans: usize,
    /// Sampled wall time: the sum over the `timed` passes only —
    /// [`Profiler::end_stratum`] scales it by `passes / timed`.
    nanos: u64,
    passes: u64,
    timed: u64,
    lits: Vec<LitCount>,
    positive: Vec<bool>,
}

/// Every pass of a rule within a stratum is timed until it has run this
/// many times...
const TIMED_WARMUP: u64 = 64;

/// ...after which only one pass in this many reads the clock; the
/// sampled total is scaled back up by the true pass count when the
/// stratum closes. Clock reads cost ~30–70 ns in a VM, which dominates
/// profiling overhead on round-heavy fixpoints (thousands of one-tuple
/// passes), so per-rule wall time is a *sampled estimate* — all the
/// counters (firings, tuples, probes, selectivities) remain exact.
const TIMED_STRIDE: u64 = 8;

/// Extrapolates a sampled nano total over all `passes` of a rule.
fn scale_sampled(sampled: u64, passes: u64, timed: u64) -> u64 {
    if timed == 0 {
        0
    } else {
        (u128::from(sampled) * u128::from(passes) / u128::from(timed)) as u64
    }
}

/// The profile collector the engines thread as `Option<&mut Profiler>`.
/// `None` is the zero-cost off state; a live profiler is driven by the
/// stratum / pass hooks below and folded into an [`EvalProfile`] by
/// [`Profiler::finish`].
#[derive(Debug)]
pub(crate) struct Profiler {
    detail: ProfileDetail,
    strata: Vec<StratumProfile>,
    trip_stratum: Option<usize>,
    cur_index: usize,
    cur_start: Option<Instant>,
    cur_rules: Vec<RuleAcc>,
    trace_buf: Vec<LitCount>,
}

impl Profiler {
    pub(crate) fn new(detail: ProfileDetail) -> Self {
        Profiler {
            detail,
            strata: Vec::new(),
            trip_stratum: None,
            cur_index: 0,
            cur_start: None,
            cur_rules: Vec::new(),
            trace_buf: Vec::new(),
        }
    }

    /// True when per-rule breakdowns are collected (Rules and Literals).
    #[inline]
    pub(crate) fn rules_on(&self) -> bool {
        self.detail >= ProfileDetail::Rules
    }

    /// Opens stratum `index`, preparing one accumulator per rule of the
    /// (sub-)program about to be evaluated. `rule_ids` maps sub-program
    /// rule positions back to session-program rule indices (`None` =
    /// identity, for single-stratum runs over the full program).
    pub(crate) fn begin_stratum(
        &mut self,
        index: usize,
        program: &Program,
        rule_ids: Option<&[usize]>,
    ) {
        self.cur_index = index;
        self.cur_start = Some(Instant::now());
        self.cur_rules.clear();
        if self.rules_on() {
            for (ri, rule) in program.rules.iter().enumerate() {
                let head = match rule.head.pred {
                    PredRef::Idb(id) => program.idb_names[id.index()].clone(),
                    PredRef::Edb(_) => unreachable!("stratify rejects EDB heads"),
                };
                self.cur_rules.push(RuleAcc {
                    rule: rule_ids.map_or(ri, |ids| ids[ri]),
                    head,
                    firings: 0,
                    tuples_considered: 0,
                    index_probes: 0,
                    full_scans: 0,
                    nanos: 0,
                    passes: 0,
                    timed: 0,
                    lits: vec![LitCount::default(); rule.body.len()],
                    positive: rule.body.iter().map(|l| l.positive).collect(),
                });
            }
        }
    }

    /// Opens stratum `index` with timeline-only accounting (no per-rule
    /// accumulators) — used by the quasi-guarded engine, which has no
    /// per-rule pass structure.
    pub(crate) fn begin_stratum_bare(&mut self, index: usize) {
        self.cur_index = index;
        self.cur_start = Some(Instant::now());
        self.cur_rules.clear();
    }

    /// Opens one rule pass and decides whether to read the clock for it:
    /// all of the first [`TIMED_WARMUP`] passes of rule `ri` in this
    /// stratum, then one in [`TIMED_STRIDE`]. The caller stops the
    /// returned timer around the pass and hands the reading to
    /// [`Profiler::end_pass`].
    pub(crate) fn pass_timer(&mut self, ri: usize) -> Option<Instant> {
        let acc = &mut self.cur_rules[ri];
        acc.passes += 1;
        if acc.passes <= TIMED_WARMUP || acc.passes.is_multiple_of(TIMED_STRIDE) {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Prepares the per-literal trace buffer for one rule pass.
    pub(crate) fn begin_pass(&mut self, body_len: usize) {
        if self.detail >= ProfileDetail::Literals {
            self.trace_buf.clear();
            self.trace_buf.resize(body_len, LitCount::default());
        }
    }

    /// The trace slice the join recursion writes per-literal counters
    /// into; `None` below [`ProfileDetail::Literals`].
    #[inline]
    pub(crate) fn trace(&mut self) -> Option<&mut [LitCount]> {
        if self.detail >= ProfileDetail::Literals {
            Some(&mut self.trace_buf)
        } else {
            None
        }
    }

    /// Closes one rule pass: folds the [`EvalStats`] delta between
    /// `before` and `after`, the pass wall time (when this pass was one
    /// of the sampled ones — see [`Profiler::pass_timer`]), and (at
    /// Literals) the trace buffer into rule `ri`'s accumulator.
    pub(crate) fn end_pass(
        &mut self,
        ri: usize,
        before: &EvalStats,
        after: &EvalStats,
        nanos: Option<u64>,
    ) {
        let acc = &mut self.cur_rules[ri];
        acc.firings += after.firings - before.firings;
        acc.tuples_considered += after.tuples_considered - before.tuples_considered;
        acc.index_probes += after.index_probes - before.index_probes;
        acc.full_scans += after.full_scans - before.full_scans;
        if let Some(n) = nanos {
            acc.nanos += n;
            acc.timed += 1;
        }
        if self.detail >= ProfileDetail::Literals {
            for (a, t) in acc.lits.iter_mut().zip(&self.trace_buf) {
                a.tuples_in += t.tuples_in;
                a.tuples_out += t.tuples_out;
            }
        }
    }

    /// Closes the current stratum with its round/fact totals.
    pub(crate) fn end_stratum(&mut self, rounds: usize, facts: usize) {
        let nanos = self
            .cur_start
            .take()
            .map_or(0, |t| t.elapsed().as_nanos() as u64);
        let rules = self
            .cur_rules
            .drain(..)
            .map(|acc| RuleProfile {
                rule: acc.rule,
                head: acc.head,
                firings: acc.firings,
                tuples_considered: acc.tuples_considered,
                index_probes: acc.index_probes,
                full_scans: acc.full_scans,
                nanos: scale_sampled(acc.nanos, acc.passes, acc.timed),
                literals: if self.detail >= ProfileDetail::Literals {
                    acc.lits
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| acc.positive[i])
                        .map(|(i, l)| LiteralProfile {
                            literal: i,
                            tuples_in: l.tuples_in,
                            tuples_out: l.tuples_out,
                        })
                        .collect()
                } else {
                    Vec::new()
                },
            })
            .collect();
        self.strata.push(StratumProfile {
            index: self.cur_index,
            nanos,
            rounds,
            facts,
            rules,
        });
    }

    /// Records that a resource limit tripped in stratum `index`.
    pub(crate) fn mark_trip(&mut self, index: usize) {
        self.trip_stratum = Some(index);
    }

    /// The collected profile.
    pub(crate) fn finish(self) -> EvalProfile {
        EvalProfile {
            detail: self.detail,
            strata: self.strata,
            trip_stratum: self.trip_stratum,
        }
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN: compiled-plan rendering
// ---------------------------------------------------------------------------

/// One step of an explained join plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepExplanation {
    /// Index of the positive literal in the rule body.
    pub literal: usize,
    /// The literal's predicate name.
    pub pred: String,
    /// `"scan"` or `"probe"`.
    pub access: String,
    /// The probed key positions (empty for scans).
    pub key_positions: Vec<usize>,
    /// Negative body literals checked right after this step matches.
    pub negatives_after: Vec<usize>,
}

/// An explained join plan: execution-ordered steps plus the variable-free
/// negative literals checked before any step runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanExplanation {
    /// Steps in execution order.
    pub steps: Vec<StepExplanation>,
    /// Negative literals without variables, checked up front.
    pub ground_negatives: Vec<usize>,
}

/// One rule's explained plans: the round-0 base plan and one delta split
/// per positive intensional body literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleExplanation {
    /// Index of the rule in the session's program.
    pub rule: usize,
    /// The rule rendered back to datalog text.
    pub text: String,
    /// The unconstrained round-0 plan.
    pub base: PlanExplanation,
    /// `(delta body-literal index, plan)` pairs — the semi-naive splits.
    pub delta: Vec<(usize, PlanExplanation)>,
}

/// A program's compiled evaluation strategy, grouped by stratum (see
/// [`Evaluator::explain`](crate::Evaluator::explain)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// The engine the session dispatches to (display form).
    pub engine: String,
    /// Per-stratum rule plans, in evaluation order.
    pub strata: Vec<StratumExplanation>,
}

/// The rules (with plans) evaluated in one stratum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratumExplanation {
    /// The stratum index.
    pub index: usize,
    /// The stratum's rules with their compiled plans.
    pub rules: Vec<RuleExplanation>,
}

impl Explanation {
    /// Renders the explanation as human-readable text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "engine: {}", self.engine);
        for stratum in &self.strata {
            let _ = writeln!(out, "stratum {}:", stratum.index);
            for rule in &stratum.rules {
                let _ = writeln!(out, "  rule {}: {}", rule.rule, rule.text);
                let _ = writeln!(out, "    base:  {}", render_plan(&rule.base));
                for (dpos, plan) in &rule.delta {
                    let _ = writeln!(out, "    delta@{dpos}: {}", render_plan(plan));
                }
            }
        }
        out
    }

    /// Serializes the explanation through the dependency-free JSON layer.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("engine".into(), Json::Str(self.engine.clone())),
            (
                "strata".into(),
                Json::Arr(
                    self.strata
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("index".into(), Json::Num(s.index as f64)),
                                (
                                    "rules".into(),
                                    Json::Arr(s.rules.iter().map(rule_explanation_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn render_plan(plan: &PlanExplanation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if !plan.ground_negatives.is_empty() {
        let _ = write!(out, "check ground !{:?}; ", plan.ground_negatives);
    }
    for (i, step) in plan.steps.iter().enumerate() {
        if i > 0 {
            out.push_str(" -> ");
        }
        if step.access == "probe" {
            let _ = write!(out, "probe {}[{:?}]", step.pred, step.key_positions);
        } else {
            let _ = write!(out, "scan {}", step.pred);
        }
        if !step.negatives_after.is_empty() {
            let _ = write!(out, " then !{:?}", step.negatives_after);
        }
    }
    if plan.steps.is_empty() {
        out.push_str("(fact: no body steps)");
    }
    out
}

fn rule_explanation_json(rule: &RuleExplanation) -> Json {
    Json::Obj(vec![
        ("rule".into(), Json::Num(rule.rule as f64)),
        ("text".into(), Json::Str(rule.text.clone())),
        ("base".into(), plan_explanation_json(&rule.base)),
        (
            "delta".into(),
            Json::Arr(
                rule.delta
                    .iter()
                    .map(|(dpos, plan)| {
                        Json::Obj(vec![
                            ("delta_literal".into(), Json::Num(*dpos as f64)),
                            ("plan".into(), plan_explanation_json(plan)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn plan_explanation_json(plan: &PlanExplanation) -> Json {
    let nums = |v: &[usize]| Json::Arr(v.iter().map(|&n| Json::Num(n as f64)).collect());
    Json::Obj(vec![
        (
            "steps".into(),
            Json::Arr(
                plan.steps
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("literal".into(), Json::Num(s.literal as f64)),
                            ("pred".into(), Json::Str(s.pred.clone())),
                            ("access".into(), Json::Str(s.access.clone())),
                            ("key_positions".into(), nums(&s.key_positions)),
                            ("negatives_after".into(), nums(&s.negatives_after)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("ground_negatives".into(), nums(&plan.ground_negatives)),
    ])
}

/// Builds an [`Explanation`] from compiled plans. Plans are compiled
/// against the *base* program and structure statistics; in multi-stratum
/// evaluation, lower strata are materialized as extensional relations
/// with real cardinalities before the higher strata plan, which can shift
/// greedy tie-breaks — the explanation shows the structure-statistics
/// baseline.
pub(crate) fn explain_plans(
    program: &Program,
    strat: &Stratification,
    structure: &Structure,
    plans: &[RulePlans],
    engine: String,
) -> Explanation {
    let pred_name = |pred: PredRef| -> String {
        match pred {
            PredRef::Edb(p) => structure.signature().name(p).to_owned(),
            PredRef::Idb(id) => program.idb_names[id.index()].clone(),
        }
    };
    let explain_plan = |rule_idx: usize, plan: &JoinPlan| -> PlanExplanation {
        let rule = &program.rules[rule_idx];
        PlanExplanation {
            steps: plan
                .steps
                .iter()
                .map(|step| {
                    let (access, key_positions) = match &step.access {
                        Access::Scan => ("scan".to_owned(), Vec::new()),
                        Access::Probe { positions } => ("probe".to_owned(), positions.clone()),
                    };
                    StepExplanation {
                        literal: step.literal,
                        pred: pred_name(rule.body[step.literal].atom.pred),
                        access,
                        key_positions,
                        negatives_after: step.negatives_after.clone(),
                    }
                })
                .collect(),
            ground_negatives: plan.ground_negatives.clone(),
        }
    };
    let strata = strat
        .strata()
        .iter()
        .enumerate()
        .filter(|(_, rules)| !rules.is_empty())
        .map(|(index, rules)| StratumExplanation {
            index,
            rules: rules
                .iter()
                .map(|&ri| RuleExplanation {
                    rule: ri,
                    text: program.render_rule(&program.rules[ri], structure),
                    base: explain_plan(ri, &plans[ri].base),
                    delta: plans[ri]
                        .delta
                        .iter()
                        .map(|(dpos, plan)| (*dpos, explain_plan(ri, plan)))
                        .collect(),
                })
                .collect(),
        })
        .collect();
    Explanation { engine, strata }
}

/// Per-stratum breakdown of one incremental maintenance pass
/// ([`MaterializedView::apply`](crate::incremental::MaterializedView::apply)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateStratumProfile {
    /// The stratum index.
    pub stratum: usize,
    /// Facts the DRed overdeletion phase removed pending re-derivation.
    pub overdeleted: usize,
    /// Overdeleted facts that survived — re-derived from an alternative
    /// support and restored.
    pub rederived: usize,
    /// Facts genuinely added to this stratum by the update.
    pub inserted: usize,
    /// Facts genuinely removed from this stratum by the update
    /// (overdeleted and not re-derived).
    pub deleted: usize,
    /// Wall-clock nanoseconds spent maintaining this stratum.
    pub nanos: u64,
}

/// What one [`MaterializedView::apply`](crate::incremental::MaterializedView::apply)
/// did: the normalized base delta, the DRed work, the net change to the
/// view, per-stratum timings, and whether resource limits forced a
/// fall-back to full re-evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateProfile {
    /// Base facts actually inserted (requested inserts minus those
    /// already present).
    pub base_inserted: usize,
    /// Base facts actually retracted (requested retracts intersected
    /// with the present facts, minus same-batch re-inserts).
    pub base_retracted: usize,
    /// Total derived facts overdeleted across strata.
    pub overdeleted: usize,
    /// Total overdeleted facts re-derived (restored).
    pub rederived: usize,
    /// Net derived facts added to the view.
    pub inserted: usize,
    /// Net derived facts removed from the view.
    pub deleted: usize,
    /// Per-stratum breakdown, bottom-up. Empty when the update was a
    /// no-op or the maintenance fell back before any stratum completed.
    pub strata: Vec<UpdateStratumProfile>,
    /// `Some(kind)` when a resource limit tripped mid-maintenance and
    /// the view fell back to an ungoverned full re-evaluation (the view
    /// is still exact; the incremental path was abandoned).
    pub fell_back: Option<crate::limits::LimitKind>,
    /// Wall-clock nanoseconds for the whole `apply`, fall-back included.
    pub total_nanos: u64,
}

impl UpdateProfile {
    /// Serializes the update profile as JSON (the maintenance twin of
    /// [`EvalProfile::to_json`]).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("base_inserted".into(), Json::Num(self.base_inserted as f64)),
            (
                "base_retracted".into(),
                Json::Num(self.base_retracted as f64),
            ),
            ("overdeleted".into(), Json::Num(self.overdeleted as f64)),
            ("rederived".into(), Json::Num(self.rederived as f64)),
            ("inserted".into(), Json::Num(self.inserted as f64)),
            ("deleted".into(), Json::Num(self.deleted as f64)),
            (
                "strata".into(),
                Json::Arr(
                    self.strata
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("stratum".into(), Json::Num(s.stratum as f64)),
                                ("overdeleted".into(), Json::Num(s.overdeleted as f64)),
                                ("rederived".into(), Json::Num(s.rederived as f64)),
                                ("inserted".into(), Json::Num(s.inserted as f64)),
                                ("deleted".into(), Json::Num(s.deleted as f64)),
                                ("nanos".into(), Json::Num(s.nanos as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fell_back".into(),
                match self.fell_back {
                    Some(kind) => Json::Str(kind.as_str().into()),
                    None => Json::Null,
                },
            ),
            ("total_nanos".into(), Json::Num(self.total_nanos as f64)),
        ])
    }
}

/// Serializes an [`EvalError`] as a machine-readable JSON object — the
/// error twin of [`EvalProfile::to_json`], used by the `--profile` flags
/// of `mdtw-lint` and `bench_report`. A
/// [`EvalError::LimitExceeded`] names the limit kind, the tripping
/// stratum, the counters at the trip and whether a partial result was
/// attached; other errors carry their display rendering.
pub fn eval_error_json(err: &EvalError) -> Json {
    match err {
        EvalError::LimitExceeded {
            kind,
            stats,
            partial,
        } => Json::Obj(vec![
            ("error".into(), Json::Str("limit_exceeded".into())),
            ("kind".into(), Json::Str(kind.as_str().into())),
            ("stratum".into(), Json::Num(stats.strata as f64)),
            ("facts".into(), Json::Num(stats.facts as f64)),
            ("rounds".into(), Json::Num(stats.rounds as f64)),
            ("partial".into(), Json::Bool(partial.is_some())),
        ]),
        other => Json::Obj(vec![
            ("error".into(), Json::Str("eval_error".into())),
            ("message".into(), Json::Str(other.to_string())),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detail_labels_round_trip() {
        for detail in [
            ProfileDetail::Off,
            ProfileDetail::Strata,
            ProfileDetail::Rules,
            ProfileDetail::Literals,
        ] {
            assert_eq!(ProfileDetail::from_str_opt(detail.as_str()), Some(detail));
        }
        assert_eq!(ProfileDetail::from_str_opt("bogus"), None);
        assert!(ProfileDetail::Off < ProfileDetail::Strata);
        assert!(ProfileDetail::Rules < ProfileDetail::Literals);
    }

    #[test]
    fn profile_json_round_trips() {
        let profile = EvalProfile {
            detail: ProfileDetail::Literals,
            strata: vec![StratumProfile {
                index: 1,
                nanos: 12345,
                rounds: 7,
                facts: 42,
                rules: vec![RuleProfile {
                    rule: 3,
                    head: "path".into(),
                    firings: 9,
                    tuples_considered: 20,
                    index_probes: 5,
                    full_scans: 1,
                    nanos: 999,
                    literals: vec![LiteralProfile {
                        literal: 0,
                        tuples_in: 20,
                        tuples_out: 9,
                    }],
                }],
            }],
            trip_stratum: Some(1),
        };
        let json = profile.to_json();
        let text = json.render();
        let reparsed = crate::lint::json::parse(&text).expect("renders valid JSON");
        assert_eq!(EvalProfile::from_json(&reparsed).unwrap(), profile);
    }

    #[test]
    fn hottest_rules_sorts_by_time() {
        let mk = |rule: usize, nanos: u64| RuleProfile {
            rule,
            nanos,
            ..RuleProfile::default()
        };
        let profile = EvalProfile {
            detail: ProfileDetail::Rules,
            strata: vec![
                StratumProfile {
                    index: 0,
                    nanos: 310,
                    rules: vec![mk(0, 10), mk(1, 300)],
                    ..StratumProfile::default()
                },
                StratumProfile {
                    index: 1,
                    nanos: 200,
                    rules: vec![mk(2, 200)],
                    ..StratumProfile::default()
                },
            ],
            trip_stratum: None,
        };
        let order: Vec<usize> = profile.hottest_rules().iter().map(|r| r.rule).collect();
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(profile.total_nanos(), 510);
    }
}
