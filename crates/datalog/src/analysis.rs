//! Static analysis & lint diagnostics over datalog [`Program`]s.
//!
//! The paper's pipeline rests on *static* properties of programs —
//! monadicity, (quasi-)guardedness, safety, stratifiability. This module
//! unifies those checks (previously scattered across the parser,
//! [`stratify`](mod@crate::stratify) and the quasi-guard analyzer) with a
//! battery of lint passes behind one diagnostic framework:
//!
//! * stable codes (`MD001`, `MD010`, …) — see [`LintCode`] for the table;
//! * three severities ([`Severity::Error`] / `Warning` / `Note`);
//! * source locations ([`Span`]) whenever the program was parsed from
//!   text (hand-built programs report dummy spans).
//!
//! [`analyze`] runs every pass and returns a [`ProgramReport`]:
//! diagnostics plus the classification facts other layers consume —
//! monadicity, linear-vs-nonlinear recursion with a conservative
//! boundedness verdict, stratum count, per-rule relevance w.r.t. declared
//! output predicates and the possibly-nonempty fixpoint. The relevance
//! bitmap also drives the opt-in dead-rule pruning of
//! [`EvalOptions::prune_dead_rules`](crate::evaluator::EvalOptions::prune_dead_rules),
//! and the `mdtw-lint` driver (see [`lint`](crate::lint)) renders the
//! diagnostics with rustc-style carets.

use crate::ast::{IdbId, Literal, PredRef, Program, Rule, Term};
use crate::ground::{check_quasi_guarded, FdCatalog, QgError};
use crate::limits::EvalLimits;
use crate::span::Span;
use crate::stratify::{stratify, StratificationError};
use mdtw_structure::fx::FxHashMap;
use mdtw_structure::Signature;
use std::fmt;
use std::sync::Arc;

/// How serious a [`Diagnostic`] is. Ordered `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational classification (e.g. "this program is not monadic").
    Note,
    /// Probably a mistake, but the program is still evaluable.
    Warning,
    /// The program cannot be evaluated as written.
    Error,
}

impl Severity {
    /// The lowercase rustc-style label (`error` / `warning` / `note`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses the label produced by [`Severity::as_str`].
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The stable lint codes. Every diagnostic carries one; codes never
/// change meaning across versions (new codes are appended).
///
/// | Code  | Severity | Meaning |
/// |-------|----------|---------|
/// | MD001 | error    | unsafe rule (violates range restriction) |
/// | MD002 | error    | extensional predicate in a rule head |
/// | MD003 | error    | negation inside a recursive component (unstratifiable) |
/// | MD010 | warning  | predicate unreachable from the declared outputs |
/// | MD011 | warning  | rule irrelevant to the declared outputs (dead rule) |
/// | MD012 | warning  | intensional predicate can never derive a fact |
/// | MD013 | warning  | variable occurs only once in its rule |
/// | MD014 | warning  | intensional predicate shadows an extensional one |
/// | MD015 | warning  | rule duplicates an earlier rule |
/// | MD016 | warning  | rule subsumed by an earlier rule with fewer body literals |
/// | MD017 | warning  | rule uniformly contained in the rest of the program (semantic) |
/// | MD020 | note     | program is not monadic |
/// | MD021 | note     | nonlinear recursion (≥ 2 recursive body literals) |
/// | MD022 | note     | linear recursion provably bounded |
/// | MD023 | note     | recursive component proven bounded (rewrites nonrecursive) |
/// | MD030 | warning  | rule has no quasi-guard under the declared FDs |
/// | MD040 | note     | magic-set demand transformation applies to the outputs |
/// | MD041 | note     | predicates need full materialization under the demand rewrite |
///
/// The MD017/MD023/MD040-series codes come from the *semantic* tier
/// (opt-in via [`AnalysisOptions::semantic`], skipped when error-level
/// diagnostics are present) — they run the actual containment and
/// transformation machinery of [`transform`](crate::transform).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintCode {
    /// `MD001`: the rule violates the safety (range restriction)
    /// condition.
    UnsafeRule,
    /// `MD002`: an extensional predicate appears in a rule head.
    ExtensionalHead,
    /// `MD003`: a predicate is negated inside its own recursive
    /// component — the program has no stratified semantics.
    NegativeCycle,
    /// `MD010`: an intensional predicate is unreachable from the declared
    /// output predicates.
    UnusedPredicate,
    /// `MD011`: a rule derives only predicates irrelevant to the declared
    /// outputs (a *dead rule*; dropped by
    /// [`prune_dead_rules`](crate::evaluator::EvalOptions::prune_dead_rules)).
    DeadRule,
    /// `MD012`: an intensional predicate can never derive a fact (no
    /// rules, or every rule depends on an always-empty predicate).
    AlwaysEmptyPredicate,
    /// `MD013`: a variable occurs exactly once in its rule (prefix the
    /// name with `_` to mark it intentional).
    SingletonVariable,
    /// `MD014`: an intensional predicate shares its name with an
    /// extensional predicate of the input signature (only possible in
    /// hand-built programs — the parser resolves such names to the EDB).
    ShadowedPredicate,
    /// `MD015`: the rule duplicates an earlier rule (same head, same body
    /// literals up to reordering).
    DuplicateRule,
    /// `MD016`: the rule is subsumed by an earlier rule with the same
    /// head whose body literals form a strict subset of this rule's.
    SubsumedRule,
    /// `MD017`: the rest of the program *uniformly contains* the rule —
    /// semantic redundancy, decided by Sagiv's canonical-database test
    /// ([`transform::redundant_rules`](crate::transform::redundant_rules));
    /// [`EvalOptions::minimize`](crate::evaluator::EvalOptions::minimize)
    /// removes it.
    SemanticallySubsumedRule,
    /// `MD020`: the program is not monadic — some intensional predicate
    /// has arity ≠ 1 (the paper's tractability results are for the
    /// monadic fragment).
    NonMonadic,
    /// `MD021`: a rule has two or more recursive body literals (nonlinear
    /// recursion).
    NonLinearRecursion,
    /// `MD022`: a linear-recursive rule is conservatively provably
    /// bounded — its recursive literal repeats the head, so it derives
    /// nothing new.
    BoundedRecursion,
    /// `MD023`: a recursive component is *proven* bounded by the iterated
    /// unfolding-containment test
    /// ([`transform::bounded_sccs`](crate::transform::bounded_sccs)) and
    /// can be rewritten nonrecursive
    /// ([`EvalOptions::eliminate_bounded_recursion`](crate::evaluator::EvalOptions::eliminate_bounded_recursion)).
    ProvablyBoundedScc,
    /// `MD030`: a rule has no quasi-guard under the declared functional
    /// dependencies (the Theorem 4.4 pipeline would reject it).
    NoQuasiGuard,
    /// `MD040`: the magic-set demand transformation applies to the
    /// declared outputs
    /// ([`EvalOptions::magic_sets`](crate::evaluator::EvalOptions::magic_sets)
    /// would specialize evaluation).
    MagicApplicable,
    /// `MD041`: the demand transformation is limited — either negation
    /// forces predicates to stay fully materialized, or no output admits
    /// a bound adornment at all.
    MagicFullMaterialization,
}

impl LintCode {
    /// Every code, in numeric order.
    pub const ALL: [LintCode; 18] = [
        LintCode::UnsafeRule,
        LintCode::ExtensionalHead,
        LintCode::NegativeCycle,
        LintCode::UnusedPredicate,
        LintCode::DeadRule,
        LintCode::AlwaysEmptyPredicate,
        LintCode::SingletonVariable,
        LintCode::ShadowedPredicate,
        LintCode::DuplicateRule,
        LintCode::SubsumedRule,
        LintCode::SemanticallySubsumedRule,
        LintCode::NonMonadic,
        LintCode::NonLinearRecursion,
        LintCode::BoundedRecursion,
        LintCode::ProvablyBoundedScc,
        LintCode::NoQuasiGuard,
        LintCode::MagicApplicable,
        LintCode::MagicFullMaterialization,
    ];

    /// The stable code string, e.g. `"MD001"`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::UnsafeRule => "MD001",
            LintCode::ExtensionalHead => "MD002",
            LintCode::NegativeCycle => "MD003",
            LintCode::UnusedPredicate => "MD010",
            LintCode::DeadRule => "MD011",
            LintCode::AlwaysEmptyPredicate => "MD012",
            LintCode::SingletonVariable => "MD013",
            LintCode::ShadowedPredicate => "MD014",
            LintCode::DuplicateRule => "MD015",
            LintCode::SubsumedRule => "MD016",
            LintCode::SemanticallySubsumedRule => "MD017",
            LintCode::NonMonadic => "MD020",
            LintCode::NonLinearRecursion => "MD021",
            LintCode::BoundedRecursion => "MD022",
            LintCode::ProvablyBoundedScc => "MD023",
            LintCode::NoQuasiGuard => "MD030",
            LintCode::MagicApplicable => "MD040",
            LintCode::MagicFullMaterialization => "MD041",
        }
    }

    /// Resolves a code string (as produced by [`LintCode::code`]).
    pub fn from_code(code: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.code() == code)
    }

    /// The severity diagnostics with this code carry.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::UnsafeRule | LintCode::ExtensionalHead | LintCode::NegativeCycle => {
                Severity::Error
            }
            LintCode::UnusedPredicate
            | LintCode::DeadRule
            | LintCode::AlwaysEmptyPredicate
            | LintCode::SingletonVariable
            | LintCode::ShadowedPredicate
            | LintCode::DuplicateRule
            | LintCode::SubsumedRule
            | LintCode::SemanticallySubsumedRule
            | LintCode::NoQuasiGuard => Severity::Warning,
            LintCode::NonMonadic
            | LintCode::NonLinearRecursion
            | LintCode::BoundedRecursion
            | LintCode::ProvablyBoundedScc
            | LintCode::MagicApplicable
            | LintCode::MagicFullMaterialization => Severity::Note,
        }
    }

    /// A one-line description of the condition the code flags.
    pub fn description(self) -> &'static str {
        match self {
            LintCode::UnsafeRule => "rule violates the safety (range restriction) condition",
            LintCode::ExtensionalHead => "extensional predicate in a rule head",
            LintCode::NegativeCycle => "negation inside a recursive component (unstratifiable)",
            LintCode::UnusedPredicate => "predicate unreachable from the declared outputs",
            LintCode::DeadRule => "rule irrelevant to the declared outputs",
            LintCode::AlwaysEmptyPredicate => "intensional predicate can never derive a fact",
            LintCode::SingletonVariable => "variable occurs only once in its rule",
            LintCode::ShadowedPredicate => "intensional predicate shadows an extensional one",
            LintCode::DuplicateRule => "rule duplicates an earlier rule",
            LintCode::SubsumedRule => "rule subsumed by an earlier rule",
            LintCode::SemanticallySubsumedRule => {
                "rule uniformly contained in the rest of the program"
            }
            LintCode::NonMonadic => "program is not monadic",
            LintCode::NonLinearRecursion => "nonlinear recursion",
            LintCode::BoundedRecursion => "linear recursion provably bounded",
            LintCode::ProvablyBoundedScc => "recursive component proven bounded (unfolds away)",
            LintCode::NoQuasiGuard => "rule has no quasi-guard under the declared FDs",
            LintCode::MagicApplicable => "magic-set demand transformation applies to the outputs",
            LintCode::MagicFullMaterialization => {
                "predicate(s) require full materialization under the demand transformation"
            }
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One analysis finding: a coded, located, human-readable condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// Severity (always [`LintCode::severity`] of `code`).
    pub severity: Severity,
    /// Human-readable message (no location — that is in `span`).
    pub message: String,
    /// Source location; [`Span::DUMMY`] for program-global findings or
    /// hand-built programs.
    pub span: Span,
    /// The rule (index into [`Program::rules`]) the finding anchors to,
    /// if any.
    pub rule: Option<usize>,
}

impl Diagnostic {
    fn new(code: LintCode, message: String, span: Span, rule: Option<usize>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message,
            span,
            rule,
        }
    }

    /// Renders the diagnostic rustc-style. With `source` available and a
    /// known span, includes the offending line with a caret underline:
    ///
    /// ```text
    /// warning[MD013]: variable `Y` occurs only once in the rule
    ///   --> prog.dl:3:9
    ///    |
    ///  3 | far(X) :- e(X, Y).
    ///    |           ^^^^^^^
    /// ```
    pub fn render(&self, source: Option<&str>, path: &str) -> String {
        format!(
            "{}[{}]: {}{}",
            self.severity,
            self.code,
            self.message,
            crate::span::caret_snippet(self.span, source, path)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_known() {
            write!(
                f,
                "{}[{}] at {}: {}",
                self.severity, self.code, self.span, self.message
            )
        } else {
            write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
        }
    }
}

/// Recursion shape of a program (over its positive dependency SCCs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecursionClass {
    /// No rule depends on its own strongly connected component.
    NonRecursive,
    /// Recursion present, every recursive rule has exactly one recursive
    /// body literal.
    Linear,
    /// Some rule has two or more recursive body literals.
    NonLinear,
}

impl fmt::Display for RecursionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecursionClass::NonRecursive => "non-recursive",
            RecursionClass::Linear => "linear",
            RecursionClass::NonLinear => "nonlinear",
        })
    }
}

/// What [`analyze`] should know beyond the program itself. All fields are
/// optional; passes needing an absent input are skipped.
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptions {
    outputs: Option<Vec<String>>,
    edb_signature: Option<Arc<Signature>>,
    fd_catalog: Option<FdCatalog>,
    semantic: bool,
    limits: Option<EvalLimits>,
}

/// Default fuel budget for the semantic tier's containment probes when
/// [`AnalysisOptions::limits`] is not set: generous enough for every
/// reasonable program, small enough that linting can never hang on an
/// adversarial one.
pub const DEFAULT_SEMANTIC_FUEL: u64 = 5_000_000;

impl AnalysisOptions {
    /// No outputs, no signature, no FD catalog: relevance (`MD010`/
    /// `MD011`), shadowing (`MD014`) and quasi-guard (`MD030`) passes are
    /// skipped.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the *output* predicates — what the program is evaluated
    /// for. Enables the relevance passes (`MD010` unreachable predicate,
    /// `MD011` dead rule). Names not naming an intensional predicate of
    /// the program are ignored.
    pub fn outputs<I, S>(mut self, outputs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.outputs = Some(outputs.into_iter().map(Into::into).collect());
        self
    }

    /// Provides the extensional signature the program will run against,
    /// enabling the shadowed-predicate pass (`MD014`).
    pub fn edb_signature(mut self, sig: Arc<Signature>) -> Self {
        self.edb_signature = Some(sig);
        self
    }

    /// Provides a functional-dependency catalog, enabling the
    /// quasi-guard pass (`MD030`, the static half of Theorem 4.4).
    pub fn fd_catalog(mut self, catalog: FdCatalog) -> Self {
        self.fd_catalog = Some(catalog);
        self
    }

    /// Enables the *semantic* tier (`MD017` uniform containment, `MD023`
    /// proven boundedness, `MD040`/`MD041` magic-set applicability) —
    /// off by default because it evaluates canonical databases through
    /// the engine rather than just walking the AST. Skipped whenever
    /// error-level diagnostics are present, since the containment tests
    /// assume an evaluable program.
    pub fn semantic(mut self, on: bool) -> Self {
        self.semantic = on;
        self
    }

    /// Budgets the semantic tier's containment probes. When unset, a
    /// default fuel budget of [`DEFAULT_SEMANTIC_FUEL`] applies, so
    /// analysis terminates even on adversarial programs whose canonical
    /// databases explode. A tripped budget surfaces as
    /// [`SemanticReport::budget_tripped`] — affected transforms are
    /// reported as "not proven", never misreported.
    pub fn limits(mut self, limits: EvalLimits) -> Self {
        self.limits = Some(limits);
        self
    }
}

/// What the semantic tier learned (see [`AnalysisOptions::semantic`]).
#[derive(Debug, Clone, Default)]
pub struct SemanticReport {
    /// Per-rule verdict of the uniform-containment test (`true` = the
    /// rest of the program makes the rule redundant).
    pub redundant_rules: Vec<bool>,
    /// Recursive components proven bounded, with their nonrecursive
    /// replacements.
    pub bounded_sccs: Vec<crate::transform::BoundedScc>,
    /// What the magic-set transformation would do, when outputs were
    /// declared.
    pub magic: Option<MagicSummary>,
    /// Whether a containment probe ran out of budget (see
    /// [`AnalysisOptions::limits`]). Tripped probes degrade to "not
    /// proven": redundancy flags stay `false` and SCCs stay unproven.
    pub budget_tripped: bool,
}

/// Magic-set applicability for the declared outputs.
#[derive(Debug, Clone, Default)]
pub struct MagicSummary {
    /// True when some output admits a bound adornment (the rewrite would
    /// change evaluation).
    pub applicable: bool,
    /// Adorned predicate versions the rewrite would create.
    pub adorned: usize,
    /// Magic (demand) rules the rewrite would emit.
    pub magic_rules: usize,
    /// Predicates negation forces to stay fully materialized.
    pub full_preds: Vec<String>,
}

/// Everything [`analyze`] learned about a program: the diagnostics plus
/// the classification facts other layers consume.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// All findings, in source order (unknown-span findings last).
    pub diagnostics: Vec<Diagnostic>,
    /// True iff every intensional predicate has arity 1 (the paper's
    /// monadic fragment).
    pub monadic: bool,
    /// Linear / nonlinear / non-recursive classification.
    pub recursion: RecursionClass,
    /// True if the program is conservatively *provably bounded*: it has
    /// no recursion, or every recursive rule's recursive literal repeats
    /// its head (so recursion derives nothing new). `false` means
    /// "possibly unbounded", not "proven unbounded".
    pub bounded: bool,
    /// Stratum count, when the program stratifies (`None` when `MD001`/
    /// `MD002`/`MD003` errors prevent stratification).
    pub strata: Option<usize>,
    /// Per-rule relevance w.r.t. the declared outputs (all `true` when no
    /// outputs were declared). `false` entries are exactly the rules
    /// [`prune_dead_rules`](crate::evaluator::EvalOptions::prune_dead_rules)
    /// drops.
    pub relevant_rules: Vec<bool>,
    /// Per-IDB-predicate verdict of the emptiness fixpoint: `false`
    /// means the predicate provably derives no fact on any structure.
    pub possibly_nonempty: Vec<bool>,
    /// The semantic tier's findings — `None` unless
    /// [`AnalysisOptions::semantic`] was requested *and* the program has
    /// no error-level diagnostics.
    pub semantic: Option<SemanticReport>,
}

impl ProgramReport {
    /// True if any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error diagnostics.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning diagnostics.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The diagnostics carrying `code`, in report order.
    pub fn with_code(&self, code: LintCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }
}

/// The span of rule `i`, when the program was parsed from text.
fn rule_span(program: &Program, i: usize) -> Span {
    program.rule_spans(i).map_or(Span::DUMMY, |s| s.rule)
}

/// The head span of rule `i`.
fn head_span(program: &Program, i: usize) -> Span {
    program.rule_spans(i).map_or(Span::DUMMY, |s| s.head)
}

/// Per-rule relevance w.r.t. `outputs`: the backward closure from the
/// output predicates over positive *and* negative body dependencies (a
/// negated predicate must be fully materialized before the negation is
/// decidable, so it is just as relevant). A rule is relevant iff its head
/// predicate is; rules with extensional heads (invalid, flagged `MD002`)
/// are conservatively kept. Dropping every irrelevant rule of a
/// stratified program leaves the derived facts of all relevant
/// predicates — in particular of every output — unchanged.
pub fn relevant_rules(program: &Program, outputs: &[IdbId]) -> Vec<bool> {
    let n = program.idb_count();
    let mut relevant = vec![false; n];
    let mut queue: Vec<IdbId> = Vec::new();
    for &o in outputs {
        if o.index() < n && !relevant[o.index()] {
            relevant[o.index()] = true;
            queue.push(o);
        }
    }
    // head → body-IDB edges, walked backwards from the outputs.
    let mut deps: Vec<Vec<IdbId>> = vec![Vec::new(); n];
    for rule in &program.rules {
        if let PredRef::Idb(h) = rule.head.pred {
            for lit in &rule.body {
                if let PredRef::Idb(b) = lit.atom.pred {
                    deps[h.index()].push(b);
                }
            }
        }
    }
    while let Some(p) = queue.pop() {
        for &b in &deps[p.index()] {
            if !relevant[b.index()] {
                relevant[b.index()] = true;
                queue.push(b);
            }
        }
    }
    program
        .rules
        .iter()
        .map(|rule| match rule.head.pred {
            PredRef::Idb(h) => relevant[h.index()],
            PredRef::Edb(_) => true,
        })
        .collect()
}

/// The emptiness fixpoint: `possibly_nonempty[p]` is `false` iff `p`
/// provably derives no fact on *any* structure — it has no rules, or
/// every rule has a positive body literal on an always-empty intensional
/// predicate. Extensional relations are conservatively assumed
/// nonempty, as are negated literals.
pub fn possibly_nonempty(program: &Program) -> Vec<bool> {
    let n = program.idb_count();
    let mut nonempty = vec![false; n];
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let PredRef::Idb(h) = rule.head.pred else {
                continue;
            };
            if nonempty[h.index()] {
                continue;
            }
            let feasible = rule.body.iter().all(|lit| {
                !lit.positive
                    || match lit.atom.pred {
                        PredRef::Edb(_) => true,
                        PredRef::Idb(b) => nonempty[b.index()],
                    }
            });
            if feasible {
                nonempty[h.index()] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    nonempty
}

/// Runs every analysis pass over `program`. See the [module docs](self)
/// for the pass battery and [`LintCode`] for the code table.
pub fn analyze(program: &Program, options: &AnalysisOptions) -> ProgramReport {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let n = program.idb_count();

    // --- MD001 / MD002: per-rule validity -------------------------------
    for (i, rule) in program.rules.iter().enumerate() {
        if let PredRef::Edb(p) = rule.head.pred {
            let name = options
                .edb_signature
                .as_ref()
                .map_or_else(|| format!("{p}"), |sig| sig.name(p).to_owned());
            diags.push(Diagnostic::new(
                LintCode::ExtensionalHead,
                format!("extensional predicate `{name}` in rule head"),
                head_span(program, i),
                Some(i),
            ));
        }
        if !rule.is_safe() {
            diags.push(Diagnostic::new(
                LintCode::UnsafeRule,
                "unsafe rule: every head variable and negated-literal variable must occur \
                 in a positive body literal"
                    .into(),
                rule_span(program, i),
                Some(i),
            ));
        }
    }

    // --- MD003 / stratum count ------------------------------------------
    let strata = if diags.iter().any(|d| d.severity == Severity::Error) {
        // stratify() would re-report the per-rule failures; skip it.
        None
    } else {
        match stratify(program) {
            Ok(s) => Some(s.stratum_count()),
            Err(StratificationError::NegativeCycle {
                rule,
                negated,
                cycle,
            }) => {
                diags.push(Diagnostic::new(
                    LintCode::NegativeCycle,
                    format!(
                        "negation of `{negated}` inside a recursive component (cycle: {} \
                         \u{ac}\u{2192} {})",
                        cycle.join(" \u{2192} "),
                        cycle.first().map_or("?", String::as_str),
                    ),
                    rule_span(program, rule),
                    Some(rule),
                ));
                None
            }
            Err(_) => None, // EdbHead/UnsafeRule already reported above
        }
    };

    // --- recursion classification (MD021/MD022) over positive SCCs ------
    let scc_of = idb_sccs(program);
    let mut scc_recursive = vec![false; n];
    {
        let mut scc_size: FxHashMap<usize, usize> = FxHashMap::default();
        for &scc in &scc_of {
            *scc_size.entry(scc).or_insert(0) += 1;
        }
        for rule in &program.rules {
            if let PredRef::Idb(h) = rule.head.pred {
                for lit in &rule.body {
                    if let PredRef::Idb(b) = lit.atom.pred {
                        if b == h {
                            scc_recursive[h.index()] = true;
                        }
                    }
                }
            }
        }
        for (p, scc) in scc_of.iter().enumerate() {
            if scc_size[scc] > 1 {
                scc_recursive[p] = true;
            }
        }
    }
    let mut recursion = RecursionClass::NonRecursive;
    let mut bounded = true;
    for (i, rule) in program.rules.iter().enumerate() {
        let PredRef::Idb(h) = rule.head.pred else {
            continue;
        };
        if !scc_recursive[h.index()] {
            continue;
        }
        let recursive_lits: Vec<&Literal> = rule
            .body
            .iter()
            .filter(|lit| match lit.atom.pred {
                PredRef::Idb(b) => scc_of[b.index()] == scc_of[h.index()],
                PredRef::Edb(_) => false,
            })
            .collect();
        match recursive_lits.len() {
            0 => {} // base case of a recursive predicate
            1 => {
                if recursion == RecursionClass::NonRecursive {
                    recursion = RecursionClass::Linear;
                }
                // Conservative boundedness: a recursive literal identical
                // to the head derives nothing the head doesn't already
                // state.
                if recursive_lits[0].positive && recursive_lits[0].atom == rule.head {
                    diags.push(Diagnostic::new(
                        LintCode::BoundedRecursion,
                        format!(
                            "recursive literal repeats the head `{}`; the rule derives \
                             nothing new (bounded)",
                            program.idb_names[h.index()]
                        ),
                        rule_span(program, i),
                        Some(i),
                    ));
                } else {
                    bounded = false;
                }
            }
            k => {
                recursion = RecursionClass::NonLinear;
                bounded = false;
                diags.push(Diagnostic::new(
                    LintCode::NonLinearRecursion,
                    format!(
                        "nonlinear recursion: {k} body literals recurse into the component of `{}`",
                        program.idb_names[h.index()]
                    ),
                    rule_span(program, i),
                    Some(i),
                ));
            }
        }
    }

    // --- MD020: monadicity ----------------------------------------------
    let monadic = program.idb_arities.iter().all(|&a| a == 1);
    if !monadic {
        let offenders: Vec<String> = program
            .idb_names
            .iter()
            .zip(&program.idb_arities)
            .filter(|&(_, &a)| a != 1)
            .map(|(name, a)| format!("{name}/{a}"))
            .collect();
        let span = program
            .rules
            .iter()
            .position(
                |r| matches!(r.head.pred, PredRef::Idb(h) if program.idb_arities[h.index()] != 1),
            )
            .map_or(Span::DUMMY, |i| head_span(program, i));
        diags.push(Diagnostic::new(
            LintCode::NonMonadic,
            format!(
                "program is not monadic: intensional predicates of arity \u{2260} 1: {}",
                offenders.join(", ")
            ),
            span,
            None,
        ));
    }

    // --- MD010 / MD011: relevance w.r.t. declared outputs ----------------
    let output_ids: Vec<IdbId> = options
        .outputs
        .as_ref()
        .map(|names| names.iter().filter_map(|s| program.idb(s)).collect())
        .unwrap_or_default();
    let relevant = if options.outputs.is_some() {
        let relevant = relevant_rules(program, &output_ids);
        let mut pred_relevant = vec![false; n];
        for &o in &output_ids {
            pred_relevant[o.index()] = true;
        }
        for (i, rule) in program.rules.iter().enumerate() {
            if relevant[i] {
                if let PredRef::Idb(h) = rule.head.pred {
                    pred_relevant[h.index()] = true;
                }
                for lit in &rule.body {
                    if let PredRef::Idb(b) = lit.atom.pred {
                        pred_relevant[b.index()] = true;
                    }
                }
            }
        }
        // Predicates absent from every rule (vestigial name-table
        // entries, e.g. after pruning) are invisible, not unreachable.
        let mut mentioned = vec![false; n];
        for rule in &program.rules {
            if let PredRef::Idb(h) = rule.head.pred {
                mentioned[h.index()] = true;
            }
            for lit in &rule.body {
                if let PredRef::Idb(b) = lit.atom.pred {
                    mentioned[b.index()] = true;
                }
            }
        }
        for p in 0..n {
            if !pred_relevant[p] && mentioned[p] {
                let span = program
                    .rules
                    .iter()
                    .position(|r| matches!(r.head.pred, PredRef::Idb(h) if h.index() == p))
                    .map_or(Span::DUMMY, |i| head_span(program, i));
                diags.push(Diagnostic::new(
                    LintCode::UnusedPredicate,
                    format!(
                        "predicate `{}` is unreachable from the declared outputs",
                        program.idb_names[p]
                    ),
                    span,
                    None,
                ));
            }
        }
        for (i, rule) in program.rules.iter().enumerate() {
            if !relevant[i] {
                let head = match rule.head.pred {
                    PredRef::Idb(h) => program.idb_names[h.index()].as_str(),
                    PredRef::Edb(_) => "?",
                };
                diags.push(Diagnostic::new(
                    LintCode::DeadRule,
                    format!(
                        "dead rule: `{head}` is irrelevant to the declared outputs \
                         (prunable with EvalOptions::prune_dead_rules)"
                    ),
                    rule_span(program, i),
                    Some(i),
                ));
            }
        }
        relevant
    } else {
        vec![true; program.rules.len()]
    };

    // --- MD012: always-empty predicates ----------------------------------
    let nonempty = possibly_nonempty(program);
    for (p, &ne) in nonempty.iter().enumerate() {
        if ne {
            continue;
        }
        // Irrelevant predicates were already reported as MD010.
        if options.outputs.is_some() {
            let referenced_by_relevant = program.rules.iter().enumerate().any(|(i, rule)| {
                relevant[i]
                    && rule
                        .body
                        .iter()
                        .any(|l| matches!(l.atom.pred, PredRef::Idb(b) if b.index() == p))
            });
            let is_output = output_ids.iter().any(|o| o.index() == p);
            if !referenced_by_relevant && !is_output {
                continue;
            }
        }
        let defining = program
            .rules
            .iter()
            .position(|r| matches!(r.head.pred, PredRef::Idb(h) if h.index() == p));
        let (span, detail) = match defining {
            Some(i) => (
                head_span(program, i),
                "every rule depends on an always-empty predicate",
            ),
            None => {
                let span = program
                    .rules
                    .iter()
                    .enumerate()
                    .find_map(|(i, rule)| {
                        rule.body
                            .iter()
                            .position(|l| matches!(l.atom.pred, PredRef::Idb(b) if b.index() == p))
                            .map(|j| {
                                program
                                    .rule_spans(i)
                                    .and_then(|s| s.literals.get(j).copied())
                                    .unwrap_or(Span::DUMMY)
                            })
                    })
                    .unwrap_or(Span::DUMMY);
                (span, "no rule defines it")
            }
        };
        diags.push(Diagnostic::new(
            LintCode::AlwaysEmptyPredicate,
            format!(
                "predicate `{}` can never derive a fact ({detail})",
                program.idb_names[p]
            ),
            span,
            None,
        ));
    }

    // --- MD013: singleton variables --------------------------------------
    for (i, rule) in program.rules.iter().enumerate() {
        let mut counts = vec![0usize; rule.var_count as usize];
        let tally = |counts: &mut Vec<usize>, terms: &[Term]| {
            for t in terms {
                if let Term::Var(v) = t {
                    counts[v.index()] += 1;
                }
            }
        };
        tally(&mut counts, &rule.head.terms);
        for lit in &rule.body {
            tally(&mut counts, &lit.atom.terms);
        }
        for (v, &count) in counts.iter().enumerate() {
            if count != 1 {
                continue;
            }
            let name = rule
                .var_names
                .get(v)
                .cloned()
                .unwrap_or_else(|| format!("V{v}"));
            if name.starts_with('_') {
                continue;
            }
            let span = singleton_span(program, rule, i, v);
            diags.push(Diagnostic::new(
                LintCode::SingletonVariable,
                format!(
                    "variable `{name}` occurs only once in the rule \
                     (prefix it with `_` if intentional)"
                ),
                span,
                Some(i),
            ));
        }
    }

    // --- MD014: shadowed predicates --------------------------------------
    if let Some(sig) = &options.edb_signature {
        for (p, name) in program.idb_names.iter().enumerate() {
            if sig.lookup(name).is_some() {
                let span = program
                    .rules
                    .iter()
                    .position(|r| matches!(r.head.pred, PredRef::Idb(h) if h.index() == p))
                    .map_or(Span::DUMMY, |i| head_span(program, i));
                diags.push(Diagnostic::new(
                    LintCode::ShadowedPredicate,
                    format!(
                        "intensional predicate `{name}` shadows the extensional predicate \
                         of the same name"
                    ),
                    span,
                    None,
                ));
            }
        }
    }

    // --- MD015 / MD016: duplicate and subsumed rules ---------------------
    duplicate_and_subsumed(program, &mut diags);

    // --- MD030: quasi-guard analysis -------------------------------------
    if let Some(catalog) = &options.fd_catalog {
        if !diags.iter().any(|d| d.severity == Severity::Error) {
            if let Err(QgError::NotQuasiGuarded { rule }) = check_quasi_guarded(program, catalog) {
                diags.push(Diagnostic::new(
                    LintCode::NoQuasiGuard,
                    "rule has no quasi-guard under the declared functional dependencies \
                     (the Theorem 4.4 pipeline rejects it)"
                        .into(),
                    rule_span(program, rule),
                    Some(rule),
                ));
            }
        }
    }

    // --- semantic tier: MD017 / MD023 / MD040-series ---------------------
    // Opt-in, and skipped when errors are present: the containment tests
    // evaluate canonical databases through the engine, which assumes an
    // evaluable program.
    let mut semantic = None;
    if options.semantic && !diags.iter().any(|d| d.severity == Severity::Error) {
        let syntactic: Vec<usize> = diags
            .iter()
            .filter(|d| matches!(d.code, LintCode::DuplicateRule | LintCode::SubsumedRule))
            .filter_map(|d| d.rule)
            .collect();
        // One shared budget meter across every probe of the tier: either
        // the caller's, or the default fuel budget so linting terminates
        // even when a canonical database explodes.
        let budget = options
            .limits
            .clone()
            .unwrap_or_else(|| EvalLimits::new().fuel(DEFAULT_SEMANTIC_FUEL));
        let (redundant, min_tripped) =
            crate::transform::redundant_rules_with_limits(program, Some(&budget));
        for (i, &r) in redundant.iter().enumerate() {
            // Rules already flagged by the syntactic MD015/MD016 passes
            // are not re-reported — MD017 is the semantic upgrade.
            if r && !syntactic.contains(&i) {
                diags.push(Diagnostic::new(
                    LintCode::SemanticallySubsumedRule,
                    "the rest of the program uniformly contains this rule — removing \
                     it never loses a derivable fact (EvalOptions::minimize drops it)"
                        .into(),
                    rule_span(program, i),
                    Some(i),
                ));
            }
        }
        let (bounded_sccs, scc_tripped) =
            crate::transform::bounded_sccs_with_limits(program, Some(&budget));
        for scc in &bounded_sccs {
            let anchor = scc.rules.first().copied();
            diags.push(Diagnostic::new(
                LintCode::ProvablyBoundedScc,
                format!(
                    "recursive component {{{}}} is proven bounded at stage {}: {} \
                     nonrecursive rule(s) replace it \
                     (EvalOptions::eliminate_bounded_recursion)",
                    scc.preds.join(", "),
                    scc.stage,
                    scc.replacement.len()
                ),
                anchor.map_or(Span::DUMMY, |r| rule_span(program, r)),
                anchor,
            ));
        }
        let magic = (!output_ids.is_empty()).then(|| {
            let outcome = crate::transform::magic_program(program, &output_ids);
            let applicable = outcome.program.is_some();
            if applicable {
                diags.push(Diagnostic::new(
                    LintCode::MagicApplicable,
                    format!(
                        "magic-set demand transformation applies to the declared \
                         outputs: {} adorned predicate version(s), {} demand rule(s) \
                         (EvalOptions::magic_sets)",
                        outcome.adorned, outcome.magic_rules
                    ),
                    Span::DUMMY,
                    None,
                ));
                if !outcome.full_preds.is_empty() {
                    diags.push(Diagnostic::new(
                        LintCode::MagicFullMaterialization,
                        format!(
                            "negation forces full materialization of: {}",
                            outcome.full_preds.join(", ")
                        ),
                        Span::DUMMY,
                        None,
                    ));
                }
            } else {
                diags.push(Diagnostic::new(
                    LintCode::MagicFullMaterialization,
                    "the declared outputs admit no bound adornment — the demand \
                     transformation would not restrict evaluation"
                        .into(),
                    Span::DUMMY,
                    None,
                ));
            }
            MagicSummary {
                applicable,
                adorned: outcome.adorned,
                magic_rules: outcome.magic_rules,
                full_preds: outcome.full_preds,
            }
        });
        semantic = Some(SemanticReport {
            redundant_rules: redundant,
            bounded_sccs,
            magic,
            budget_tripped: min_tripped || scc_tripped,
        });
    }

    // Source order, unknown spans last; ties broken by code then rule.
    diags.sort_by_key(|d| {
        (
            if d.span.is_known() {
                d.span.start
            } else {
                u32::MAX
            },
            d.code,
            d.rule,
        )
    });

    ProgramReport {
        diagnostics: diags,
        monadic,
        recursion,
        bounded,
        strata,
        relevant_rules: relevant,
        possibly_nonempty: nonempty,
        semantic,
    }
}

/// The span of variable `v`'s single occurrence in `rule`: the head span
/// if it occurs there, else the span of the body literal containing it.
fn singleton_span(program: &Program, rule: &Rule, rule_idx: usize, v: usize) -> Span {
    let contains = |terms: &[Term]| {
        terms
            .iter()
            .any(|t| matches!(t, Term::Var(var) if var.index() == v))
    };
    let Some(spans) = program.rule_spans(rule_idx) else {
        return Span::DUMMY;
    };
    if contains(&rule.head.terms) {
        return spans.head;
    }
    rule.body
        .iter()
        .position(|lit| contains(&lit.atom.terms))
        .and_then(|j| spans.literals.get(j).copied())
        .unwrap_or(spans.rule)
}

/// A canonical, order-insensitive key for a body literal (used by the
/// duplicate/subsumption passes). Variables keep their rule-local ids, so
/// two rules match only when their variable numbering agrees — a
/// conservative (syntactic) notion of equality.
type LitKey = (bool, bool, u32, Vec<(bool, u32)>);

fn lit_key(lit: &Literal) -> LitKey {
    let (is_idb, pred) = match lit.atom.pred {
        PredRef::Edb(p) => (false, p.0),
        PredRef::Idb(i) => (true, i.0),
    };
    let terms = lit
        .atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => (true, v.0),
            Term::Const(c) => (false, c.0),
        })
        .collect();
    (lit.positive, is_idb, pred, terms)
}

fn duplicate_and_subsumed(program: &Program, diags: &mut Vec<Diagnostic>) {
    let keys: Vec<(LitKey, Vec<LitKey>)> = program
        .rules
        .iter()
        .map(|rule| {
            let head = lit_key(&Literal {
                atom: rule.head.clone(),
                positive: true,
            });
            let mut body: Vec<LitKey> = rule.body.iter().map(lit_key).collect();
            body.sort_unstable();
            (head, body)
        })
        .collect();

    let mut duplicate = vec![false; keys.len()];
    for j in 0..keys.len() {
        for i in 0..j {
            if duplicate[i] {
                continue;
            }
            if keys[i].0 != keys[j].0 {
                continue;
            }
            if keys[i].1 == keys[j].1 {
                duplicate[j] = true;
                diags.push(Diagnostic::new(
                    LintCode::DuplicateRule,
                    format!("rule duplicates {}", describe_rule(program, i)),
                    rule_span(program, j),
                    Some(j),
                ));
                break;
            }
        }
    }
    // Subsumption: same head, the other rule's body is a strict
    // sub-multiset — every model satisfying the wider rule's body
    // satisfies the narrower one, so the wider rule derives nothing extra.
    for j in 0..keys.len() {
        if duplicate[j] {
            continue;
        }
        for i in 0..keys.len() {
            if i == j || duplicate[i] || keys[i].0 != keys[j].0 {
                continue;
            }
            if keys[i].1.len() < keys[j].1.len() && is_sub_multiset(&keys[i].1, &keys[j].1) {
                diags.push(Diagnostic::new(
                    LintCode::SubsumedRule,
                    format!(
                        "rule is subsumed by {} (same head, body superset)",
                        describe_rule(program, i)
                    ),
                    rule_span(program, j),
                    Some(j),
                ));
                break;
            }
        }
    }
}

/// "the rule at line N" when spans are available, "rule N" otherwise.
fn describe_rule(program: &Program, i: usize) -> String {
    let span = rule_span(program, i);
    if span.is_known() {
        format!("the rule at line {}", span.line)
    } else {
        format!("rule {i}")
    }
}

/// `a ⊆ b` as multisets; both slices are sorted.
fn is_sub_multiset(a: &[LitKey], b: &[LitKey]) -> bool {
    let mut bi = 0;
    'outer: for x in a {
        while bi < b.len() {
            match b[bi].cmp(x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// SCC ids of the intensional predicates over the (positive and negative)
/// dependency graph; iterative Tarjan, ids arbitrary but consistent.
pub(crate) fn idb_sccs(program: &Program) -> Vec<usize> {
    let n = program.idb_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for rule in &program.rules {
        if let PredRef::Idb(h) = rule.head.pred {
            for lit in &rule.body {
                if let PredRef::Idb(b) = lit.atom.pred {
                    adj[b.index()].push(h.index());
                }
            }
        }
    }
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut scc_count = 0usize;
    let mut next = 0u32;
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        index[start] = next;
        low[start] = next;
        next += 1;
        stack.push(start);
        on_stack[start] = true;
        frames.push((start, 0));
        while let Some(&mut (v, ref mut slot)) = frames.last_mut() {
            if let Some(&w) = adj[v].get(*slot) {
                *slot += 1;
                if index[w] == UNVISITED {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("root on stack");
                        on_stack[w] = false;
                        scc_of[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    scc_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_program_lenient};
    use mdtw_structure::{Domain, Signature, Structure};
    use std::sync::Arc;

    fn tiny_structure() -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1)]));
        let mut dom = Domain::new();
        let a = dom.insert("a");
        let b = dom.insert("b");
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        let node = s.signature().lookup("node").unwrap();
        s.insert(e, &[a, b]);
        s.insert(node, &[a]);
        s.insert(node, &[b]);
        s
    }

    fn codes(report: &ProgramReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn semantic_tier_is_opt_in_and_reports_all_three_passes() {
        let s = tiny_structure();
        // Rule 1 is semantically (not syntactically) subsumed by rule 0;
        // {q} is a bounded SCC; `answer` admits a magic rewrite.
        let src = "q(X, Y) :- e(X, Y).\n\
                   q(X, Y) :- q(Y, X).\n\
                   answer(Y) :- node(X), q(X, Y).";
        let p = parse_program(src, &s).unwrap();
        let plain = analyze(&p, &AnalysisOptions::new().outputs(["answer"]));
        assert!(plain.semantic.is_none(), "semantic tier is opt-in");
        let report = analyze(
            &p,
            &AnalysisOptions::new().outputs(["answer"]).semantic(true),
        );
        let semantic = report.semantic.as_ref().expect("semantic tier ran");
        assert_eq!(semantic.redundant_rules, vec![false, false, false]);
        assert_eq!(semantic.bounded_sccs.len(), 1);
        assert_eq!(semantic.bounded_sccs[0].preds, vec!["q".to_owned()]);
        let magic = semantic.magic.as_ref().expect("outputs declared");
        assert!(magic.applicable);
        assert!(magic.magic_rules >= 1);
        assert!(magic.full_preds.is_empty());
        assert_eq!(report.with_code(LintCode::ProvablyBoundedScc).count(), 1);
        assert_eq!(report.with_code(LintCode::MagicApplicable).count(), 1);
    }

    #[test]
    fn semantic_containment_upgrades_md016_without_double_reporting() {
        let s = tiny_structure();
        // Rule 1 is a homomorphic instance of rule 0 (map Y to X) but not
        // a syntactic superset, so MD016 stays silent and MD017 fires;
        // rule 2 *is* a syntactic superset, so MD016 fires and MD017
        // stays silent on it.
        let src = "p(X) :- e(X, Y).\n\
                   p(X) :- e(X, X).\n\
                   p(X) :- e(X, Y), node(X).";
        let p = parse_program(src, &s).unwrap();
        let report = analyze(&p, &AnalysisOptions::new().semantic(true));
        let md017: Vec<Option<usize>> = report
            .with_code(LintCode::SemanticallySubsumedRule)
            .map(|d| d.rule)
            .collect();
        assert_eq!(md017, vec![Some(1)]);
        let md016: Vec<Option<usize>> = report
            .with_code(LintCode::SubsumedRule)
            .map(|d| d.rule)
            .collect();
        assert_eq!(md016, vec![Some(2)]);
        let semantic = report.semantic.as_ref().unwrap();
        assert_eq!(semantic.redundant_rules, vec![false, true, true]);
    }

    #[test]
    fn semantic_tier_skipped_on_errors_and_reports_inert_magic() {
        let s = tiny_structure();
        // Unsafe rule: error-level diagnostics suppress the semantic tier
        // even when requested.
        let broken = parse_program_lenient("p(X) :- !node(X).", &s).unwrap();
        let report = analyze(&broken, &AnalysisOptions::new().semantic(true));
        assert!(report.has_errors());
        assert!(report.semantic.is_none());

        // A query shape with no bound adornment anywhere: MD041 explains
        // why magic sets would not help.
        let p = parse_program("p(X) :- node(X).", &s).unwrap();
        let report = analyze(&p, &AnalysisOptions::new().outputs(["p"]).semantic(true));
        let magic = report.semantic.as_ref().unwrap().magic.as_ref().unwrap();
        assert!(!magic.applicable);
        assert_eq!(
            report.with_code(LintCode::MagicFullMaterialization).count(),
            1
        );
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let s = tiny_structure();
        let p = parse_program("reach(X) :- node(X).\nreach(Y) :- reach(X), e(X, Y).", &s).unwrap();
        let report = analyze(&p, &AnalysisOptions::new().outputs(["reach"]));
        assert_eq!(codes(&report), Vec::<&str>::new());
        assert!(report.monadic);
        assert_eq!(report.recursion, RecursionClass::Linear);
        assert!(!report.bounded);
        assert_eq!(report.strata, Some(1));
        assert_eq!(report.relevant_rules, vec![true, true]);
        assert_eq!(report.possibly_nonempty, vec![true]);
    }

    #[test]
    fn relevance_flags_unreachable_predicate_and_dead_rule() {
        let s = tiny_structure();
        let p = parse_program("out(X) :- node(X).\naux(X) :- e(X, Y), node(Y).", &s).unwrap();
        let report = analyze(&p, &AnalysisOptions::new().outputs(["out"]));
        // aux gets MD010, its rule MD011, plus Y is a singleton… no: Y
        // occurs in e(X, Y) and node(Y) — twice. X occurs twice too.
        assert_eq!(codes(&report), vec!["MD010", "MD011"]);
        assert_eq!(report.relevant_rules, vec![true, false]);
        // Without outputs the pass is skipped.
        let no_outputs = analyze(&p, &AnalysisOptions::new());
        assert_eq!(codes(&no_outputs), Vec::<&str>::new());
        assert_eq!(no_outputs.relevant_rules, vec![true, true]);
    }

    #[test]
    fn always_empty_detected_through_dependency_chain() {
        let s = tiny_structure();
        // ghost has no rules; phantom depends on ghost; out is fine.
        let p = parse_program(
            "out(X) :- node(X).\nphantom(X) :- node(X), ghost(X).\nout(X) :- phantom(X).",
            &s,
        )
        .unwrap();
        let report = analyze(&p, &AnalysisOptions::new().outputs(["out"]));
        let md012: Vec<_> = report
            .with_code(LintCode::AlwaysEmptyPredicate)
            .map(|d| d.message.clone())
            .collect();
        assert_eq!(md012.len(), 2, "{md012:?}");
        assert!(md012.iter().any(|m| m.contains("`ghost`")));
        assert!(md012.iter().any(|m| m.contains("`phantom`")));
        assert_eq!(report.possibly_nonempty, vec![true, false, false]);
    }

    #[test]
    fn singleton_variable_flagged_with_underscore_escape() {
        let s = tiny_structure();
        let src = "q(X) :- e(X, Y).\nr(X) :- e(X, _Z).";
        let p = parse_program(src, &s).unwrap();
        let report = analyze(&p, &AnalysisOptions::new());
        assert_eq!(codes(&report), vec!["MD013"]);
        let d = &report.diagnostics[0];
        assert!(d.message.contains("`Y`"));
        assert_eq!(d.rule, Some(0));
        assert_eq!(&src[d.span.start as usize..d.span.end as usize], "e(X, Y)");
    }

    #[test]
    fn duplicate_and_subsumed_rules_flagged() {
        let s = tiny_structure();
        let p = parse_program(
            "q(X) :- e(X, Y), node(Y).\n\
             q(X) :- node(Y), e(X, Y).\n\
             q(X) :- e(X, Y), node(Y), node(X).",
            &s,
        )
        .unwrap();
        let report = analyze(&p, &AnalysisOptions::new());
        assert_eq!(codes(&report), vec!["MD015", "MD016"]);
        assert_eq!(report.diagnostics[0].rule, Some(1));
        assert!(report.diagnostics[0].message.contains("line 1"));
        assert_eq!(report.diagnostics[1].rule, Some(2));
    }

    #[test]
    fn lenient_errors_resurface_as_diagnostics() {
        let s = tiny_structure();
        let p = parse_program_lenient(
            "q(X, Y) :- e(X, X).\ne(X, Y) :- e(Y, X).\n\
             p(X) :- node(X), !w(X).\nw(X) :- node(X), !p(X).",
            &s,
        )
        .unwrap();
        let report = analyze(
            &p,
            &AnalysisOptions::new().edb_signature(Arc::clone(s.signature())),
        );
        let got = codes(&report);
        assert!(got.contains(&"MD001"), "{got:?}");
        assert!(got.contains(&"MD002"), "{got:?}");
        assert!(report.has_errors());
        assert_eq!(report.strata, None);
        // The negative cycle is only reported once MD001/MD002 are fixed.
        let p2 =
            parse_program_lenient("p(X) :- node(X), !w(X).\nw(X) :- node(X), !p(X).", &s).unwrap();
        let report2 = analyze(&p2, &AnalysisOptions::new());
        assert_eq!(codes(&report2), vec!["MD003"]);
        assert_eq!(report2.strata, None);
    }

    #[test]
    fn monadicity_and_nonlinear_recursion_notes() {
        let s = tiny_structure();
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).",
            &s,
        )
        .unwrap();
        let report = analyze(&p, &AnalysisOptions::new());
        assert!(!report.monadic);
        assert_eq!(report.recursion, RecursionClass::NonLinear);
        assert!(!report.bounded);
        let got = codes(&report);
        assert!(got.contains(&"MD020"), "{got:?}");
        assert!(got.contains(&"MD021"), "{got:?}");
    }

    #[test]
    fn trivially_bounded_recursion_noted() {
        let s = tiny_structure();
        let p = parse_program("q(X) :- node(X).\nq(X) :- q(X), node(X).", &s).unwrap();
        let report = analyze(&p, &AnalysisOptions::new());
        assert_eq!(report.recursion, RecursionClass::Linear);
        assert!(report.bounded);
        // The bounded rule is also subsumed by the base case — both
        // findings anchor to rule 1.
        assert_eq!(codes(&report), vec!["MD016", "MD022"]);
        assert!(report.diagnostics.iter().all(|d| d.rule == Some(1)));
    }

    #[test]
    fn shadowed_predicate_needs_signature() {
        // Hand-built: IDB named like the EDB relation `node`.
        let mut p = Program::default();
        let node = p.intern_idb("node", 1).unwrap();
        p.rules.push(Rule {
            head: crate::ast::Atom {
                pred: PredRef::Idb(node),
                terms: vec![Term::Var(crate::ast::Var(0))],
            },
            body: vec![Literal {
                atom: crate::ast::Atom {
                    pred: PredRef::Edb(mdtw_structure::PredId(0)),
                    terms: vec![Term::Var(crate::ast::Var(0))],
                },
                positive: true,
            }],
            var_count: 1,
            var_names: vec!["X".into()],
        });
        let sig = Arc::new(Signature::from_pairs([("node", 1)]));
        let with_sig = analyze(&p, &AnalysisOptions::new().edb_signature(sig));
        assert_eq!(codes(&with_sig), vec!["MD014"]);
        assert!(!with_sig.diagnostics[0].span.is_known());
        let without = analyze(&p, &AnalysisOptions::new());
        assert_eq!(codes(&without), Vec::<&str>::new());
    }

    #[test]
    fn quasi_guard_pass_flags_unguarded_rule() {
        let s = tiny_structure();
        let p = parse_program("pair(X, Y) :- node(X), node(Y).", &s).unwrap();
        let report = analyze(
            &p,
            &AnalysisOptions::new().fd_catalog(crate::ground::FdCatalog::new()),
        );
        let got = codes(&report);
        assert!(got.contains(&"MD030"), "{got:?}");
        // Without a catalog the pass is skipped.
        let skipped = analyze(&p, &AnalysisOptions::new());
        assert!(!codes(&skipped).contains(&"MD030"));
    }

    #[test]
    fn diagnostics_sorted_by_source_position() {
        let s = tiny_structure();
        let src = "dead(X) :- e(X, Y), node(Y).\nout(X) :- node(X).";
        let p = parse_program(src, &s).unwrap();
        let report = analyze(&p, &AnalysisOptions::new().outputs(["out"]));
        let starts: Vec<u32> = report
            .diagnostics
            .iter()
            .filter(|d| d.span.is_known())
            .map(|d| d.span.start)
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn render_draws_rustc_style_carets() {
        let s = tiny_structure();
        let src = "q(X) :- e(X, Y).";
        let p = parse_program(src, &s).unwrap();
        let report = analyze(&p, &AnalysisOptions::new());
        assert_eq!(codes(&report), vec!["MD013"]);
        let rendered = report.diagnostics[0].render(Some(src), "prog.dl");
        assert!(rendered.contains("warning[MD013]"), "{rendered}");
        assert!(rendered.contains("--> prog.dl:1:9"), "{rendered}");
        assert!(rendered.contains("1 | q(X) :- e(X, Y)."), "{rendered}");
        assert!(rendered.contains("|         ^^^^^^^"), "{rendered}");
    }

    #[test]
    fn code_table_is_stable_and_round_trips() {
        for code in LintCode::ALL {
            assert_eq!(LintCode::from_code(code.code()), Some(code));
            assert!(!code.description().is_empty());
        }
        assert_eq!(LintCode::from_code("MD999"), None);
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
        for sev in [Severity::Note, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::from_str_opt(sev.as_str()), Some(sev));
        }
    }
}
