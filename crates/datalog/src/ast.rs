//! Abstract syntax of datalog programs (paper §2.4).
//!
//! Programs are function-free Horn clauses. Predicates are either
//! *extensional* (interpreted by the input structure's relations) or
//! *intensional* (defined by rule heads). Negation may appear in front of
//! any body atom; the core fixpoint engines require the *semipositive*
//! shape — negation only on extensional atoms, exactly what the
//! MSO-to-datalog construction of Theorem 4.5 produces (`¬Rᵢ(…)` body
//! atoms) — while programs negating intensional atoms evaluate through
//! the [`stratify`](mod@crate::stratify) pipeline, which reduces them to a
//! bottom-up sequence of semipositive strata.

use crate::span::RuleSpans;
use mdtw_structure::fx::FxHashMap;
use mdtw_structure::{ElemId, PredId, Structure};
use std::fmt;

/// A rule-local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Index of this variable in the rule's variable table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An intensional predicate id (index into [`Program::idb_names`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdbId(pub u32);

impl IdbId {
    /// Index into the program's IDB tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A predicate reference: extensional (structure relation) or intensional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredRef {
    /// Extensional: interpreted by the input structure.
    Edb(PredId),
    /// Intensional: computed by the program.
    Idb(IdbId),
}

/// A term: a variable or a domain constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A rule-local variable.
    Var(Var),
    /// A constant resolved against the structure's domain.
    Const(ElemId),
}

/// An atom `p(t₁, …, t_n)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The predicate.
    pub pred: PredRef,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Iterates over the variables of the atom (with repetitions).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
    }
}

/// A body literal: an atom or its negation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    /// The underlying atom.
    pub atom: Atom,
    /// `false` for a negated literal.
    pub positive: bool,
}

/// A rule `head ← body`. A rule with an empty body and a ground head is a
/// fact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// The head atom; its predicate must be intensional.
    pub head: Atom,
    /// Body literals.
    pub body: Vec<Literal>,
    /// Number of distinct variables in the rule (variables are numbered
    /// `0..var_count`).
    pub var_count: u32,
    /// Variable display names (index = variable id), for diagnostics.
    pub var_names: Vec<String>,
}

impl Rule {
    /// True if the rule is *safe*: every head variable and every variable
    /// of a negative literal occurs in some positive body literal.
    pub fn is_safe(&self) -> bool {
        let mut positive = vec![false; self.var_count as usize];
        for lit in &self.body {
            if lit.positive {
                for v in lit.atom.vars() {
                    positive[v.index()] = true;
                }
            }
        }
        let head_ok = self.head.vars().all(|v| positive[v.index()]);
        let neg_ok = self
            .body
            .iter()
            .filter(|l| !l.positive)
            .all(|l| l.atom.vars().all(|v| positive[v.index()]));
        head_ok && neg_ok
    }
}

/// A resolved datalog program: rules plus the IDB name table.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All rules, in source order.
    pub rules: Vec<Rule>,
    /// Names of intensional predicates (index = [`IdbId`]).
    pub idb_names: Vec<String>,
    /// Arities of intensional predicates.
    pub idb_arities: Vec<usize>,
    /// Source locations, parallel to [`Program::rules`]. Filled by the
    /// parser; empty for hand-built programs (every lookup then falls back
    /// to [`Span::DUMMY`](crate::span::Span::DUMMY)-shaped records).
    pub spans: Vec<RuleSpans>,
    pub(crate) idb_by_name: FxHashMap<String, IdbId>,
}

impl Program {
    /// Looks up an intensional predicate by name.
    pub fn idb(&self, name: &str) -> Option<IdbId> {
        self.idb_by_name.get(name).copied()
    }

    /// The source locations of rule `index`, if the program was parsed
    /// from text (hand-built programs have no spans).
    pub fn rule_spans(&self, index: usize) -> Option<&RuleSpans> {
        self.spans.get(index)
    }

    /// Registers (or finds) an intensional predicate.
    pub fn intern_idb(&mut self, name: &str, arity: usize) -> Result<IdbId, String> {
        if let Some(&id) = self.idb_by_name.get(name) {
            if self.idb_arities[id.index()] != arity {
                return Err(format!(
                    "predicate `{name}` used with arities {} and {arity}",
                    self.idb_arities[id.index()]
                ));
            }
            return Ok(id);
        }
        let id = IdbId(self.idb_names.len() as u32);
        self.idb_by_name.insert(name.to_owned(), id);
        self.idb_names.push(name.to_owned());
        self.idb_arities.push(arity);
        Ok(id)
    }

    /// Number of intensional predicates.
    pub fn idb_count(&self) -> usize {
        self.idb_names.len()
    }

    /// Checks the program is *semipositive*: negation only on EDB atoms
    /// (plus the per-rule head and safety checks).
    ///
    /// This is the invariant the semipositive engines require of their
    /// whole input and the *stratum-local* invariant of the stratified
    /// pipeline: every sub-program the multi-stratum evaluator (see
    /// [`stratify`](mod@crate::stratify)) hands to the semi-naive
    /// engine — a stratum with lower strata rewritten to materialized
    /// extensional predicates — satisfies it.
    pub fn check_semipositive(&self) -> Result<(), String> {
        for (i, rule) in self.rules.iter().enumerate() {
            for lit in &rule.body {
                if !lit.positive {
                    if let PredRef::Idb(id) = lit.atom.pred {
                        return Err(format!(
                            "rule {i}: negated intensional atom `{}`",
                            self.idb_names[id.index()]
                        ));
                    }
                }
            }
            if let PredRef::Edb(_) = rule.head.pred {
                return Err(format!("rule {i}: extensional predicate in head"));
            }
            if !rule.is_safe() {
                return Err(format!("rule {i}: unsafe rule"));
            }
        }
        Ok(())
    }

    /// A measure of program size `|P|`: total number of atoms.
    pub fn size(&self) -> usize {
        self.rules.iter().map(|r| 1 + r.body.len()).sum()
    }

    /// Renders a rule for diagnostics, using `structure` for EDB names.
    pub fn render_rule(&self, rule: &Rule, structure: &Structure) -> String {
        let term = |t: &Term| match t {
            Term::Var(v) => rule
                .var_names
                .get(v.index())
                .cloned()
                .unwrap_or_else(|| format!("V{}", v.0)),
            Term::Const(c) => structure.domain().name(*c).to_owned(),
        };
        let atom = |a: &Atom| {
            let name = match a.pred {
                PredRef::Edb(p) => structure.signature().name(p).to_owned(),
                PredRef::Idb(i) => self.idb_names[i.index()].clone(),
            };
            if a.terms.is_empty() {
                name
            } else {
                let args: Vec<String> = a.terms.iter().map(term).collect();
                format!("{name}({})", args.join(","))
            }
        };
        let body: Vec<String> = rule
            .body
            .iter()
            .map(|l| {
                if l.positive {
                    atom(&l.atom)
                } else {
                    format!("!{}", atom(&l.atom))
                }
            })
            .collect();
        if body.is_empty() {
            format!("{}.", atom(&rule.head))
        } else {
            format!("{} :- {}.", atom(&rule.head), body.join(", "))
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} rules, {} intensional predicates",
            self.rules.len(),
            self.idb_names.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn safety_check() {
        let mut p = Program::default();
        let tc = p.intern_idb("tc", 2).unwrap();
        // tc(X, Y) :- tc(X, Z).   -- unsafe: Y never positive.
        let rule = Rule {
            head: Atom {
                pred: PredRef::Idb(tc),
                terms: vec![v(0), v(1)],
            },
            body: vec![Literal {
                atom: Atom {
                    pred: PredRef::Idb(tc),
                    terms: vec![v(0), v(2)],
                },
                positive: true,
            }],
            var_count: 3,
            var_names: vec!["X".into(), "Y".into(), "Z".into()],
        };
        assert!(!rule.is_safe());
    }

    #[test]
    fn intern_idb_checks_arity() {
        let mut p = Program::default();
        p.intern_idb("q", 1).unwrap();
        assert!(p.intern_idb("q", 2).is_err());
        assert!(p.intern_idb("q", 1).is_ok());
        assert_eq!(p.idb_count(), 1);
    }

    #[test]
    fn semipositive_rejects_negated_idb() {
        let mut p = Program::default();
        let q = p.intern_idb("q", 0).unwrap();
        let r = p.intern_idb("r", 0).unwrap();
        p.rules.push(Rule {
            head: Atom {
                pred: PredRef::Idb(q),
                terms: vec![],
            },
            body: vec![Literal {
                atom: Atom {
                    pred: PredRef::Idb(r),
                    terms: vec![],
                },
                positive: false,
            }],
            var_count: 0,
            var_names: vec![],
        });
        assert!(p.check_semipositive().is_err());
    }
}
