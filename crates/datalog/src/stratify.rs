//! Stratified negation: predicate dependency analysis and the
//! multi-stratum evaluation pipeline.
//!
//! The core engines of [`eval`](crate::eval) are *semipositive* — negation
//! may only be applied to extensional atoms. This module lifts that
//! restriction to full **stratified datalog**:
//!
//! 1. [`stratify`] builds the predicate dependency graph of a program
//!    (one node per intensional predicate, a positive or negative edge
//!    `b → h` for every body occurrence of `b` in a rule for `h`),
//!    condenses it with Tarjan's strongly-connected-components algorithm,
//!    and assigns every predicate the maximum number of negative edges on
//!    any dependency path leading to it. A negative edge *inside* an SCC
//!    means the program has no stratified semantics; the resulting
//!    [`StratificationError`] names the offending predicate cycle.
//!    Safety (range restriction) and head checks run here too, so a
//!    [`Stratification`] certifies the program is evaluable.
//! 2. [`eval_stratified`] evaluates the strata bottom-up. Each stratum is
//!    turned into a semipositive sub-program by rewriting references to
//!    lower-stratum predicates into *extensional* predicates of an
//!    extended structure ([`Structure::extended`]) holding the lower
//!    strata's materialized relations. [`Program::check_semipositive`] is
//!    exactly the stratum-local invariant this rewrite establishes.
//!
//! Because lower strata are materialized into the arena-backed
//! [`Relation`](mdtw_structure::Relation) layer, higher strata treat them
//! like any other EDB relation: positive occurrences are probed through
//! the cached [`PosIndex`](mdtw_structure::PosIndex) access paths (and
//! now carry real cardinality estimates for the planner), negated
//! occurrences go through the existing constant-time negative-literal
//! membership checks, and compiled plans flow through the
//! [`PlanCache`] — whose cardinality-shape key
//! covers the materialized extensions, since they are ordinary signature
//! relations of the structure each stratum is planned against. The inner
//! join loop of [`eval`](crate::eval) is reused without modification.

use crate::ast::{IdbId, PredRef, Program};
use crate::cache::{global_plan_cache, plans_for, PlanCache};
use crate::eval::{run_seminaive_scratch, EvalStats, IdbStore, SeminaiveScratch};
use crate::limits::{EvalLimits, Governor, LimitKind};
use crate::profile::Profiler;
use mdtw_structure::{PredId, Signature, Structure};
use std::fmt;
use std::sync::Arc;

/// Why a program has no stratified semantics (or is not evaluable at
/// all). Produced by [`stratify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StratificationError {
    /// A negative edge lands inside a strongly connected component of the
    /// predicate dependency graph: some rule for `head` negates `negated`,
    /// but `negated` (transitively) depends on `head` again, so no stratum
    /// assignment can place `negated` strictly below `head`.
    NegativeCycle {
        /// The rule (index into [`Program::rules`]) carrying the negation.
        rule: usize,
        /// The predicate being negated.
        negated: String,
        /// The dependency cycle, as predicate names: starts at the head of
        /// the offending rule, follows dependency edges to the negated
        /// predicate, which closes the cycle back to the head.
        cycle: Vec<String>,
    },
    /// A rule head is an extensional predicate.
    EdbHead {
        /// The offending rule index.
        rule: usize,
    },
    /// A rule is not range-restricted: a head variable or a variable of a
    /// negative literal occurs in no positive body literal.
    UnsafeRule {
        /// The offending rule index.
        rule: usize,
    },
}

impl fmt::Display for StratificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StratificationError::NegativeCycle {
                rule,
                negated,
                cycle,
            } => {
                write!(
                    f,
                    "rule {rule}: negation of `{negated}` inside a recursive component \
                     (cycle: {} \u{ac}\u{2192} {})",
                    cycle.join(" \u{2192} "),
                    cycle.first().map_or("?", String::as_str),
                )
            }
            StratificationError::EdbHead { rule } => {
                write!(f, "rule {rule}: extensional predicate in head")
            }
            StratificationError::UnsafeRule { rule } => {
                write!(
                    f,
                    "rule {rule}: unsafe rule (every head variable and negated-literal \
                     variable must occur in a positive body literal)"
                )
            }
        }
    }
}

impl std::error::Error for StratificationError {}

/// A valid stratum assignment for a program: a certificate that evaluating
/// the strata bottom-up computes the stratified (perfect) model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratification {
    /// Stratum of each intensional predicate (index = [`IdbId`]).
    pred_stratum: Vec<usize>,
    /// Rule indices per stratum, in source order within a stratum.
    strata: Vec<Vec<usize>>,
}

impl Stratification {
    /// Number of strata (1 for any semipositive program; 0 only for a
    /// program without intensional predicates).
    pub fn stratum_count(&self) -> usize {
        self.strata.len()
    }

    /// The stratum of an intensional predicate.
    pub fn stratum_of(&self, pred: IdbId) -> usize {
        self.pred_stratum[pred.index()]
    }

    /// Rule indices (into [`Program::rules`]) per stratum, bottom-up.
    pub fn strata(&self) -> &[Vec<usize>] {
        &self.strata
    }
}

/// One dependency edge `from → to`: predicate `from` occurs in the body of
/// rule `rule`, whose head is `to`.
struct DepEdge {
    from: IdbId,
    to: IdbId,
    negative: bool,
    rule: usize,
}

/// Computes a stratification of `program`, running the per-rule safety and
/// head checks on the way. See the [module docs](self) for the algorithm.
pub fn stratify(program: &Program) -> Result<Stratification, StratificationError> {
    let n = program.idb_count();

    // Per-rule checks first: an unstratifiable dependency graph over
    // ill-formed rules would report the wrong error.
    for (rule_idx, rule) in program.rules.iter().enumerate() {
        if matches!(rule.head.pred, PredRef::Edb(_)) {
            return Err(StratificationError::EdbHead { rule: rule_idx });
        }
        if !rule.is_safe() {
            return Err(StratificationError::UnsafeRule { rule: rule_idx });
        }
    }

    // Dependency graph: edge body-predicate → head-predicate.
    let mut edges: Vec<DepEdge> = Vec::new();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (rule_idx, rule) in program.rules.iter().enumerate() {
        let PredRef::Idb(head) = rule.head.pred else {
            unreachable!("EDB heads rejected above");
        };
        for lit in &rule.body {
            if let PredRef::Idb(body) = lit.atom.pred {
                adj[body.index()].push(edges.len());
                edges.push(DepEdge {
                    from: body,
                    to: head,
                    negative: !lit.positive,
                    rule: rule_idx,
                });
            }
        }
    }

    let (scc_of, scc_count) = tarjan_sccs(n, &edges, &adj);

    // A negative edge inside an SCC defeats stratification.
    for edge in &edges {
        if edge.negative && scc_of[edge.from.index()] == scc_of[edge.to.index()] {
            return Err(negative_cycle_error(program, &edges, &adj, &scc_of, edge));
        }
    }

    // Stratum of an SCC: the maximum number of negative edges on any
    // dependency path into it. Tarjan numbers SCCs in reverse topological
    // order of the condensation (an edge's target component always has the
    // smaller id), so walking ids downward visits sources before targets.
    let mut scc_out: Vec<Vec<(usize, bool)>> = vec![Vec::new(); scc_count];
    for edge in &edges {
        let (from_scc, to_scc) = (scc_of[edge.from.index()], scc_of[edge.to.index()]);
        if from_scc != to_scc {
            scc_out[from_scc].push((to_scc, edge.negative));
        }
    }
    let mut scc_stratum = vec![0usize; scc_count];
    for scc in (0..scc_count).rev() {
        for &(to_scc, negative) in &scc_out[scc] {
            let lifted = scc_stratum[scc] + usize::from(negative);
            scc_stratum[to_scc] = scc_stratum[to_scc].max(lifted);
        }
    }

    let pred_stratum: Vec<usize> = (0..n).map(|p| scc_stratum[scc_of[p]]).collect();
    let stratum_count = pred_stratum.iter().map(|&s| s + 1).max().unwrap_or(0);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); stratum_count];
    for (rule_idx, rule) in program.rules.iter().enumerate() {
        let PredRef::Idb(head) = rule.head.pred else {
            unreachable!("EDB heads rejected above");
        };
        strata[pred_stratum[head.index()]].push(rule_idx);
    }

    Ok(Stratification {
        pred_stratum,
        strata,
    })
}

/// Number of *recursive* SCCs of the predicate dependency graph: SCCs
/// carrying at least one internal edge (a multi-predicate component, or a
/// self-loop). A program is nonrecursive iff this is 0 — the property the
/// bounded-recursion rewrite of [`transform`](crate::transform)
/// establishes for proven-bounded components.
pub fn recursive_idb_scc_count(program: &Program) -> usize {
    let n = program.idb_count();
    let mut edges: Vec<DepEdge> = Vec::new();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (rule_idx, rule) in program.rules.iter().enumerate() {
        let PredRef::Idb(head) = rule.head.pred else {
            continue;
        };
        for lit in &rule.body {
            if let PredRef::Idb(body) = lit.atom.pred {
                adj[body.index()].push(edges.len());
                edges.push(DepEdge {
                    from: body,
                    to: head,
                    negative: !lit.positive,
                    rule: rule_idx,
                });
            }
        }
    }
    let (scc_of, scc_count) = tarjan_sccs(n, &edges, &adj);
    let mut recursive = vec![false; scc_count];
    for edge in &edges {
        if scc_of[edge.from.index()] == scc_of[edge.to.index()] {
            recursive[scc_of[edge.from.index()]] = true;
        }
    }
    recursive.iter().filter(|&&r| r).count()
}

/// Builds the [`StratificationError::NegativeCycle`] for a negative edge
/// `bad` inside an SCC: recovers an explicit predicate cycle by BFS from
/// the edge's head back to its (negated) body predicate, inside the SCC.
fn negative_cycle_error(
    program: &Program,
    edges: &[DepEdge],
    adj: &[Vec<usize>],
    scc_of: &[usize],
    bad: &DepEdge,
) -> StratificationError {
    let scc = scc_of[bad.from.index()];
    let name = |p: IdbId| program.idb_names[p.index()].clone();

    // BFS from the head of the bad edge to its body predicate, restricted
    // to the SCC (both endpoints are in it, so a path exists).
    let mut prev: Vec<Option<IdbId>> = vec![None; program.idb_count()];
    let mut queue = std::collections::VecDeque::from([bad.to]);
    let mut seen = vec![false; program.idb_count()];
    seen[bad.to.index()] = true;
    while let Some(v) = queue.pop_front() {
        if v == bad.from {
            break;
        }
        for &ei in &adj[v.index()] {
            let w = edges[ei].to;
            if scc_of[w.index()] == scc && !seen[w.index()] {
                seen[w.index()] = true;
                prev[w.index()] = Some(v);
                queue.push_back(w);
            }
        }
    }

    // Path head → … → body (self-negation yields the one-element cycle).
    let mut cycle = vec![name(bad.from)];
    let mut cur = bad.from;
    while cur != bad.to {
        cur = prev[cur.index()].expect("SCC members are mutually reachable");
        cycle.push(name(cur));
    }
    cycle.reverse();

    StratificationError::NegativeCycle {
        rule: bad.rule,
        negated: name(bad.from),
        cycle,
    }
}

/// Iterative Tarjan over the predicate dependency graph. Returns the SCC
/// id of every node and the SCC count; ids are assigned in completion
/// order, so for any cross-component edge the *target* component has the
/// smaller id (reverse topological numbering of the condensation).
fn tarjan_sccs(n: usize, edges: &[DepEdge], adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut scc_count = 0usize;
    let mut next_index = 0u32;
    // Explicit DFS frames `(node, next out-edge slot)` — predicate counts
    // are program-sized, so recursion depth must not be.
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;
        frames.push((start, 0));

        while let Some(&mut (v, ref mut slot)) = frames.last_mut() {
            let vi = v as usize;
            if let Some(&ei) = adj[vi].get(*slot) {
                *slot += 1;
                let w = edges[ei].to.0;
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    index[wi] = next_index;
                    low[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    let pi = parent as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
                if low[vi] == index[vi] {
                    loop {
                        let w = stack.pop().expect("root still on stack");
                        on_stack[w as usize] = false;
                        scc_of[w as usize] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    (scc_of, scc_count)
}

/// Evaluates a stratified program bottom-up over the process-wide
/// [`PlanCache`]; see [`eval_stratified_with_cache`].
#[deprecated(
    since = "0.2.0",
    note = "construct an `Evaluator` session \
            (`Evaluator::new(program)?.evaluate(&structure)`), which stratifies once \
            and auto-dispatches semipositive vs. multi-stratum"
)]
pub fn eval_stratified(
    program: &Program,
    structure: &Structure,
) -> Result<(IdbStore, EvalStats), StratificationError> {
    let strat = stratify(program)?;
    let mut scratch = SeminaiveScratch::new(program);
    let (store, stats, _) = run_stratified(
        program,
        &strat,
        structure,
        Some(global_plan_cache()),
        &mut scratch,
        &mut ExtensionMemo::default(),
        None,
        None,
    );
    Ok((store, stats))
}

/// Evaluates a stratified program bottom-up with an explicit plan cache.
///
/// Stratum 0 is semipositive as-is. For every higher stratum, references
/// to lower-stratum predicates are rewritten to extensional predicates of
/// an extended structure holding the lower strata's materialized
/// relations, the rewritten sub-program is checked semipositive (the
/// stratum-local invariant) and handed to the indexed semi-naive engine.
/// On a semipositive input (a single stratum) this is exactly
/// [`eval_seminaive_with_cache`](crate::cache::eval_seminaive_with_cache):
/// same plans, same store, same statistics.
///
/// The returned [`EvalStats`] accumulates the per-stratum counters
/// (`rounds` is the total across strata, `plan_cache_hits` counts per
/// stratum) and reports the stratum count in [`EvalStats::strata`].
#[deprecated(
    since = "0.2.0",
    note = "construct an `Evaluator` session, which owns its `PlanCache` \
            (`Evaluator::new(program)?.evaluate(&structure)`)"
)]
pub fn eval_stratified_with_cache(
    program: &Program,
    structure: &Structure,
    cache: &PlanCache,
) -> Result<(IdbStore, EvalStats), StratificationError> {
    let strat = stratify(program)?;
    let mut scratch = SeminaiveScratch::new(program);
    let (store, stats, _) = run_stratified(
        program,
        &strat,
        structure,
        Some(cache),
        &mut scratch,
        &mut ExtensionMemo::default(),
        None,
        None,
    );
    Ok((store, stats))
}

/// Memoized per-signature extension setup for the stratified pipeline:
/// which intensional predicates higher strata read, the extended
/// [`Signature`] materializing them as fresh extensional predicates
/// (names uniquified against the base signature), and the IDB →
/// extension-predicate mapping.
///
/// The setup depends only on the program + stratification (fixed for the
/// lifetime of an [`Evaluator`](crate::evaluator::Evaluator) session) and
/// the input structure's *signature* — not its relations — so a session
/// computes it on the first `evaluate()` and reuses it for every later
/// structure sharing the same signature `Arc`. A structure with a
/// different signature pointer triggers a rebuild (pointer identity is
/// the validity key: it is exact for the dominant reuse pattern and never
/// unsound, merely conservative for structurally-equal signatures).
#[derive(Debug, Default)]
pub(crate) struct ExtensionMemo {
    base_sig: Option<Arc<Signature>>,
    ext_sig: Option<Arc<Signature>>,
    ext_pred: Vec<Option<PredId>>,
    /// How many times the setup actually ran (pinned by session tests).
    pub(crate) rebuilds: usize,
}

impl ExtensionMemo {
    /// Returns the extended signature and the per-IDB extension mapping
    /// for `structure`'s signature, recomputing only when the signature
    /// changed since the previous call.
    pub(crate) fn setup(
        &mut self,
        program: &Program,
        strat: &Stratification,
        structure: &Structure,
    ) -> (Arc<Signature>, &[Option<PredId>]) {
        let base = structure.signature();
        let cached = self.base_sig.as_ref().is_some_and(|s| Arc::ptr_eq(s, base));
        if !cached {
            self.rebuilds += 1;
            // Which predicates higher strata actually read: only those are
            // materialized into the extended structure.
            let mut needed = vec![false; program.idb_count()];
            for (rule_idx, rule) in program.rules.iter().enumerate() {
                let rule_stratum = rule_stratum(strat, program, rule_idx);
                for lit in &rule.body {
                    if let PredRef::Idb(id) = lit.atom.pred {
                        if strat.stratum_of(id) < rule_stratum {
                            needed[id.index()] = true;
                        }
                    }
                }
            }
            // One fresh extensional predicate per needed intensional
            // predicate (names uniquified against the signature — IDB
            // names can collide with EDB names in hand-built programs).
            let mut ext_pairs: Vec<(String, usize)> = Vec::new();
            let mut owners: Vec<IdbId> = Vec::new();
            for (i, need) in needed.iter().enumerate() {
                if *need {
                    let mut name = program.idb_names[i].clone();
                    while base.lookup(&name).is_some() || ext_pairs.iter().any(|(n, _)| n == &name)
                    {
                        name.push('\'');
                    }
                    ext_pairs.push((name, program.idb_arities[i]));
                    owners.push(IdbId(i as u32));
                }
            }
            let ext_sig = Arc::new(base.extend_with(ext_pairs));
            let mut ext_pred: Vec<Option<PredId>> = vec![None; program.idb_count()];
            for (slot, owner) in owners.iter().enumerate() {
                ext_pred[owner.index()] = Some(PredId((base.len() + slot) as u32));
            }
            self.base_sig = Some(Arc::clone(base));
            self.ext_sig = Some(ext_sig);
            self.ext_pred = ext_pred;
        }
        (
            Arc::clone(self.ext_sig.as_ref().expect("setup ran")),
            &self.ext_pred,
        )
    }
}

/// The stratified pipeline proper, over a *precomputed* stratification
/// and session-recycled scratch buffers — the shared engine behind the
/// deprecated [`eval_stratified`]/[`eval_stratified_with_cache`] wrappers
/// and [`Evaluator`](crate::evaluator::Evaluator) sessions (which
/// stratify once at construction and reuse the certificate across
/// evaluations). `cache` is `None` when plan caching is disabled.
///
/// The third return element is the tripped [`LimitKind`], if `limits`
/// governed the run and a limit tripped. On a trip the store holds every
/// completed stratum plus the partial output of the stratum that tripped
/// (a sound subset of the fixpoint), and `stats.strata` is rewritten to
/// the *completed*-stratum count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_stratified(
    program: &Program,
    strat: &Stratification,
    structure: &Structure,
    cache: Option<&PlanCache>,
    scratch: &mut SeminaiveScratch,
    memo: &mut ExtensionMemo,
    limits: Option<&EvalLimits>,
    mut prof: Option<&mut Profiler>,
) -> (IdbStore, EvalStats, Option<LimitKind>) {
    if strat.stratum_count() <= 1 {
        // Semipositive fast path: no rewriting, no structure extension.
        crate::eval::debug_assert_semipositive(program);
        let (plans, hit) = plans_for(program, structure, cache);
        let stats = EvalStats {
            plan_cache_hits: usize::from(hit),
            strata: strat.stratum_count(),
            ..EvalStats::default()
        };
        let mut gov = Governor::new(limits);
        if let Some(p) = prof.as_deref_mut() {
            p.begin_stratum(0, program, None);
        }
        let (store, mut stats) = run_seminaive_scratch(
            program,
            structure,
            &plans,
            stats,
            scratch,
            &mut gov,
            prof.as_deref_mut(),
        );
        if let Some(p) = prof {
            if gov.tripped().is_some() {
                p.mark_trip(0);
            }
            p.end_stratum(stats.rounds, stats.facts);
        }
        if gov.tripped().is_some() {
            stats.strata = 0;
        }
        return (store, stats, gov.tripped());
    }

    // Extension setup (which predicates to materialize, extended
    // signature, IDB → extension mapping) is memoized per signature in
    // the session; only the relation snapshot is rebuilt per evaluate.
    let (ext_sig, ext_pred) = memo.setup(program, strat, structure);
    let mut ext_structure = structure.extended_shared(&ext_sig);

    let mut final_store = IdbStore::new_for(program);
    let mut total = EvalStats {
        strata: strat.stratum_count(),
        ..EvalStats::default()
    };

    // One sub-program shell reused across strata: the IDB tables (which
    // fix the predicate id space) are cloned once, only the rule vector
    // changes per stratum.
    let mut sub = Program {
        rules: Vec::new(),
        idb_names: program.idb_names.clone(),
        idb_arities: program.idb_arities.clone(),
        spans: Vec::new(),
        idb_by_name: program.idb_by_name.clone(),
    };

    let mut completed = 0usize;
    let mut trip: Option<LimitKind> = None;
    for (k, stratum_rules) in strat.strata().iter().enumerate() {
        if !stratum_rules.is_empty() {
            // The stratum's semipositive sub-program: this stratum's rules
            // with lower-stratum references rewritten to the materialized
            // extensional predicates.
            sub.rules = rewrite_stratum_rules(program, strat, stratum_rules, k, ext_pred);
            debug_assert!(
                sub.check_semipositive().is_ok(),
                "stratum rewrite must produce a semipositive sub-program"
            );

            let (plans, hit) = plans_for(&sub, &ext_structure, cache);
            let stats = EvalStats {
                plan_cache_hits: usize::from(hit),
                ..EvalStats::default()
            };
            // A fresh governor per stratum (the per-stratum stats reset
            // breaks the work counter's monotonicity); the shared meter
            // keeps the budget cumulative across strata.
            let mut gov = Governor::new(limits);
            if let Some(p) = prof.as_deref_mut() {
                p.begin_stratum(k, &sub, Some(stratum_rules.as_slice()));
            }
            let (sub_store, stats) = run_seminaive_scratch(
                &sub,
                &ext_structure,
                &plans,
                stats,
                scratch,
                &mut gov,
                prof.as_deref_mut(),
            );
            total.merge_counters(&stats);
            trip = gov.tripped();
            if let Some(p) = prof.as_deref_mut() {
                if trip.is_some() {
                    p.mark_trip(k);
                }
                p.end_stratum(stats.rounds, stats.facts);
            }

            // Materialize this stratum's output: into the final store, and
            // into the extended structure for the strata above. A tripped
            // stratum's partial output is still materialized — every fact
            // in it is truly derivable (graceful degradation).
            for pred in (0..program.idb_count() as u32).map(IdbId) {
                if strat.stratum_of(pred) != k {
                    continue;
                }
                for tuple in sub_store.relation(pred).iter() {
                    final_store.insert_raw(pred, tuple);
                    if let Some(p) = ext_pred[pred.index()] {
                        ext_structure.insert(p, tuple);
                    }
                }
            }
            if trip.is_some() {
                break;
            }
        }
        completed = k + 1;
    }

    if trip.is_some() {
        total.strata = completed;
    }
    (final_store, total, trip)
}

/// Rewrites stratum `k`'s rules into a semipositive sub-program: every
/// body reference to a lower-stratum predicate becomes the extensional
/// predicate materializing it in the extended structure. Shared between
/// [`run_stratified`] and the incremental-maintenance pipeline (which
/// fixes the per-stratum sub-programs once at
/// [`materialize`](crate::evaluator::Evaluator::materialize) time).
pub(crate) fn rewrite_stratum_rules(
    program: &Program,
    strat: &Stratification,
    stratum_rules: &[usize],
    k: usize,
    ext_pred: &[Option<PredId>],
) -> Vec<crate::ast::Rule> {
    stratum_rules
        .iter()
        .map(|&ri| {
            let mut rule = program.rules[ri].clone();
            for lit in &mut rule.body {
                if let PredRef::Idb(id) = lit.atom.pred {
                    if strat.stratum_of(id) < k {
                        let p = ext_pred[id.index()].expect("cross-stratum reads are materialized");
                        lit.atom.pred = PredRef::Edb(p);
                    }
                }
            }
            rule
        })
        .collect()
}

/// The stratum a rule evaluates in: the stratum of its head predicate.
pub(crate) fn rule_stratum(strat: &Stratification, program: &Program, rule: usize) -> usize {
    match program.rules[rule].head.pred {
        PredRef::Idb(id) => strat.stratum_of(id),
        PredRef::Edb(_) => unreachable!("stratify rejects EDB heads"),
    }
}

#[cfg(test)]
#[allow(deprecated)] // unit tests of the deprecated one-shot wrappers themselves
mod tests {
    use super::*;
    use crate::ast::{Atom, Literal, Rule, Term, Var};
    use crate::eval::eval_seminaive;
    use crate::parser::parse_program;
    use mdtw_structure::{Domain, ElemId, Signature};
    use std::sync::Arc;

    fn chain(n: usize) -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1), ("first", 1)]));
        let dom = Domain::anonymous(n);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        let node = s.signature().lookup("node").unwrap();
        let first = s.signature().lookup("first").unwrap();
        for i in 0..n {
            s.insert(node, &[ElemId(i as u32)]);
        }
        for i in 0..n - 1 {
            s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
        }
        s.insert(first, &[ElemId(0)]);
        s
    }

    const UNREACH: &str = "reach(X) :- first(X).\n\
                           reach(Y) :- reach(X), e(X, Y).\n\
                           unreach(X) :- node(X), !reach(X).";

    #[test]
    fn semipositive_program_is_single_stratum() {
        let s = chain(4);
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).",
            &s,
        )
        .unwrap();
        let strat = stratify(&p).unwrap();
        assert_eq!(strat.stratum_count(), 1);
        assert_eq!(strat.stratum_of(p.idb("path").unwrap()), 0);
        assert_eq!(strat.strata(), &[vec![0, 1]]);
    }

    #[test]
    fn complement_reachability_gets_two_strata() {
        let s = chain(5);
        let p = parse_program(UNREACH, &s).unwrap();
        let strat = stratify(&p).unwrap();
        assert_eq!(strat.stratum_count(), 2);
        assert_eq!(strat.stratum_of(p.idb("reach").unwrap()), 0);
        assert_eq!(strat.stratum_of(p.idb("unreach").unwrap()), 1);
        assert_eq!(strat.strata(), &[vec![0, 1], vec![2]]);
    }

    #[test]
    fn stratified_complement_reachability_on_disconnected_chain() {
        // Two chain components; `first` marks only element 0, so the
        // second component is unreachable.
        let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1), ("first", 1)]));
        let dom = Domain::anonymous(6);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        let node = s.signature().lookup("node").unwrap();
        let first = s.signature().lookup("first").unwrap();
        for i in 0..6 {
            s.insert(node, &[ElemId(i)]);
        }
        for i in [0u32, 1, 3, 4] {
            s.insert(e, &[ElemId(i), ElemId(i + 1)]);
        }
        s.insert(first, &[ElemId(0)]);

        let p = parse_program(UNREACH, &s).unwrap();
        let (store, stats) = eval_stratified(&p, &s).unwrap();
        let unreach = p.idb("unreach").unwrap();
        assert_eq!(store.unary(unreach), vec![ElemId(3), ElemId(4), ElemId(5)]);
        assert_eq!(stats.strata, 2);
        assert_eq!(stats.negative_checks, 6, "one check per node");
        assert_eq!(stats.facts, store.fact_count());
    }

    #[test]
    fn negation_chain_three_strata() {
        let s = chain(5);
        let p = parse_program(
            &format!("{UNREACH}\nsettled(X) :- node(X), !unreach(X), !first(X)."),
            &s,
        )
        .unwrap();
        let strat = stratify(&p).unwrap();
        assert_eq!(strat.stratum_count(), 3);
        let (store, stats) = eval_stratified(&p, &s).unwrap();
        assert_eq!(stats.strata, 3);
        // Whole chain reachable from 0 → unreach empty → settled is
        // everything but the first node.
        let settled = p.idb("settled").unwrap();
        assert_eq!(
            store.unary(settled),
            (1u32..5).map(ElemId).collect::<Vec<_>>()
        );
        assert!(store.unary(p.idb("unreach").unwrap()).is_empty());
    }

    #[test]
    fn semipositive_matches_eval_seminaive_exactly() {
        let s = chain(7);
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).\n\
             skip(X, Y) :- path(X, Y), !e(X, Y).",
            &s,
        )
        .unwrap();
        let (semi, semi_stats) = eval_seminaive(&p, &s).unwrap();
        let (strat, strat_stats) = eval_stratified(&p, &s).unwrap();
        for idb in 0..p.idb_count() {
            let id = IdbId(idb as u32);
            assert_eq!(semi.tuples(id), strat.tuples(id));
        }
        assert_eq!(semi_stats.facts, strat_stats.facts);
        assert_eq!(semi_stats.rounds, strat_stats.rounds);
        assert_eq!(semi_stats.firings, strat_stats.firings);
        assert_eq!(strat_stats.strata, 1);
    }

    /// Hand-built (the parser rejects it earlier): `p :- node, !q` and
    /// `q :- node, !p` — mutual negative recursion.
    #[test]
    fn mutual_negation_reports_the_cycle() {
        let s = chain(3);
        let node = s.signature().lookup("node").unwrap();
        let mut p = Program::default();
        let qp = p.intern_idb("p", 1).unwrap();
        let qq = p.intern_idb("q", 1).unwrap();
        let mk = |head: IdbId, neg: IdbId| Rule {
            head: Atom {
                pred: PredRef::Idb(head),
                terms: vec![Term::Var(Var(0))],
            },
            body: vec![
                Literal {
                    atom: Atom {
                        pred: PredRef::Edb(node),
                        terms: vec![Term::Var(Var(0))],
                    },
                    positive: true,
                },
                Literal {
                    atom: Atom {
                        pred: PredRef::Idb(neg),
                        terms: vec![Term::Var(Var(0))],
                    },
                    positive: false,
                },
            ],
            var_count: 1,
            var_names: vec!["X".into()],
        };
        p.rules.push(mk(qp, qq));
        p.rules.push(mk(qq, qp));

        let err = stratify(&p).unwrap_err();
        match &err {
            StratificationError::NegativeCycle { negated, cycle, .. } => {
                assert!(negated == "p" || negated == "q");
                assert_eq!(cycle.len(), 2);
                assert!(cycle.contains(&"p".to_string()));
                assert!(cycle.contains(&"q".to_string()));
            }
            other => panic!("expected NegativeCycle, got {other:?}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains('p') && rendered.contains('q'));
        assert!(eval_stratified(&p, &chain(3)).is_err());
    }

    /// `win(X) :- e(X, Y), !win(Y)` — negation through the predicate's own
    /// SCC (a self-loop), the classic unstratifiable game program.
    #[test]
    fn self_negation_is_a_one_predicate_cycle() {
        let s = chain(3);
        let e = s.signature().lookup("e").unwrap();
        let mut p = Program::default();
        let win = p.intern_idb("win", 1).unwrap();
        p.rules.push(Rule {
            head: Atom {
                pred: PredRef::Idb(win),
                terms: vec![Term::Var(Var(0))],
            },
            body: vec![
                Literal {
                    atom: Atom {
                        pred: PredRef::Edb(e),
                        terms: vec![Term::Var(Var(0)), Term::Var(Var(1))],
                    },
                    positive: true,
                },
                Literal {
                    atom: Atom {
                        pred: PredRef::Idb(win),
                        terms: vec![Term::Var(Var(1))],
                    },
                    positive: false,
                },
            ],
            var_count: 2,
            var_names: vec!["X".into(), "Y".into()],
        });
        let err = stratify(&p).unwrap_err();
        assert_eq!(
            err,
            StratificationError::NegativeCycle {
                rule: 0,
                negated: "win".into(),
                cycle: vec!["win".into()],
            }
        );
    }

    #[test]
    fn positive_recursion_through_negation_level_is_fine() {
        // unreach is negated, and a higher stratum recurses positively on
        // itself over unreach facts — stratified, three SCCs, two strata.
        let s = chain(6);
        let p = parse_program(
            &format!(
                "{UNREACH}\nisland(X, Y) :- unreach(X), unreach(Y).\n\
                      island(X, Z) :- island(X, Y), island(Y, Z)."
            ),
            &s,
        )
        .unwrap();
        let strat = stratify(&p).unwrap();
        assert_eq!(strat.stratum_count(), 2);
        assert_eq!(strat.stratum_of(p.idb("island").unwrap()), 1);
        let (store, _) = eval_stratified(&p, &s).unwrap();
        // Fully reachable chain: no unreach facts, no islands.
        assert_eq!(store.unary(p.idb("unreach").unwrap()), vec![]);
        assert!(store.tuples(p.idb("island").unwrap()).is_empty());
    }

    #[test]
    fn unsafe_and_edb_head_rules_are_reported() {
        let s = chain(3);
        let e = s.signature().lookup("e").unwrap();
        let mut p = Program::default();
        let q = p.intern_idb("q", 1).unwrap();
        // q(X) :- q(Y).  — X unbound.
        p.rules.push(Rule {
            head: Atom {
                pred: PredRef::Idb(q),
                terms: vec![Term::Var(Var(0))],
            },
            body: vec![Literal {
                atom: Atom {
                    pred: PredRef::Idb(q),
                    terms: vec![Term::Var(Var(1))],
                },
                positive: true,
            }],
            var_count: 2,
            var_names: vec!["X".into(), "Y".into()],
        });
        assert_eq!(
            stratify(&p).unwrap_err(),
            StratificationError::UnsafeRule { rule: 0 }
        );

        let mut p2 = Program::default();
        p2.rules.push(Rule {
            head: Atom {
                pred: PredRef::Edb(e),
                terms: vec![Term::Var(Var(0)), Term::Var(Var(0))],
            },
            body: vec![Literal {
                atom: Atom {
                    pred: PredRef::Edb(e),
                    terms: vec![Term::Var(Var(0)), Term::Var(Var(0))],
                },
                positive: true,
            }],
            var_count: 1,
            var_names: vec!["X".into()],
        });
        assert_eq!(
            stratify(&p2).unwrap_err(),
            StratificationError::EdbHead { rule: 0 }
        );
    }

    #[test]
    fn idb_name_clash_with_edb_is_uniquified() {
        // Hand-built program whose IDB predicate is named like the EDB
        // relation `node`: materialization must not collide.
        let s = chain(4);
        let e = s.signature().lookup("e").unwrap();
        let node_edb = s.signature().lookup("node").unwrap();
        let mut p = Program::default();
        let node_idb = p.intern_idb("node", 1).unwrap();
        let lone = p.intern_idb("lone", 1).unwrap();
        // node(X) :- e(X, Y).          (IDB `node`: elements with out-edges)
        p.rules.push(Rule {
            head: Atom {
                pred: PredRef::Idb(node_idb),
                terms: vec![Term::Var(Var(0))],
            },
            body: vec![Literal {
                atom: Atom {
                    pred: PredRef::Edb(e),
                    terms: vec![Term::Var(Var(0)), Term::Var(Var(1))],
                },
                positive: true,
            }],
            var_count: 2,
            var_names: vec!["X".into(), "Y".into()],
        });
        // lone(X) :- node_edb(X), !node_idb(X).
        p.rules.push(Rule {
            head: Atom {
                pred: PredRef::Idb(lone),
                terms: vec![Term::Var(Var(0))],
            },
            body: vec![
                Literal {
                    atom: Atom {
                        pred: PredRef::Edb(node_edb),
                        terms: vec![Term::Var(Var(0))],
                    },
                    positive: true,
                },
                Literal {
                    atom: Atom {
                        pred: PredRef::Idb(node_idb),
                        terms: vec![Term::Var(Var(0))],
                    },
                    positive: false,
                },
            ],
            var_count: 1,
            var_names: vec!["X".into()],
        });
        let (store, stats) = eval_stratified(&p, &s).unwrap();
        assert_eq!(stats.strata, 2);
        // Elements 0..3 have out-edges; only the last element is lone.
        assert_eq!(store.unary(lone), vec![ElemId(3)]);
    }

    #[test]
    fn stratified_hits_plan_cache_per_stratum() {
        let s = chain(8);
        let p = parse_program(UNREACH, &s).unwrap();
        let cache = PlanCache::new();
        let (_, first) = eval_stratified_with_cache(&p, &s, &cache).unwrap();
        assert_eq!(first.plan_cache_hits, 0);
        let (_, second) = eval_stratified_with_cache(&p, &s, &cache).unwrap();
        assert_eq!(
            second.plan_cache_hits, 2,
            "both strata reuse their compiled plans"
        );
        assert_eq!(first.facts, second.facts);
    }
}
