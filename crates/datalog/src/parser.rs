//! A small textual syntax for datalog programs.
//!
//! ```text
//! % transitive closure
//! path(X, Y) :- e(X, Y).
//! path(X, Z) :- path(X, Y), e(Y, Z).
//! far(X)     :- path(a, X), !e(a, X).
//! flag.
//! ```
//!
//! Conventions: identifiers starting with an upper-case letter (or `_`)
//! are variables; everything else is a constant or predicate name.
//! Negation is written `!atom`, `¬atom` or `not atom`; comments run from
//! `%` or `#` to end of line. Predicates named in the input structure's
//! signature are extensional; all others are intensional.
//!
//! Negation may be applied to intensional atoms as long as the program is
//! *stratified* (no predicate depends on its own negation); the parser
//! runs [`stratify`](crate::stratify::stratify()) and rejects programs with
//! a negative dependency cycle. Any parsed program evaluates through an
//! [`Evaluator`](crate::evaluator::Evaluator) session, which dispatches
//! multi-stratum programs to the stratified pipeline; programs whose
//! negation touches only extensional atoms remain valid inputs for the
//! semipositive engines.

use crate::ast::{Atom, IdbId, Literal, PredRef, Program, Rule, Term, Var};
use crate::stratify::stratify;
use mdtw_structure::fx::FxHashMap;
use mdtw_structure::Structure;
use std::fmt;

/// A parse or resolution error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the error occurred (0 = global).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `source` and resolves predicate/constant names against
/// `structure`. Returns a ready-to-evaluate [`Program`].
pub fn parse_program(source: &str, structure: &Structure) -> Result<Program, ParseError> {
    let mut program = Program::default();
    // First pass: collect heads so intensional predicates are known even
    // when a body mentions them before their defining rule.
    let statements = split_statements(source)?;
    for (line, text) in &statements {
        let (head_txt, _) = split_rule(text);
        let (negated, head_txt) = strip_negation(head_txt);
        if negated {
            return Err(ParseError {
                line: *line,
                message: format!("negated head atom `{}`", head_txt.trim()),
            });
        }
        let head = parse_atom(head_txt.trim(), *line)?;
        if structure.signature().lookup(&head.pred).is_some() {
            return Err(ParseError {
                line: *line,
                message: format!("extensional predicate `{}` in rule head", head.pred),
            });
        }
        program
            .intern_idb(&head.pred, head.args.len())
            .map_err(|message| ParseError {
                line: *line,
                message,
            })?;
    }
    for (line, text) in &statements {
        let rule = parse_rule(text, *line, structure, &mut program)?;
        if !rule.is_safe() {
            return Err(ParseError {
                line: *line,
                message: "unsafe rule: every head variable and negated-literal variable \
                          must occur in a positive body literal"
                    .into(),
            });
        }
        program.rules.push(rule);
    }
    // Stratifiability is the program-level well-formedness condition (a
    // semipositive program is the single-stratum special case).
    stratify(&program).map_err(|e| ParseError {
        line: 0,
        message: e.to_string(),
    })?;
    Ok(program)
}

/// Strips one leading negation marker (`!`, `¬`, or the `not` keyword
/// followed by whitespace) off a literal; returns whether one was present
/// and the remaining atom text. `not` only counts as the keyword when
/// separated from the atom, so predicates named `not…` stay parseable.
fn strip_negation(text: &str) -> (bool, &str) {
    let text = text.trim_start();
    if let Some(rest) = text.strip_prefix('!') {
        return (true, rest.trim_start());
    }
    if let Some(rest) = text.strip_prefix('¬') {
        return (true, rest.trim_start());
    }
    if let Some(rest) = text.strip_prefix("not") {
        if rest.starts_with(char::is_whitespace) {
            return (true, rest.trim_start());
        }
    }
    (false, text)
}

/// Splits source into `.`-terminated statements with their line numbers,
/// stripping comments.
fn split_statements(source: &str) -> Result<Vec<(usize, String)>, ParseError> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut start_line = 1;
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw_line.find(['%', '#']) {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        for ch in line.chars() {
            if current.trim().is_empty() {
                start_line = line_no;
            }
            if ch == '.' {
                let stmt = current.trim().to_owned();
                if !stmt.is_empty() {
                    out.push((start_line, stmt));
                }
                current.clear();
            } else {
                current.push(ch);
            }
        }
        current.push(' ');
    }
    if !current.trim().is_empty() {
        return Err(ParseError {
            line: start_line,
            message: format!("statement not terminated by `.`: `{}`", current.trim()),
        });
    }
    Ok(out)
}

fn split_rule(text: &str) -> (&str, Option<&str>) {
    match text.find(":-") {
        Some(pos) => (&text[..pos], Some(&text[pos + 2..])),
        None => (text, None),
    }
}

/// Raw, unresolved atom.
struct RawAtom {
    pred: String,
    args: Vec<String>,
}

fn parse_atom(text: &str, line: usize) -> Result<RawAtom, ParseError> {
    let text = text.trim();
    let err = |message: String| ParseError { line, message };
    if text.is_empty() {
        return Err(err("empty atom".into()));
    }
    match text.find('(') {
        None => {
            validate_ident(text, line)?;
            Ok(RawAtom {
                pred: text.to_owned(),
                args: Vec::new(),
            })
        }
        Some(open) => {
            if !text.ends_with(')') {
                return Err(err(format!("missing `)` in `{text}`")));
            }
            let pred = text[..open].trim();
            validate_ident(pred, line)?;
            let inner = &text[open + 1..text.len() - 1];
            let args: Vec<String> = inner.split(',').map(|a| a.trim().to_owned()).collect();
            if args.iter().any(String::is_empty) {
                return Err(err(format!("empty argument in `{text}`")));
            }
            for a in &args {
                validate_ident(a, line)?;
            }
            Ok(RawAtom {
                pred: pred.to_owned(),
                args,
            })
        }
    }
}

fn validate_ident(s: &str, line: usize) -> Result<(), ParseError> {
    let ok = !s.is_empty()
        && s.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '\'');
    if ok {
        Ok(())
    } else {
        Err(ParseError {
            line,
            message: format!("invalid identifier `{s}`"),
        })
    }
}

fn is_variable(name: &str) -> bool {
    name.starts_with(|c: char| c.is_uppercase() || c == '_')
}

/// Splits a rule body on top-level commas (arguments contain commas inside
/// parentheses).
fn split_body(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

fn parse_rule(
    text: &str,
    line: usize,
    structure: &Structure,
    program: &mut Program,
) -> Result<Rule, ParseError> {
    let (head_txt, body_txt) = split_rule(text);
    let head_raw = parse_atom(head_txt, line)?;

    let mut vars: FxHashMap<String, Var> = FxHashMap::default();
    let mut var_names: Vec<String> = Vec::new();
    let mut resolve_term = |name: &str| -> Result<Term, ParseError> {
        if is_variable(name) {
            let next = Var(vars.len() as u32);
            let v = *vars.entry(name.to_owned()).or_insert_with(|| {
                var_names.push(name.to_owned());
                next
            });
            Ok(Term::Var(v))
        } else {
            match structure.domain().lookup(name) {
                Some(c) => Ok(Term::Const(c)),
                None => Err(ParseError {
                    line,
                    message: format!("unknown constant `{name}`"),
                }),
            }
        }
    };

    let resolve_atom = |raw: &RawAtom,
                        program: &mut Program,
                        resolve_term: &mut dyn FnMut(&str) -> Result<Term, ParseError>|
     -> Result<Atom, ParseError> {
        let terms: Result<Vec<Term>, ParseError> =
            raw.args.iter().map(|a| resolve_term(a)).collect();
        let terms = terms?;
        let pred = match structure.signature().lookup(&raw.pred) {
            Some(p) => {
                let arity = structure.signature().arity(p);
                if arity != terms.len() {
                    return Err(ParseError {
                        line,
                        message: format!(
                            "`{}` has arity {arity}, used with {} arguments",
                            raw.pred,
                            terms.len()
                        ),
                    });
                }
                PredRef::Edb(p)
            }
            None => {
                let id: IdbId = program
                    .intern_idb(&raw.pred, terms.len())
                    .map_err(|message| ParseError { line, message })?;
                PredRef::Idb(id)
            }
        };
        Ok(Atom { pred, terms })
    };

    let head = resolve_atom(&head_raw, program, &mut resolve_term)?;

    let mut body = Vec::new();
    if let Some(body_txt) = body_txt {
        for lit_txt in split_body(body_txt) {
            let lit_txt = lit_txt.trim();
            if lit_txt.is_empty() {
                return Err(ParseError {
                    line,
                    message: "empty body literal".into(),
                });
            }
            let (negated, atom_txt) = strip_negation(lit_txt);
            let positive = !negated;
            let raw = parse_atom(atom_txt.trim(), line)?;
            let atom = resolve_atom(&raw, program, &mut resolve_term)?;
            body.push(Literal { atom, positive });
        }
    }

    Ok(Rule {
        head,
        body,
        var_count: var_names.len() as u32,
        var_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdtw_structure::{Domain, ElemId, Signature};
    use std::sync::Arc;

    fn tiny_structure() -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let mut dom = Domain::new();
        let a = dom.insert("a");
        let b = dom.insert("b");
        let c = dom.insert("c");
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        s.insert(e, &[a, b]);
        s.insert(e, &[b, c]);
        s
    }

    #[test]
    fn parses_transitive_closure() {
        let s = tiny_structure();
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).",
            &s,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.idb_count(), 1);
        assert_eq!(p.rules[1].body.len(), 2);
        assert_eq!(p.rules[1].var_count, 3);
    }

    #[test]
    fn parses_negation_and_constants() {
        let s = tiny_structure();
        let p = parse_program("far(X) :- path(a, X), !e(a, X). path(X,Y) :- e(X,Y).", &s).unwrap();
        let rule = &p.rules[0];
        assert_eq!(rule.body.len(), 2);
        assert!(!rule.body[1].positive);
        assert!(matches!(rule.body[0].atom.terms[0], Term::Const(ElemId(0))));
    }

    #[test]
    fn parses_zero_ary_and_facts() {
        let s = tiny_structure();
        let p = parse_program("flag :- e(a, b). marked(a).", &s).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.idb("flag").is_some());
        assert!(p.rules[1].body.is_empty());
    }

    #[test]
    fn comments_and_multiline_statements() {
        let s = tiny_structure();
        let p = parse_program("% a comment\npath(X, Y) :-\n   e(X, Y). # trailing\n", &s).unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn rejects_unknown_constant() {
        let s = tiny_structure();
        let err = parse_program("q(X) :- e(X, zz).", &s).unwrap_err();
        assert!(err.message.contains("unknown constant"));
    }

    #[test]
    fn rejects_arity_mismatch_on_edb() {
        let s = tiny_structure();
        let err = parse_program("q(X) :- e(X).", &s).unwrap_err();
        assert!(err.message.contains("arity"));
    }

    #[test]
    fn rejects_extensional_head() {
        let s = tiny_structure();
        let err = parse_program("e(X, Y) :- e(Y, X).", &s).unwrap_err();
        assert!(err.message.contains("extensional"));
    }

    #[test]
    fn rejects_unterminated_statement() {
        let s = tiny_structure();
        let err = parse_program("q(X) :- e(X, Y)", &s).unwrap_err();
        assert!(err.message.contains("not terminated"));
    }

    #[test]
    fn rejects_unsafe_rule() {
        let s = tiny_structure();
        let err = parse_program("q(X, Y) :- e(X, X).", &s).unwrap_err();
        assert!(err.message.contains("unsafe"));
    }

    #[test]
    fn accepts_stratified_negated_idb() {
        let s = tiny_structure();
        let p = parse_program("q(X) :- e(X, Y), !r(X). r(X) :- e(X, X).", &s).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(!p.rules[0].body[1].positive);
        assert!(matches!(
            p.rules[0].body[1].atom.pred,
            PredRef::Idb(IdbId(1))
        ));
        // Still not semipositive — the stratum-local invariant fails on
        // the whole program.
        assert!(p.check_semipositive().is_err());
    }

    #[test]
    fn rejects_negative_dependency_cycle() {
        let s = tiny_structure();
        let err = parse_program("p(X) :- e(X, Y), !q(X). q(X) :- e(X, Y), !p(X).", &s).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("recursive component"), "{err}");
        assert!(err.message.contains('p') && err.message.contains('q'));
    }

    #[test]
    fn three_negation_spellings_parse_identically() {
        let s = tiny_structure();
        let base = "r(X) :- e(X, X). q(X) :- e(X, Y), {}r(X).";
        let programs: Vec<_> = ["!", "! ", "\u{ac}", "\u{ac} ", "not "]
            .iter()
            .map(|neg| parse_program(&base.replace("{}", neg), &s).unwrap())
            .collect();
        for p in &programs {
            assert_eq!(p.rules.len(), 2);
            assert_eq!(p.rules[1].body.len(), 2);
            assert!(!p.rules[1].body[1].positive);
            assert_eq!(p.rules[1].body[1].atom, programs[0].rules[1].body[1].atom);
        }
    }

    #[test]
    fn not_prefix_without_space_is_a_predicate_name() {
        let s = tiny_structure();
        // `notable` and `not_yet` are ordinary (positive) predicates.
        let p = parse_program("notable(X) :- e(X, Y). q(X) :- notable(X).", &s).unwrap();
        assert!(p.idb("notable").is_some());
        assert!(p.rules[1].body[0].positive);
    }

    #[test]
    fn rejects_negated_head_atom_with_span() {
        let s = tiny_structure();
        for neg in ["!", "\u{ac}", "not "] {
            let src = format!("q(X) :- e(X, Y).\n{neg}r(X) :- e(X, X).");
            let err = parse_program(&src, &s).unwrap_err();
            assert_eq!(err.line, 2, "spelling {neg:?}");
            assert!(err.message.contains("negated head"), "{err}");
        }
    }
}
