//! A small textual syntax for datalog programs.
//!
//! ```text
//! % transitive closure
//! path(X, Y) :- e(X, Y).
//! path(X, Z) :- path(X, Y), e(Y, Z).
//! far(X)     :- path(a, X), !e(a, X).
//! flag.
//! ```
//!
//! Conventions: identifiers starting with an upper-case letter (or `_`)
//! are variables; everything else is a constant or predicate name.
//! Negation is written `!atom`, `¬atom` or `not atom`; comments run from
//! `%` or `#` to end of line. Predicates named in the input structure's
//! signature are extensional; all others are intensional.
//!
//! Negation may be applied to intensional atoms as long as the program is
//! *stratified* (no predicate depends on its own negation); the parser
//! runs [`stratify`](crate::stratify::stratify()) and rejects programs with
//! a negative dependency cycle. Any parsed program evaluates through an
//! [`Evaluator`](crate::evaluator::Evaluator) session, which dispatches
//! multi-stratum programs to the stratified pipeline; programs whose
//! negation touches only extensional atoms remain valid inputs for the
//! semipositive engines.
//!
//! Every error carries a [`Span`] (byte range + line/col) into the source
//! text, and parsed programs record a [`RuleSpans`] side table (whole
//! rule, head, each body literal) consumed by the
//! [`analysis`](crate::analysis) diagnostics. [`parse_program_lenient`]
//! additionally admits unsafe rules, extensional heads and unstratifiable
//! programs so the linter can report those conditions as diagnostics
//! instead of aborting at the first one.

use crate::ast::{Atom, IdbId, Literal, PredRef, Program, Rule, Term, Var};
use crate::span::{RuleSpans, Span};
use crate::stratify::{stratify, StratificationError};
use mdtw_structure::fx::FxHashMap;
use mdtw_structure::Structure;
use std::fmt;

/// What went wrong while parsing; every variant is reported with a
/// [`Span`] locating the offending source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(clippy::enum_variant_names)]
pub enum ParseErrorKind {
    /// Trailing statement without a terminating `.`.
    UnterminatedStatement,
    /// An atom with no text (e.g. a bare negation marker).
    EmptyAtom,
    /// `(` without a matching `)` at the end of the atom.
    MissingCloseParen,
    /// An empty argument between commas.
    EmptyArgument,
    /// A predicate or argument token with illegal characters.
    InvalidIdentifier,
    /// A constant argument not present in the structure's domain.
    UnknownConstant,
    /// A predicate used with two different arities (or against its
    /// declared extensional arity).
    ArityMismatch,
    /// An extensional predicate in a rule head.
    ExtensionalHead,
    /// A negation marker in front of a rule head.
    NegatedHead,
    /// An empty body literal between commas.
    EmptyLiteral,
    /// A rule violating the safety condition.
    UnsafeRule,
    /// The program has a negative dependency cycle.
    Unstratifiable,
}

/// A parse or resolution error with a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What kind of error this is.
    pub kind: ParseErrorKind,
    /// Where in the source it occurred.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl ParseError {
    /// 1-based line where the error occurred (0 = unknown).
    pub fn line(&self) -> usize {
        self.span.line as usize
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_known() {
            write!(f, "line {}: {}", self.span, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses `source` and resolves predicate/constant names against
/// `structure`. Returns a ready-to-evaluate [`Program`] (spans included);
/// unsafe rules, extensional heads and unstratifiable programs are
/// rejected.
pub fn parse_program(source: &str, structure: &Structure) -> Result<Program, ParseError> {
    parse_with(source, structure, true)
}

/// Like [`parse_program`], but *lenient*: unsafe rules, extensional rule
/// heads and negative dependency cycles are admitted into the returned
/// [`Program`] so that [`analysis::analyze`](crate::analysis::analyze) can
/// report them as spanned diagnostics (`MD001`–`MD003`) instead of
/// stopping at the first offence. Syntax and name-resolution errors are
/// still fatal. The returned program is **not** guaranteed to be
/// evaluable — run the analysis (or construct an
/// [`Evaluator`](crate::evaluator::Evaluator), which re-checks) first.
pub fn parse_program_lenient(source: &str, structure: &Structure) -> Result<Program, ParseError> {
    parse_with(source, structure, false)
}

fn parse_with(source: &str, structure: &Structure, strict: bool) -> Result<Program, ParseError> {
    let map = SourceMap::new(source);
    let statements = split_statements(&map)?;
    let mut program = Program::default();
    // First pass: collect heads so intensional predicates are known even
    // when a body mentions them before their defining rule.
    for stmt in &statements {
        let (head_lo, head_hi) = head_range(stmt);
        let (negated, atom_lo) = strip_negation_range(&stmt.text, head_lo, head_hi);
        if negated {
            return Err(ParseError {
                kind: ParseErrorKind::NegatedHead,
                span: stmt.span(&map, head_lo, head_hi),
                message: format!("negated head atom `{}`", &stmt.text[atom_lo..head_hi]),
            });
        }
        let head = parse_atom(stmt, &map, atom_lo, head_hi)?;
        if structure.signature().lookup(&head.pred).is_some() {
            if strict {
                return Err(ParseError {
                    kind: ParseErrorKind::ExtensionalHead,
                    span: stmt.span(&map, head.range.0, head.range.1),
                    message: format!("extensional predicate `{}` in rule head", head.pred),
                });
            }
        } else {
            program
                .intern_idb(&head.pred, head.args.len())
                .map_err(|message| ParseError {
                    kind: ParseErrorKind::ArityMismatch,
                    span: stmt.span(&map, head.range.0, head.range.1),
                    message,
                })?;
        }
    }
    for stmt in &statements {
        let (rule, spans) = parse_rule(stmt, &map, structure, &mut program)?;
        if strict && !rule.is_safe() {
            return Err(ParseError {
                kind: ParseErrorKind::UnsafeRule,
                span: spans.rule,
                message: "unsafe rule: every head variable and negated-literal variable \
                          must occur in a positive body literal"
                    .into(),
            });
        }
        program.rules.push(rule);
        program.spans.push(spans);
    }
    // Stratifiability is the program-level well-formedness condition (a
    // semipositive program is the single-stratum special case).
    if strict {
        stratify(&program).map_err(|e| {
            let span = match &e {
                StratificationError::NegativeCycle { rule, .. }
                | StratificationError::EdbHead { rule }
                | StratificationError::UnsafeRule { rule } => program
                    .rule_spans(*rule)
                    .map_or(Span::DUMMY, |spans| spans.rule),
            };
            ParseError {
                kind: ParseErrorKind::Unstratifiable,
                span,
                message: e.to_string(),
            }
        })?;
    }
    Ok(program)
}

/// Byte-offset → line/col translation for one source text.
struct SourceMap<'a> {
    source: &'a str,
    /// Byte offset where each line begins; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl<'a> SourceMap<'a> {
    fn new(source: &'a str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            source,
            line_starts,
        }
    }

    /// Builds a [`Span`] for the source byte range `start..end`.
    fn span_at(&self, start: u32, end: u32) -> Span {
        let line_idx = self.line_starts.partition_point(|&s| s <= start) - 1;
        let line_start = self.line_starts[line_idx] as usize;
        let col = self.source[line_start..(start as usize).min(self.source.len())]
            .chars()
            .count() as u32
            + 1;
        Span {
            start,
            end,
            line: line_idx as u32 + 1,
            col,
        }
    }
}

/// A `.`-terminated statement: comment-stripped text with newlines
/// collapsed to spaces, plus the source byte offset of every byte of it.
struct Statement {
    text: String,
    offsets: Vec<u32>,
}

impl Statement {
    /// The span of the byte range `lo..hi` of [`Statement::text`] back in
    /// the original source (trimmed range must be non-empty; callers trim
    /// first and fall back to the whole statement for empty ranges).
    fn span(&self, map: &SourceMap<'_>, lo: usize, hi: usize) -> Span {
        let (lo, hi) = trim_range(&self.text, lo, hi);
        if lo >= hi {
            return self.whole_span(map);
        }
        map.span_at(self.offsets[lo], self.offsets[hi - 1] + 1)
    }

    fn whole_span(&self, map: &SourceMap<'_>) -> Span {
        if self.offsets.is_empty() {
            Span::DUMMY
        } else {
            map.span_at(self.offsets[0], self.offsets[self.offsets.len() - 1] + 1)
        }
    }
}

/// Narrows `lo..hi` to exclude leading/trailing whitespace of `text`.
fn trim_range(text: &str, lo: usize, hi: usize) -> (usize, usize) {
    let slice = &text[lo..hi];
    let trimmed_start = slice.len() - slice.trim_start().len();
    let trimmed = slice.trim();
    (lo + trimmed_start, lo + trimmed_start + trimmed.len())
}

/// Splits source into `.`-terminated statements, stripping comments and
/// recording the source offset of every retained byte.
fn split_statements(map: &SourceMap<'_>) -> Result<Vec<Statement>, ParseError> {
    let mut out = Vec::new();
    let mut text = String::new();
    let mut offsets: Vec<u32> = Vec::new();
    let mut flush = |text: &mut String, offsets: &mut Vec<u32>| {
        let (lo, hi) = trim_range(text, 0, text.len());
        if lo < hi {
            out.push(Statement {
                text: text[lo..hi].to_owned(),
                offsets: offsets[lo..hi].to_vec(),
            });
        }
        text.clear();
        offsets.clear();
    };
    let mut pos = 0usize; // source byte offset of the current line start
    for raw in map.source.split('\n') {
        let full_len = raw.len();
        let raw_line = raw.strip_suffix('\r').unwrap_or(raw);
        let line = match raw_line.find(['%', '#']) {
            Some(p) => &raw_line[..p],
            None => raw_line,
        };
        for (i, ch) in line.char_indices() {
            if ch == '.' {
                flush(&mut text, &mut offsets);
            } else {
                text.push(ch);
                for k in 0..ch.len_utf8() {
                    offsets.push((pos + i + k) as u32);
                }
            }
        }
        // Newlines separate tokens just like spaces do.
        text.push(' ');
        offsets.push((pos + line.len()) as u32);
        pos += full_len + 1;
    }
    if !text.trim().is_empty() {
        let leftover = Statement {
            text: std::mem::take(&mut text),
            offsets: std::mem::take(&mut offsets),
        };
        let (lo, hi) = trim_range(&leftover.text, 0, leftover.text.len());
        return Err(ParseError {
            kind: ParseErrorKind::UnterminatedStatement,
            span: leftover.span(map, lo, hi),
            message: format!(
                "statement not terminated by `.`: `{}`",
                &leftover.text[lo..hi]
            ),
        });
    }
    Ok(out)
}

/// The (untrimmed) range of the head: everything before `:-`, or the whole
/// statement for a fact.
fn head_range(stmt: &Statement) -> (usize, usize) {
    match stmt.text.find(":-") {
        Some(p) => (0, p),
        None => (0, stmt.text.len()),
    }
}

/// The range of the body (after `:-`), if any.
fn body_range(stmt: &Statement) -> Option<(usize, usize)> {
    stmt.text.find(":-").map(|p| (p + 2, stmt.text.len()))
}

/// Strips one leading negation marker (`!`, `¬`, or the `not` keyword
/// followed by whitespace) off `text[lo..hi]`; returns whether one was
/// present and the new start of the atom. `not` only counts as the
/// keyword when separated from the atom, so predicates named `not…` stay
/// parseable.
fn strip_negation_range(text: &str, lo: usize, hi: usize) -> (bool, usize) {
    let (lo, hi) = trim_range(text, lo, hi);
    let slice = &text[lo..hi];
    if let Some(rest) = slice.strip_prefix('!') {
        return (true, hi - rest.trim_start().len());
    }
    if let Some(rest) = slice.strip_prefix('¬') {
        return (true, hi - rest.trim_start().len());
    }
    if let Some(rest) = slice.strip_prefix("not") {
        if rest.starts_with(char::is_whitespace) {
            return (true, hi - rest.trim_start().len());
        }
    }
    (false, lo)
}

/// Raw, unresolved atom with the statement-text ranges of its pieces.
struct RawAtom {
    pred: String,
    args: Vec<(String, (usize, usize))>,
    /// Trimmed range of the whole atom in the statement text.
    range: (usize, usize),
}

fn parse_atom(
    stmt: &Statement,
    map: &SourceMap<'_>,
    lo: usize,
    hi: usize,
) -> Result<RawAtom, ParseError> {
    let (lo, hi) = trim_range(&stmt.text, lo, hi);
    if lo >= hi {
        return Err(ParseError {
            kind: ParseErrorKind::EmptyAtom,
            span: stmt.whole_span(map),
            message: "empty atom".into(),
        });
    }
    let text = &stmt.text[lo..hi];
    match text.find('(') {
        None => {
            validate_ident(stmt, map, lo, hi)?;
            Ok(RawAtom {
                pred: text.to_owned(),
                args: Vec::new(),
                range: (lo, hi),
            })
        }
        Some(open) => {
            if !text.ends_with(')') {
                return Err(ParseError {
                    kind: ParseErrorKind::MissingCloseParen,
                    span: stmt.span(map, lo, hi),
                    message: format!("missing `)` in `{text}`"),
                });
            }
            let open = lo + open;
            let (pred_lo, pred_hi) = trim_range(&stmt.text, lo, open);
            validate_ident(stmt, map, pred_lo, pred_hi)?;
            let mut args = Vec::new();
            for (arg_lo, arg_hi) in split_commas(&stmt.text, open + 1, hi - 1) {
                let (arg_lo, arg_hi) = trim_range(&stmt.text, arg_lo, arg_hi);
                if arg_lo >= arg_hi {
                    return Err(ParseError {
                        kind: ParseErrorKind::EmptyArgument,
                        span: stmt.span(map, lo, hi),
                        message: format!("empty argument in `{text}`"),
                    });
                }
                validate_ident(stmt, map, arg_lo, arg_hi)?;
                args.push((stmt.text[arg_lo..arg_hi].to_owned(), (arg_lo, arg_hi)));
            }
            Ok(RawAtom {
                pred: stmt.text[pred_lo..pred_hi].to_owned(),
                args,
                range: (lo, hi),
            })
        }
    }
}

fn validate_ident(
    stmt: &Statement,
    map: &SourceMap<'_>,
    lo: usize,
    hi: usize,
) -> Result<(), ParseError> {
    let s = &stmt.text[lo..hi];
    let ok = !s.is_empty()
        && s.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '\'');
    if ok {
        Ok(())
    } else {
        Err(ParseError {
            kind: ParseErrorKind::InvalidIdentifier,
            span: stmt.span(map, lo, hi),
            message: format!("invalid identifier `{s}`"),
        })
    }
}

pub(crate) fn is_variable(name: &str) -> bool {
    name.starts_with(|c: char| c.is_uppercase() || c == '_')
}

/// Splits `text[lo..hi]` on top-level commas (arguments contain commas
/// inside parentheses).
fn split_commas(text: &str, lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = lo;
    for (i, c) in text[lo..hi].char_indices() {
        let i = lo + i;
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push((start, i));
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push((start, hi));
    out
}

fn parse_rule(
    stmt: &Statement,
    map: &SourceMap<'_>,
    structure: &Structure,
    program: &mut Program,
) -> Result<(Rule, RuleSpans), ParseError> {
    let (head_lo, head_hi) = head_range(stmt);
    // Pass 1 already rejected negated heads; re-strip for the atom range.
    let (_, head_atom_lo) = strip_negation_range(&stmt.text, head_lo, head_hi);
    let head_raw = parse_atom(stmt, map, head_atom_lo, head_hi)?;

    let mut vars: FxHashMap<String, Var> = FxHashMap::default();
    let mut var_names: Vec<String> = Vec::new();
    let mut resolve_term = |name: &str, range: (usize, usize)| -> Result<Term, ParseError> {
        if is_variable(name) {
            let next = Var(vars.len() as u32);
            let v = *vars.entry(name.to_owned()).or_insert_with(|| {
                var_names.push(name.to_owned());
                next
            });
            Ok(Term::Var(v))
        } else {
            match structure.domain().lookup(name) {
                Some(c) => Ok(Term::Const(c)),
                None => Err(ParseError {
                    kind: ParseErrorKind::UnknownConstant,
                    span: stmt.span(map, range.0, range.1),
                    message: format!("unknown constant `{name}`"),
                }),
            }
        }
    };

    /// Maps an argument token and its byte range to a resolved term.
    type TermResolver<'a> = dyn FnMut(&str, (usize, usize)) -> Result<Term, ParseError> + 'a;

    let resolve_atom = |raw: &RawAtom,
                        program: &mut Program,
                        resolve_term: &mut TermResolver<'_>|
     -> Result<Atom, ParseError> {
        let terms: Result<Vec<Term>, ParseError> = raw
            .args
            .iter()
            .map(|(a, range)| resolve_term(a, *range))
            .collect();
        let terms = terms?;
        let pred = match structure.signature().lookup(&raw.pred) {
            Some(p) => {
                let arity = structure.signature().arity(p);
                if arity != terms.len() {
                    return Err(ParseError {
                        kind: ParseErrorKind::ArityMismatch,
                        span: stmt.span(map, raw.range.0, raw.range.1),
                        message: format!(
                            "`{}` has arity {arity}, used with {} arguments",
                            raw.pred,
                            terms.len()
                        ),
                    });
                }
                PredRef::Edb(p)
            }
            None => {
                let id: IdbId = program
                    .intern_idb(&raw.pred, terms.len())
                    .map_err(|message| ParseError {
                        kind: ParseErrorKind::ArityMismatch,
                        span: stmt.span(map, raw.range.0, raw.range.1),
                        message,
                    })?;
                PredRef::Idb(id)
            }
        };
        Ok(Atom { pred, terms })
    };

    let head = resolve_atom(&head_raw, program, &mut resolve_term)?;
    let head_span = stmt.span(map, head_raw.range.0, head_raw.range.1);

    let mut body = Vec::new();
    let mut literal_spans = Vec::new();
    if let Some((body_lo, body_hi)) = body_range(stmt) {
        for (lit_lo, lit_hi) in split_commas(&stmt.text, body_lo, body_hi) {
            let (lit_lo, lit_hi) = trim_range(&stmt.text, lit_lo, lit_hi);
            if lit_lo >= lit_hi {
                return Err(ParseError {
                    kind: ParseErrorKind::EmptyLiteral,
                    span: stmt.whole_span(map),
                    message: "empty body literal".into(),
                });
            }
            let (negated, atom_lo) = strip_negation_range(&stmt.text, lit_lo, lit_hi);
            let raw = parse_atom(stmt, map, atom_lo, lit_hi)?;
            let atom = resolve_atom(&raw, program, &mut resolve_term)?;
            body.push(Literal {
                atom,
                positive: !negated,
            });
            literal_spans.push(stmt.span(map, lit_lo, lit_hi));
        }
    }

    let rule = Rule {
        head,
        body,
        var_count: var_names.len() as u32,
        var_names,
    };
    let spans = RuleSpans {
        rule: stmt.whole_span(map),
        head: head_span,
        literals: literal_spans,
    };
    Ok((rule, spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdtw_structure::{Domain, ElemId, Signature};
    use std::sync::Arc;

    fn tiny_structure() -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let mut dom = Domain::new();
        let a = dom.insert("a");
        let b = dom.insert("b");
        let c = dom.insert("c");
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        s.insert(e, &[a, b]);
        s.insert(e, &[b, c]);
        s
    }

    /// The source text a span covers — the strongest check that byte
    /// offsets survived comment stripping and statement splitting.
    fn span_text(src: &str, span: Span) -> &str {
        &src[span.start as usize..span.end as usize]
    }

    #[test]
    fn parses_transitive_closure() {
        let s = tiny_structure();
        let p = parse_program(
            "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).",
            &s,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.idb_count(), 1);
        assert_eq!(p.rules[1].body.len(), 2);
        assert_eq!(p.rules[1].var_count, 3);
    }

    #[test]
    fn records_rule_head_and_literal_spans() {
        let src = "% closure\npath(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).";
        let s = tiny_structure();
        let p = parse_program(src, &s).unwrap();
        assert_eq!(p.spans.len(), 2);
        let r0 = &p.spans[0];
        assert_eq!(span_text(src, r0.rule), "path(X, Y) :- e(X, Y)");
        assert_eq!(span_text(src, r0.head), "path(X, Y)");
        assert_eq!((r0.rule.line, r0.rule.col), (2, 1));
        let r1 = &p.spans[1];
        assert_eq!(span_text(src, r1.head), "path(X, Z)");
        assert_eq!(r1.literals.len(), 2);
        assert_eq!(span_text(src, r1.literals[0]), "path(X, Y)");
        assert_eq!(span_text(src, r1.literals[1]), "e(Y, Z)");
        assert_eq!((r1.literals[1].line, r1.literals[1].col), (3, 27));
    }

    #[test]
    fn multiline_rule_span_covers_both_lines() {
        let src = "path(X, Y) :-\n   e(X, Y).";
        let s = tiny_structure();
        let p = parse_program(src, &s).unwrap();
        let spans = &p.spans[0];
        assert_eq!(span_text(src, spans.rule), "path(X, Y) :-\n   e(X, Y)");
        assert_eq!(span_text(src, spans.literals[0]), "e(X, Y)");
        assert_eq!((spans.literals[0].line, spans.literals[0].col), (2, 4));
    }

    #[test]
    fn negated_literal_span_includes_marker() {
        let src = "far(X) :- path(a, X), !e(a, X). path(X,Y) :- e(X,Y).";
        let s = tiny_structure();
        let p = parse_program(src, &s).unwrap();
        assert_eq!(span_text(src, p.spans[0].literals[1]), "!e(a, X)");
    }

    #[test]
    fn parses_negation_and_constants() {
        let s = tiny_structure();
        let p = parse_program("far(X) :- path(a, X), !e(a, X). path(X,Y) :- e(X,Y).", &s).unwrap();
        let rule = &p.rules[0];
        assert_eq!(rule.body.len(), 2);
        assert!(!rule.body[1].positive);
        assert!(matches!(rule.body[0].atom.terms[0], Term::Const(ElemId(0))));
    }

    #[test]
    fn parses_zero_ary_and_facts() {
        let s = tiny_structure();
        let p = parse_program("flag :- e(a, b). marked(a).", &s).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.idb("flag").is_some());
        assert!(p.rules[1].body.is_empty());
    }

    #[test]
    fn comments_and_multiline_statements() {
        let s = tiny_structure();
        let p = parse_program("% a comment\npath(X, Y) :-\n   e(X, Y). # trailing\n", &s).unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn rejects_unknown_constant() {
        let src = "q(X) :- e(X, zz).";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnknownConstant);
        assert!(err.message.contains("unknown constant"));
        assert_eq!(span_text(src, err.span), "zz");
        assert_eq!((err.span.line, err.span.col), (1, 14));
    }

    #[test]
    fn rejects_arity_mismatch_on_edb() {
        let src = "q(X) :- e(X).";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::ArityMismatch);
        assert!(err.message.contains("arity"));
        assert_eq!(span_text(src, err.span), "e(X)");
    }

    #[test]
    fn rejects_arity_mismatch_on_idb() {
        let src = "r(X) :- e(X, Y).\nr(X, Y) :- e(X, Y).";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::ArityMismatch);
        assert!(err.message.contains("arities"));
        // Reported at the second, conflicting head.
        assert_eq!(span_text(src, err.span), "r(X, Y)");
        assert_eq!((err.span.line, err.span.col), (2, 1));
    }

    #[test]
    fn rejects_extensional_head() {
        let src = "q(X) :- e(X, Y).\ne(X, Y) :- e(Y, X).";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::ExtensionalHead);
        assert!(err.message.contains("extensional"));
        assert_eq!(span_text(src, err.span), "e(X, Y)");
        assert_eq!((err.span.line, err.span.col), (2, 1));
    }

    #[test]
    fn rejects_unterminated_statement() {
        let src = "q(X) :- e(X, Y)";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedStatement);
        assert!(err.message.contains("not terminated"));
        assert_eq!(span_text(src, err.span), "q(X) :- e(X, Y)");
        assert_eq!((err.span.line, err.span.col), (1, 1));
    }

    #[test]
    fn rejects_unsafe_rule() {
        let src = "p(X) :- e(X, Y).\nq(X, Y) :- e(X, X).";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnsafeRule);
        assert!(err.message.contains("unsafe"));
        assert_eq!(span_text(src, err.span), "q(X, Y) :- e(X, X)");
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn rejects_empty_atom_after_negation() {
        let src = "q(X) :- e(X, Y), !.";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::EmptyAtom);
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn rejects_missing_close_paren() {
        let src = "q(X :- e(X, Y).";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MissingCloseParen);
        assert_eq!(span_text(src, err.span), "q(X");
        assert_eq!((err.span.line, err.span.col), (1, 1));
    }

    #[test]
    fn rejects_empty_argument() {
        let src = "q(X) :- e(X, ).";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::EmptyArgument);
        assert_eq!(span_text(src, err.span), "e(X, )");
        assert_eq!((err.span.line, err.span.col), (1, 9));
    }

    #[test]
    fn rejects_invalid_identifier() {
        let src = "q(X) :- e(X, a-b).";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::InvalidIdentifier);
        assert_eq!(span_text(src, err.span), "a-b");
        assert_eq!((err.span.line, err.span.col), (1, 14));
    }

    #[test]
    fn rejects_empty_literal() {
        let src = "q(X) :- e(X, Y), , e(Y, X).";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::EmptyLiteral);
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn accepts_stratified_negated_idb() {
        let s = tiny_structure();
        let p = parse_program("q(X) :- e(X, Y), !r(X). r(X) :- e(X, X).", &s).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(!p.rules[0].body[1].positive);
        assert!(matches!(
            p.rules[0].body[1].atom.pred,
            PredRef::Idb(IdbId(1))
        ));
        // Still not semipositive — the stratum-local invariant fails on
        // the whole program.
        assert!(p.check_semipositive().is_err());
    }

    #[test]
    fn rejects_negative_dependency_cycle() {
        let src = "p(X) :- e(X, Y), !q(X).\nq(X) :- e(X, Y), !p(X).";
        let s = tiny_structure();
        let err = parse_program(src, &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Unstratifiable);
        assert!(err.message.contains("recursive component"), "{err}");
        assert!(err.message.contains('p') && err.message.contains('q'));
        // The span points at the offending rule, not "line 0".
        assert!(err.span.is_known());
        assert!(span_text(src, err.span).starts_with("p(X)"));
    }

    #[test]
    fn lenient_mode_admits_strict_rejections() {
        let s = tiny_structure();
        // Unsafe rule.
        let p = parse_program_lenient("q(X, Y) :- e(X, X).", &s).unwrap();
        assert!(!p.rules[0].is_safe());
        // Extensional head.
        let p = parse_program_lenient("e(X, Y) :- e(Y, X).", &s).unwrap();
        assert!(matches!(p.rules[0].head.pred, PredRef::Edb(_)));
        assert_eq!(p.idb_count(), 0);
        // Negative cycle.
        let p =
            parse_program_lenient("p(X) :- e(X, Y), !q(X). q(X) :- e(X, Y), !p(X).", &s).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(stratify(&p).is_err());
        // Syntax errors are still fatal.
        let err = parse_program_lenient("q(X) :- e(X, ).", &s).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::EmptyArgument);
    }

    #[test]
    fn three_negation_spellings_parse_identically() {
        let s = tiny_structure();
        let base = "r(X) :- e(X, X). q(X) :- e(X, Y), {}r(X).";
        let programs: Vec<_> = ["!", "! ", "\u{ac}", "\u{ac} ", "not "]
            .iter()
            .map(|neg| parse_program(&base.replace("{}", neg), &s).unwrap())
            .collect();
        for p in &programs {
            assert_eq!(p.rules.len(), 2);
            assert_eq!(p.rules[1].body.len(), 2);
            assert!(!p.rules[1].body[1].positive);
            assert_eq!(p.rules[1].body[1].atom, programs[0].rules[1].body[1].atom);
        }
    }

    #[test]
    fn not_prefix_without_space_is_a_predicate_name() {
        let s = tiny_structure();
        // `notable` and `not_yet` are ordinary (positive) predicates.
        let p = parse_program("notable(X) :- e(X, Y). q(X) :- notable(X).", &s).unwrap();
        assert!(p.idb("notable").is_some());
        assert!(p.rules[1].body[0].positive);
    }

    #[test]
    fn rejects_negated_head_atom_with_span() {
        let s = tiny_structure();
        for neg in ["!", "\u{ac}", "not "] {
            let src = format!("q(X) :- e(X, Y).\n{neg}r(X) :- e(X, X).");
            let err = parse_program(&src, &s).unwrap_err();
            assert_eq!(err.kind, ParseErrorKind::NegatedHead, "spelling {neg:?}");
            assert_eq!(err.line(), 2, "spelling {neg:?}");
            assert_eq!(err.span.col, 1, "spelling {neg:?}");
            assert!(err.message.contains("negated head"), "{err}");
            assert_eq!(span_text(&src, err.span), format!("{neg}r(X)").trim_end());
        }
    }
}
