//! Resource governance for evaluation: budgets, deadlines, cancellation.
//!
//! Every fixpoint loop in the engine is potentially unbounded in the size
//! of its output — a hostile (or merely large) program can spin
//! [`Evaluator::evaluate`](crate::evaluator::Evaluator::evaluate) for
//! arbitrarily long, and the semantic-optimizer paths of
//! [`transform`](crate::transform) run *nested* evaluations whose worst
//! case is exponential. [`EvalLimits`] puts an enforced ceiling on all of
//! them: attach limits via
//! [`EvalOptions::limits`](crate::evaluator::EvalOptions::limits) and the
//! engines check them at amortized checkpoints (every few thousand
//! tuples considered, every fixpoint round, every stratum). A tripped limit surfaces as
//! [`EvalError::LimitExceeded`](crate::evaluator::EvalError::LimitExceeded)
//! carrying the work counters and — when the engine can guarantee
//! soundness — a *partial* result: the facts materialized so far, always
//! a subset of the full least fixpoint.
//!
//! # Shared meters
//!
//! An `EvalLimits` value owns a **meter**: the running totals of fuel
//! spent, facts derived, rounds executed and checkpoints passed. Clones
//! share the meter, so handing clones of one `EvalLimits` to several
//! evaluations makes them draw from a single budget — this is how the
//! optimizer's nested containment probes are governed by the same fuel as
//! the session that spawned them. [`EvalLimits::fresh`] copies the
//! configuration with a new, zeroed meter.
//!
//! ```
//! use mdtw_datalog::{EvalLimits, EvalError, EvalOptions, Evaluator, parse_program};
//! use mdtw_structure::{Domain, ElemId, Signature, Structure};
//! use std::sync::Arc;
//!
//! // A transitive-closure chain: n rounds to close, Θ(n²) facts.
//! let sig = Arc::new(Signature::from_pairs([("e", 2)]));
//! let mut s = Structure::new(Arc::clone(&sig), Domain::anonymous(64));
//! let e = sig.lookup("e").unwrap();
//! for i in 0..63u32 {
//!     s.insert(e, &[ElemId(i), ElemId(i + 1)]);
//! }
//! let p = parse_program(
//!     "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).",
//!     &s,
//! ).unwrap();
//!
//! let limits = EvalLimits::new().max_rounds(3);
//! let mut session =
//!     Evaluator::with_options(p, EvalOptions::new().limits(limits)).unwrap();
//! match session.evaluate(&s) {
//!     Err(EvalError::LimitExceeded { kind, stats, partial }) => {
//!         assert_eq!(kind, mdtw_datalog::LimitKind::Rounds);
//!         assert!(stats.rounds <= 4);
//!         // Graceful degradation: the partial store is a sound subset
//!         // of the full fixpoint (every fact in it is truly derivable).
//!         let partial = partial.expect("fixpoint engines return partials");
//!         assert!(partial.store.fact_count() > 0);
//!     }
//!     other => panic!("expected a limit trip, got {other:?}"),
//! }
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A cloneable cooperative cancellation handle (an `Arc<AtomicBool>`).
///
/// Hand one clone to [`EvalLimits::cancel_token`] and keep another; calling
/// [`CancelToken::cancel`] from any thread makes every evaluation governed
/// by those limits stop at its next checkpoint with
/// [`LimitKind::Cancelled`]. Cancellation is cooperative: the engine
/// notices at checkpoint granularity, not instantly.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Which resource limit an evaluation tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// [`EvalLimits::max_rounds`] — too many fixpoint rounds.
    Rounds,
    /// [`EvalLimits::max_derived_facts`] — too many derived facts.
    Facts,
    /// [`EvalLimits::deadline`] — the wall-clock deadline passed.
    Deadline,
    /// [`EvalLimits::fuel`] — the fuel budget ran out.
    Fuel,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The deterministic [`EvalLimits::trip_after_checks`] fault-injection
    /// hook fired (testing only).
    Injected,
}

impl LimitKind {
    /// A stable lowercase label (`"rounds"`, `"deadline"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            LimitKind::Rounds => "rounds",
            LimitKind::Facts => "facts",
            LimitKind::Deadline => "deadline",
            LimitKind::Fuel => "fuel",
            LimitKind::Cancelled => "cancelled",
            LimitKind::Injected => "injected",
        }
    }
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The shared running totals behind an [`EvalLimits`]. All clones of one
/// `EvalLimits` point at the same meter.
#[derive(Debug, Default)]
struct MeterState {
    /// Fuel units spent (1 unit ≈ one candidate tuple considered by a
    /// join, or one guard instantiation in the quasi-guarded pipeline).
    fuel_spent: AtomicU64,
    /// Facts derived (distinct tuples inserted into an IDB store).
    facts_derived: AtomicU64,
    /// Fixpoint rounds executed.
    rounds: AtomicU64,
    /// Checkpoints passed (round checks + amortized work checks).
    checks: AtomicU64,
    /// Stamped at the first checkpoint; deadline measures from here.
    started: OnceLock<Instant>,
}

/// Resource limits for evaluation, with a shared meter (see the
/// [module docs](self)). All limits are optional and compose; the default
/// value enforces nothing but still meters work (fuel spent, checkpoint
/// count), which costs one compare per candidate tuple plus a few atomic
/// adds every few thousand tuples.
///
/// Limits are **cumulative across everything sharing the meter**: all
/// strata of one evaluation, repeated `evaluate` calls on the same
/// session, and every nested evaluation the optimizer spawns. Use
/// [`EvalLimits::fresh`] to reuse a configuration with a zeroed meter.
#[derive(Debug, Clone, Default)]
pub struct EvalLimits {
    max_rounds: Option<u64>,
    max_derived_facts: Option<u64>,
    deadline: Option<Duration>,
    fuel: Option<u64>,
    trip_after: Option<u64>,
    cancel: Option<CancelToken>,
    meter: Arc<MeterState>,
}

impl EvalLimits {
    /// No limits enforced (metering only). Chain builders to add limits:
    ///
    /// ```
    /// use mdtw_datalog::EvalLimits;
    /// use std::time::Duration;
    ///
    /// let limits = EvalLimits::new()
    ///     .max_rounds(10_000)
    ///     .max_derived_facts(1_000_000)
    ///     .deadline(Duration::from_millis(250))
    ///     .fuel(50_000_000);
    /// assert!(limits.is_governed());
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the total number of fixpoint rounds (summed over strata and
    /// everything else sharing the meter).
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = Some(rounds as u64);
        self
    }

    /// Caps the total number of derived facts. Enforced at checkpoint
    /// granularity: the evaluation stops at the first checkpoint *after*
    /// the cap is crossed, so the partial result may hold slightly more
    /// facts than the cap.
    pub fn max_derived_facts(mut self, facts: usize) -> Self {
        self.max_derived_facts = Some(facts as u64);
        self
    }

    /// Wall-clock budget, measured from the first checkpoint any governed
    /// evaluation passes (so an idle session does not burn its deadline).
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Caps fuel: 1 unit ≈ one candidate tuple considered by a join (or
    /// one guard instantiation in the quasi-guarded pipeline). Fuel is
    /// the deterministic, machine-independent twin of
    /// [`EvalLimits::deadline`].
    pub fn fuel(mut self, units: u64) -> Self {
        self.fuel = Some(units);
        self
    }

    /// Attaches a cooperative [`CancelToken`]; keep a clone and call
    /// [`CancelToken::cancel`] to stop the evaluation at its next
    /// checkpoint.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Deterministic fault injection: trip with [`LimitKind::Injected`]
    /// at the `n`-th checkpoint (1-based; `0` behaves like `1`). Always
    /// compiled, intended for tests — sweeping `n` over
    /// [`EvalLimits::checks_spent`] of an untripped run exercises every
    /// trip point of an evaluation.
    pub fn trip_after_checks(mut self, n: u64) -> Self {
        self.trip_after = Some(n);
        self
    }

    /// The same configuration with a **new, zeroed meter** — unlike
    /// `clone()`, which shares the meter (and therefore the budget).
    pub fn fresh(&self) -> Self {
        EvalLimits {
            meter: Arc::new(MeterState::default()),
            ..self.clone()
        }
    }

    /// True when at least one limit is configured (the default value
    /// meters but never trips).
    pub fn is_governed(&self) -> bool {
        self.max_rounds.is_some()
            || self.max_derived_facts.is_some()
            || self.deadline.is_some()
            || self.fuel.is_some()
            || self.trip_after.is_some()
            || self.cancel.is_some()
    }

    /// Fuel units spent so far by everything sharing this meter.
    pub fn fuel_spent(&self) -> u64 {
        self.meter.fuel_spent.load(Ordering::Relaxed)
    }

    /// Checkpoints passed so far by everything sharing this meter — the
    /// sweep bound for [`EvalLimits::trip_after_checks`].
    pub fn checks_spent(&self) -> u64 {
        self.meter.checks.load(Ordering::Relaxed)
    }

    /// Facts derived so far by everything sharing this meter (charged at
    /// checkpoint granularity).
    pub fn facts_derived(&self) -> u64 {
        self.meter.facts_derived.load(Ordering::Relaxed)
    }
}

/// The per-engine-run governor: borrows an optional [`EvalLimits`] and
/// answers "should this run stop?" at two kinds of checkpoint.
///
/// * [`Governor::work`] — the hot-path check, called with the run's
///   monotone work counter (tuples considered). Costs one compare until
///   the counter crosses `next_check`, then runs a full checkpoint and
///   re-arms `CHECK_INTERVAL` further on.
/// * [`Governor::round`] — called once per fixpoint round (and per
///   stratum); always a full checkpoint.
///
/// A full checkpoint charges the work/fact deltas since the last one to
/// the shared meter and evaluates every configured limit. Once tripped,
/// the governor stays tripped; engines unwind and return their partial
/// store.
#[derive(Debug)]
pub(crate) struct Governor<'a> {
    limits: Option<&'a EvalLimits>,
    next_check: usize,
    charged_work: u64,
    charged_facts: u64,
    tripped: Option<LimitKind>,
}

/// Tuples considered between amortized hot-path checkpoints.
const CHECK_INTERVAL: usize = 4096;

impl<'a> Governor<'a> {
    /// A governor for one engine run. `None` disables every check (the
    /// hot path is a single always-false compare).
    pub(crate) fn new(limits: Option<&'a EvalLimits>) -> Self {
        Governor {
            limits,
            next_check: if limits.is_some() {
                CHECK_INTERVAL
            } else {
                usize::MAX
            },
            charged_work: 0,
            charged_facts: 0,
            tripped: None,
        }
    }

    /// The hot-path amortized check. `work_done` must be monotone over
    /// this governor's lifetime (a run's `tuples_considered`).
    #[inline]
    pub(crate) fn work(&mut self, work_done: usize, facts: usize) -> bool {
        if work_done < self.next_check {
            return false;
        }
        self.next_check = work_done.saturating_add(CHECK_INTERVAL);
        self.checkpoint(work_done, facts)
    }

    /// The per-round / per-stratum check; counts a fixpoint round.
    pub(crate) fn round(&mut self, work_done: usize, facts: usize) -> bool {
        let Some(limits) = self.limits else {
            return false;
        };
        limits.meter.rounds.fetch_add(1, Ordering::Relaxed);
        self.checkpoint(work_done, facts)
    }

    /// The limit this governor tripped on, if any.
    pub(crate) fn tripped(&self) -> Option<LimitKind> {
        self.tripped
    }

    /// Full checkpoint: charge deltas to the meter, evaluate every limit.
    fn checkpoint(&mut self, work_done: usize, facts: usize) -> bool {
        if self.tripped.is_some() {
            return true;
        }
        let Some(limits) = self.limits else {
            return false;
        };
        let meter = &*limits.meter;
        let checks = meter.checks.fetch_add(1, Ordering::Relaxed) + 1;
        let delta_work = (work_done as u64).saturating_sub(self.charged_work);
        self.charged_work = work_done as u64;
        let fuel_spent = meter.fuel_spent.fetch_add(delta_work, Ordering::Relaxed) + delta_work;
        let delta_facts = (facts as u64).saturating_sub(self.charged_facts);
        self.charged_facts = facts as u64;
        let facts_total = meter
            .facts_derived
            .fetch_add(delta_facts, Ordering::Relaxed)
            + delta_facts;

        self.tripped = if limits.trip_after.is_some_and(|n| checks >= n.max(1)) {
            Some(LimitKind::Injected)
        } else if limits
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
        {
            Some(LimitKind::Cancelled)
        } else if limits
            .max_rounds
            .is_some_and(|n| meter.rounds.load(Ordering::Relaxed) > n)
        {
            Some(LimitKind::Rounds)
        } else if limits.max_derived_facts.is_some_and(|n| facts_total > n) {
            Some(LimitKind::Facts)
        } else if limits.fuel.is_some_and(|n| fuel_spent > n) {
            Some(LimitKind::Fuel)
        } else if limits
            .deadline
            .is_some_and(|d| meter.started.get_or_init(Instant::now).elapsed() > d)
        {
            Some(LimitKind::Deadline)
        } else {
            None
        };
        self.tripped.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungoverned_governor_never_checks() {
        let mut gov = Governor::new(None);
        assert!(!gov.work(usize::MAX - 1, 0));
        assert!(!gov.round(10, 10));
        assert_eq!(gov.tripped(), None);
    }

    #[test]
    fn default_limits_meter_without_tripping() {
        let limits = EvalLimits::new();
        assert!(!limits.is_governed());
        let mut gov = Governor::new(Some(&limits));
        for step in 1..10usize {
            assert!(!gov.round(step * 10_000, step));
        }
        assert_eq!(limits.fuel_spent(), 90_000);
        assert_eq!(limits.facts_derived(), 9);
        assert_eq!(limits.checks_spent(), 9);
    }

    #[test]
    fn clones_share_the_meter_and_fresh_detaches() {
        let limits = EvalLimits::new().fuel(100);
        let shared = limits.clone();
        let mut gov = Governor::new(Some(&shared));
        assert!(!gov.round(60, 0));
        // A second governor on the original: the meter already holds 60,
        // so another 60 trips the shared 100-unit budget.
        let mut gov2 = Governor::new(Some(&limits));
        assert!(gov2.round(60, 0));
        assert_eq!(gov2.tripped(), Some(LimitKind::Fuel));
        // fresh() starts from zero.
        let detached = limits.fresh();
        let mut gov3 = Governor::new(Some(&detached));
        assert!(!gov3.round(60, 0));
        assert_eq!(detached.fuel_spent(), 60);
        assert_eq!(limits.fuel_spent(), 120);
    }

    #[test]
    fn work_check_is_amortized() {
        let limits = EvalLimits::new().fuel(1_000_000);
        let mut gov = Governor::new(Some(&limits));
        // Below the interval: no checkpoint, nothing charged.
        assert!(!gov.work(CHECK_INTERVAL - 1, 0));
        assert_eq!(limits.checks_spent(), 0);
        // Crossing it: one checkpoint, re-armed one interval later.
        assert!(!gov.work(CHECK_INTERVAL, 0));
        assert_eq!(limits.checks_spent(), 1);
        assert!(!gov.work(CHECK_INTERVAL + 1, 0));
        assert_eq!(limits.checks_spent(), 1);
        assert!(!gov.work(2 * CHECK_INTERVAL, 0));
        assert_eq!(limits.checks_spent(), 2);
        assert_eq!(limits.fuel_spent(), 2 * CHECK_INTERVAL as u64);
    }

    #[test]
    fn each_limit_kind_trips() {
        let rounds = EvalLimits::new().max_rounds(2);
        let mut gov = Governor::new(Some(&rounds));
        assert!(!gov.round(0, 0));
        assert!(!gov.round(0, 0));
        assert!(gov.round(0, 0));
        assert_eq!(gov.tripped(), Some(LimitKind::Rounds));

        let facts = EvalLimits::new().max_derived_facts(5);
        let mut gov = Governor::new(Some(&facts));
        assert!(!gov.round(0, 5));
        assert!(gov.round(0, 6));
        assert_eq!(gov.tripped(), Some(LimitKind::Facts));

        let fuel = EvalLimits::new().fuel(10);
        let mut gov = Governor::new(Some(&fuel));
        assert!(gov.round(11, 0));
        assert_eq!(gov.tripped(), Some(LimitKind::Fuel));

        let deadline = EvalLimits::new().deadline(Duration::ZERO);
        let mut gov = Governor::new(Some(&deadline));
        // First checkpoint stamps the start; elapsed is still > 0ns by
        // the time it is compared, so a zero deadline trips immediately.
        std::thread::sleep(Duration::from_millis(1));
        assert!(gov.round(0, 0) || gov.round(0, 0));
        assert_eq!(gov.tripped(), Some(LimitKind::Deadline));

        let token = CancelToken::new();
        let cancel = EvalLimits::new().cancel_token(token.clone());
        let mut gov = Governor::new(Some(&cancel));
        assert!(!gov.round(0, 0));
        token.cancel();
        assert!(token.is_cancelled());
        assert!(gov.round(0, 0));
        assert_eq!(gov.tripped(), Some(LimitKind::Cancelled));

        let injected = EvalLimits::new().trip_after_checks(3);
        let mut gov = Governor::new(Some(&injected));
        assert!(!gov.round(0, 0));
        assert!(!gov.round(0, 0));
        assert!(gov.round(0, 0));
        assert_eq!(gov.tripped(), Some(LimitKind::Injected));
    }

    #[test]
    fn tripped_governor_stays_tripped() {
        let limits = EvalLimits::new().trip_after_checks(1);
        let mut gov = Governor::new(Some(&limits));
        assert!(gov.round(0, 0));
        assert!(gov.round(0, 0));
        assert!(gov.work(usize::MAX - 1, 0));
        assert_eq!(gov.tripped(), Some(LimitKind::Injected));
    }

    #[test]
    fn limit_kind_labels_are_stable() {
        for (kind, label) in [
            (LimitKind::Rounds, "rounds"),
            (LimitKind::Facts, "facts"),
            (LimitKind::Deadline, "deadline"),
            (LimitKind::Fuel, "fuel"),
            (LimitKind::Cancelled, "cancelled"),
            (LimitKind::Injected, "injected"),
        ] {
            assert_eq!(kind.as_str(), label);
            assert_eq!(kind.to_string(), label);
        }
    }
}
