//! Linear-time evaluation of ground (propositional) datalog.
//!
//! The paper (§2.4, fact (1)) relies on the classical result that
//! propositional Horn programs are solvable in linear time
//! (Dowling–Gallier \[7\], Minoux's LTUR \[27\]). This module implements the
//! counter-based LTUR algorithm: each rule keeps a count of unsatisfied
//! body atoms; deriving an atom decrements the counters of all rules
//! watching it; a counter hitting zero derives the rule's head. Every rule
//! and every body occurrence is touched O(1) times.

/// A ground Horn rule `head ← body` over interned atom ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HornRule {
    /// Head atom id.
    pub head: u32,
    /// Body atom ids (possibly empty: a fact).
    pub body: Vec<u32>,
}

/// A ground Horn program over atoms `0..n_atoms`.
#[derive(Debug, Clone, Default)]
pub struct HornProgram {
    /// Number of distinct atoms.
    pub n_atoms: usize,
    /// The rules.
    pub rules: Vec<HornRule>,
}

impl HornProgram {
    /// Total size (atoms occurring in all rules) — the `|P′|` of the
    /// paper's Theorem 4.4 proof.
    pub fn size(&self) -> usize {
        self.rules.iter().map(|r| 1 + r.body.len()).sum()
    }

    /// Computes the least model in time linear in [`size`](Self::size).
    /// Returns one boolean per atom id.
    pub fn least_model(&self) -> Vec<bool> {
        let mut truth = vec![false; self.n_atoms];
        // counter[r]: number of body atoms of rule r not yet derived.
        let mut counter: Vec<u32> = self.rules.iter().map(|r| r.body.len() as u32).collect();
        // watch[a]: indices of rules with a in the body (one entry per
        // occurrence, so duplicate body atoms decrement correctly).
        let mut watch: Vec<Vec<u32>> = vec![Vec::new(); self.n_atoms];
        for (ri, rule) in self.rules.iter().enumerate() {
            for &a in &rule.body {
                watch[a as usize].push(ri as u32);
            }
        }
        let mut queue: Vec<u32> = Vec::new();
        for (ri, rule) in self.rules.iter().enumerate() {
            if counter[ri] == 0 && !truth[rule.head as usize] {
                truth[rule.head as usize] = true;
                queue.push(rule.head);
            }
        }
        while let Some(a) = queue.pop() {
            for &ri in &watch[a as usize] {
                let ri = ri as usize;
                counter[ri] -= 1;
                if counter[ri] == 0 {
                    let h = self.rules[ri].head;
                    if !truth[h as usize] {
                        truth[h as usize] = true;
                        queue.push(h);
                    }
                }
            }
        }
        truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(head: u32, body: &[u32]) -> HornRule {
        HornRule {
            head,
            body: body.to_vec(),
        }
    }

    #[test]
    fn chain_of_implications() {
        let p = HornProgram {
            n_atoms: 5,
            rules: vec![
                rule(0, &[]),
                rule(1, &[0]),
                rule(2, &[1]),
                rule(3, &[2]),
                // 4 is not derivable.
                rule(4, &[3, 4]),
            ],
        };
        let m = p.least_model();
        assert_eq!(m, vec![true, true, true, true, false]);
    }

    #[test]
    fn conjunction_requires_all_atoms() {
        let p = HornProgram {
            n_atoms: 4,
            rules: vec![
                rule(0, &[]),
                rule(1, &[]),
                rule(2, &[0, 1]),
                rule(3, &[0, 2]),
            ],
        };
        let m = p.least_model();
        assert!(m.iter().all(|&b| b));
    }

    #[test]
    fn duplicate_body_atoms_count_twice() {
        // head ← a, a: must still fire once a is derived.
        let p = HornProgram {
            n_atoms: 2,
            rules: vec![rule(0, &[]), rule(1, &[0, 0])],
        };
        assert_eq!(p.least_model(), vec![true, true]);
    }

    #[test]
    fn cyclic_rules_do_not_self_support() {
        // a ← b; b ← a: neither derivable.
        let p = HornProgram {
            n_atoms: 2,
            rules: vec![rule(0, &[1]), rule(1, &[0])],
        };
        assert_eq!(p.least_model(), vec![false, false]);
    }

    #[test]
    fn empty_program() {
        let p = HornProgram {
            n_atoms: 0,
            rules: vec![],
        };
        assert!(p.least_model().is_empty());
    }

    #[test]
    fn least_model_is_minimal_vs_bruteforce() {
        // Compare against a naive fixpoint on a small random-ish program.
        let p = HornProgram {
            n_atoms: 6,
            rules: vec![
                rule(2, &[0, 1]),
                rule(3, &[2]),
                rule(0, &[]),
                rule(4, &[3, 5]),
                rule(1, &[0]),
                rule(5, &[4]),
            ],
        };
        let fast = p.least_model();
        let mut slow = vec![false; 6];
        loop {
            let mut changed = false;
            for r in &p.rules {
                if r.body.iter().all(|&a| slow[a as usize]) && !slow[r.head as usize] {
                    slow[r.head as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        assert_eq!(fast, slow);
    }
}
