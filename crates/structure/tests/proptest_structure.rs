//! Property-based tests for the basic structure invariants.

use mdtw_structure::{Domain, ElemId, Signature, Structure};
use proptest::prelude::*;
use std::sync::Arc;

/// A strategy producing a random binary-relation structure on `n` elements.
fn arb_structure(max_n: usize) -> impl Strategy<Value = (Structure, Vec<(u32, u32)>)> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(n * n).min(64));
        pairs.prop_map(move |edges| {
            let sig = Arc::new(Signature::from_pairs([("e", 2)]));
            let dom = Domain::anonymous(n);
            let mut s = Structure::new(sig, dom);
            let e = s.signature().lookup("e").unwrap();
            for &(x, y) in &edges {
                s.insert(e, &[ElemId(x), ElemId(y)]);
            }
            (s, edges)
        })
    })
}

proptest! {
    #[test]
    fn inserted_atoms_hold((s, edges) in arb_structure(12)) {
        let e = s.signature().lookup("e").unwrap();
        for (x, y) in edges {
            prop_assert!(s.holds(e, &[ElemId(x), ElemId(y)]));
        }
    }

    #[test]
    fn atom_count_matches_dedup((s, edges) in arb_structure(12)) {
        let mut uniq: Vec<(u32, u32)> = edges;
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(s.atom_count(), uniq.len());
    }

    #[test]
    fn induced_substructure_is_monotone((s, _) in arb_structure(12)) {
        // Keeping everything reproduces the structure; keeping half keeps
        // only atoms fully inside the half.
        let e = s.signature().lookup("e").unwrap();
        let all = s.induced(&|_| true);
        prop_assert_eq!(all.len(), s.domain().len());
        let half = s.induced(&|x: ElemId| x.0.is_multiple_of(2));
        for t in s.relation(e).iter() {
            let inside = t.iter().all(|a| a.0 % 2 == 0);
            prop_assert_eq!(half.holds(e, t), inside);
        }
    }

    #[test]
    fn materialized_induced_preserves_atoms((s, _) in arb_structure(10)) {
        let e = s.signature().lookup("e").unwrap();
        let view = s.induced(&|x: ElemId| x.0.is_multiple_of(2));
        let (owned, map) = view.materialize();
        let mut expected = 0usize;
        for t in s.relation(e).iter() {
            if t.iter().all(|a| a.0 % 2 == 0) {
                expected += 1;
                let mapped: Vec<ElemId> = t.iter().map(|a| map[a]).collect();
                prop_assert!(owned.holds(e, &mapped));
            }
        }
        prop_assert_eq!(owned.atom_count(), expected);
    }

    #[test]
    fn bag_equivalence_is_reflexive((s, _) in arb_structure(8)) {
        let n = s.domain().len() as u32;
        let bag: Vec<ElemId> = (0..n.min(3)).map(ElemId).collect();
        prop_assert!(s.bags_equivalent(&bag, &s, &bag));
    }
}
