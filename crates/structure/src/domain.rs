//! Interned domains: the universe `A = dom(𝒜)` of a finite structure.

use crate::fx::FxHashMap;
use std::fmt;

/// Identifier of a domain element.
///
/// Elements are interned integers; the display name is kept in the
/// [`Domain`] for rendering and parsing only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElemId(pub u32);

impl ElemId {
    /// The index of this element inside its domain.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A finite domain with named, interned elements.
#[derive(Debug, Clone, Default)]
pub struct Domain {
    names: Vec<String>,
    by_name: FxHashMap<String, ElemId>,
}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a domain with elements named by the given iterator.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut d = Self::new();
        for n in names {
            d.insert(n);
        }
        d
    }

    /// Creates an anonymous domain of `n` elements named `x0..x{n-1}`.
    pub fn anonymous(n: usize) -> Self {
        Self::from_names((0..n).map(|i| format!("x{i}")))
    }

    /// Interns a new element.
    ///
    /// # Panics
    /// Panics if the name is already present.
    pub fn insert(&mut self, name: impl Into<String>) -> ElemId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "domain element `{name}` inserted twice"
        );
        let id = ElemId(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    /// Interns `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: impl Into<String>) -> ElemId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        self.insert(name)
    }

    /// Looks an element up by name.
    pub fn lookup(&self, name: &str) -> Option<ElemId> {
        self.by_name.get(name).copied()
    }

    /// The display name of an element.
    #[inline]
    pub fn name(&self, elem: ElemId) -> &str {
        &self.names[elem.index()]
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all elements in insertion order.
    pub fn elems(&self) -> impl Iterator<Item = ElemId> + '_ {
        (0..self.names.len() as u32).map(ElemId)
    }

    /// True if `elem` belongs to this domain.
    #[inline]
    pub fn contains(&self, elem: ElemId) -> bool {
        elem.index() < self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut d = Domain::new();
        let a = d.insert("a");
        let b = d.insert("b");
        assert_eq!(d.lookup("a"), Some(a));
        assert_eq!(d.lookup("b"), Some(b));
        assert_eq!(d.name(a), "a");
        assert_eq!(d.len(), 2);
        assert!(d.contains(a));
        assert!(!d.contains(ElemId(7)));
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = Domain::new();
        let a1 = d.intern("a");
        let a2 = d.intern("a");
        assert_eq!(a1, a2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_insert_panics() {
        let mut d = Domain::new();
        d.insert("a");
        d.insert("a");
    }

    #[test]
    fn anonymous_domain() {
        let d = Domain::anonymous(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.name(ElemId(2)), "x2");
        assert_eq!(d.elems().count(), 3);
    }
}
