//! # mdtw-structure
//!
//! Finite relational structures (τ-structures) for the *Monadic Datalog over
//! Finite Structures with Bounded Treewidth* reproduction (Gottlob, Pichler
//! & Wei, PODS 2007).
//!
//! A τ-structure 𝒜 (paper §2.2) is a finite domain `A` together with one
//! relation `R^𝒜 ⊆ A^α` per predicate symbol `R ∈ τ`. This crate provides:
//!
//! * [`Signature`] — the predicate vocabulary τ,
//! * [`Domain`] / [`ElemId`] — interned universes,
//! * [`Structure`] — the structure itself, with EDB-style atom iteration,
//! * [`Relation`] / [`PosIndex`] — arena-backed tuple sets addressed by
//!   `u32` row ids, with lazily built, cached secondary hash indexes by
//!   argument positions (the probe targets of the indexed join engine in
//!   `mdtw-datalog`). Tuples live in one flat `Vec<ElemId>` per relation
//!   and every map is keyed by integers, so inserts, membership tests and
//!   index probes do zero per-tuple heap allocation (see [`Relation`]'s
//!   docs for the representation),
//! * [`InducedStructure`] — induced substructures (Definition 3.2),
//! * [`fx`] — a small fast hasher used across the workspace.
//!
//! Everything downstream (tree decompositions, datalog, MSO, the solvers of
//! paper §5) is built on these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod fx;
pub mod signature;
#[allow(clippy::module_inception)]
mod structure;

pub use domain::{Domain, ElemId};
pub use signature::{PredId, Signature};
pub use structure::{GroundAtom, InducedStructure, PosIndex, Relation, Structure};
