//! Finite τ-structures: a domain plus one relation per predicate symbol.
//!
//! # Tuple representation: arenas and row ids
//!
//! A [`Relation`] of arity α stores its tuples in one flat `Vec<ElemId>`
//! *arena*: the tuple with row id `r` occupies cells `r·α .. (r+1)·α`.
//! Tuples are never boxed individually; every internal map is keyed by
//! integers:
//!
//! * deduplication uses an open-addressing [`RowTable`] whose slots hold
//!   row ids — membership hashes the probe tuple's `u32` element ids and
//!   compares against the arena in place, allocating nothing;
//! * a secondary index ([`PosIndex`]) maps the values at fixed argument
//!   positions to row buckets. Keys are not materialized either: a
//!   single-position key hashes the `ElemId` directly, a multi-position
//!   key hashes the packed sequence of `u32` ids, and collisions are
//!   resolved by comparing the probe key with the key positions of a
//!   bucket's representative row in the arena.
//!
//! Rows are *swap-remove compact*: [`Relation::insert`] appends, and
//! [`Relation::retract`] removes a row by moving the last row into its
//! slot (backward-shift deletion keeps the [`RowTable`] tombstone-free,
//! and every cached [`PosIndex`] is patched in place), so row ids stay
//! dense. An `Arc<PosIndex>` snapshot taken before an *insert* remains a
//! consistent view of the pre-insert relation (see
//! [`Relation::index_on`]); a retract — like [`Relation::clear`] —
//! invalidates held snapshots, because the swap renumbers a row id.
//! Every mutation of the tuple set bumps [`Relation::generation`], so
//! incremental consumers can detect churn without diffing contents.
//!
//! A [`Structure`] holds its relations behind `Arc`s shared
//! copy-on-write: cloning or [extending](Structure::extended) a structure
//! bumps one reference count per predicate, reads and duplicate inserts
//! never un-share, and the first genuine write deep-copies only the
//! written relation. This makes `Structure::extended` (the stratified
//! evaluator's materialization substrate) linear in the number of *new*
//! predicates — while a bare [`Relation`] (the evaluators' delta/staging
//! stores) stays a plain value with no per-insert atomics.

use crate::domain::{Domain, ElemId};
use crate::fx::{FxHashMap, FxHasher};
use crate::signature::{PredId, Signature};
use std::fmt;
use std::hash::Hasher;
use std::sync::{Arc, RwLock};

/// A ground atom `R(a₁, …, a_α)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundAtom {
    /// The predicate symbol.
    pub pred: PredId,
    /// The argument tuple.
    pub args: Box<[ElemId]>,
}

impl GroundAtom {
    /// Creates a ground atom.
    pub fn new(pred: PredId, args: impl Into<Box<[ElemId]>>) -> Self {
        Self {
            pred,
            args: args.into(),
        }
    }
}

/// Hashes a sequence of element ids with the workspace [`FxHasher`]. A
/// one-element sequence hashes the `ElemId` directly; longer sequences
/// fold the packed `u32` ids into the 64-bit hash state — no key is ever
/// materialized on the heap.
#[inline]
fn hash_elems(elems: impl IntoIterator<Item = ElemId>) -> u64 {
    let mut h = FxHasher::default();
    for e in elems {
        h.write_u32(e.0);
    }
    h.finish()
}

/// An open-addressing hash table whose slots hold bare `u32` values (row
/// ids, or bucket ids for [`PosIndex`]). The table stores no keys: callers
/// supply the hash and an equality predicate that compares against the
/// owning relation's arena, so probes and inserts allocate nothing.
#[derive(Debug, Clone, Default)]
struct RowTable {
    /// Power-of-two slot array; `EMPTY` marks a free slot.
    slots: Vec<u32>,
    len: usize,
}

impl RowTable {
    const EMPTY: u32 = u32::MAX;

    /// Finds the stored value matching `hash` + `eq` via linear probing.
    #[inline]
    fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let v = self.slots[i];
            if v == Self::EMPTY {
                return None;
            }
            if eq(v) {
                return Some(v);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a value the caller knows is absent. `rehash` recomputes the
    /// hash of a stored value when the table has to grow.
    fn insert_new(&mut self, hash: u64, value: u32, mut rehash: impl FnMut(u32) -> u64) {
        debug_assert_ne!(value, Self::EMPTY, "u32::MAX is the empty-slot sentinel");
        // Grow at 7/8 occupancy (covers the empty-table case: 0 ≥ 0).
        if self.len * 8 >= self.slots.len() * 7 {
            let new_cap = (self.slots.len() * 2).max(8);
            let mut slots = vec![Self::EMPTY; new_cap];
            for &v in self.slots.iter().filter(|&&v| v != Self::EMPTY) {
                Self::place(&mut slots, rehash(v), v);
            }
            self.slots = slots;
        }
        Self::place(&mut self.slots, hash, value);
        self.len += 1;
    }

    fn place(slots: &mut [u32], hash: u64, value: u32) {
        let mask = slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while slots[i] != Self::EMPTY {
            i = (i + 1) & mask;
        }
        slots[i] = value;
    }

    /// Removes the stored value matching `hash` + `eq`, compacting its
    /// probe chain by backward-shift deletion (no tombstones: each
    /// following value moves into the hole iff the hole lies cyclically
    /// between the value's ideal slot and its current slot, which is
    /// exactly the invariant linear probing needs). `rehash` recomputes
    /// the hash of a stored value during the shift. Returns the removed
    /// value, or `None` if no value matched.
    fn remove(
        &mut self,
        hash: u64,
        mut eq: impl FnMut(u32) -> bool,
        mut rehash: impl FnMut(u32) -> u64,
    ) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut hole = (hash as usize) & mask;
        loop {
            let v = self.slots[hole];
            if v == Self::EMPTY {
                return None;
            }
            if eq(v) {
                break;
            }
            hole = (hole + 1) & mask;
        }
        let removed = self.slots[hole];
        // The table grows at 7/8 occupancy, so an EMPTY slot always
        // terminates the walk.
        let mut j = (hole + 1) & mask;
        loop {
            let v = self.slots[j];
            if v == Self::EMPTY {
                break;
            }
            let ideal = (rehash(v) as usize) & mask;
            if hole.wrapping_sub(ideal) & mask <= j.wrapping_sub(ideal) & mask {
                self.slots[hole] = v;
                hole = j;
            }
            j = (j + 1) & mask;
        }
        self.slots[hole] = Self::EMPTY;
        self.len -= 1;
        Some(removed)
    }

    /// Rewrites the stored value `old` to `new` in place. The caller
    /// guarantees `old` is present and that `new` has the same content —
    /// and therefore the same `hash` — as `old` (the swap-remove row/bucket
    /// renumbering protocol), so the slot itself does not move.
    fn replace(&mut self, hash: u64, old: u32, new: u32) {
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let v = self.slots[i];
            assert_ne!(
                v,
                Self::EMPTY,
                "renumbered value must be in its probe chain"
            );
            if v == old {
                self.slots[i] = new;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn clear(&mut self) {
        // An empty table may still have a large retained capacity (e.g. a
        // recycled delta relation after a round that filled it): skip the
        // slot memset entirely so clearing an already-empty table is O(1)
        // no matter its high-water mark.
        if self.len > 0 {
            self.slots.fill(Self::EMPTY);
            self.len = 0;
        }
    }
}

/// A secondary hash index over a [`Relation`]: maps the values at a fixed
/// set of argument positions (the *key positions*) to the rows of every
/// tuple carrying those values. Built lazily by [`Relation::index_on`] and
/// kept current by [`Relation::insert`], so join engines can probe
/// `R(…, a, …)` without scanning `R`.
///
/// Keys are integers all the way down: the hash of a key is the packed
/// hash of its `u32` element ids and the index stores only row buckets —
/// a probe key is compared against the key positions of a bucket's
/// representative row in the relation's arena. Because the comparison
/// needs the arena, lookups go through [`Relation::rows_matching`] /
/// [`Relation::matching`] rather than the index alone.
#[derive(Debug, Clone, Default)]
pub struct PosIndex {
    positions: Box<[usize]>,
    /// Maps key hashes to indices into `buckets`.
    table: RowTable,
    /// Rows sharing a key, in first-seen key order.
    buckets: Vec<Vec<u32>>,
}

impl PosIndex {
    /// The indexed argument positions, in key order.
    #[inline]
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates over the row buckets (one per distinct key, in first-seen
    /// key order). Used for selectivity estimates and uniqueness checks;
    /// resolve rows with [`Relation::tuple`].
    pub fn buckets(&self) -> impl Iterator<Item = &[u32]> {
        self.buckets.iter().map(Vec::as_slice)
    }

    /// The key values of `row` in `arena`, as an id iterator.
    #[inline]
    fn key_of_row<'a>(
        &'a self,
        arena: &'a [ElemId],
        arity: usize,
        row: u32,
    ) -> impl Iterator<Item = ElemId> + 'a {
        let base = row as usize * arity;
        self.positions.iter().map(move |&p| arena[base + p])
    }

    /// Rows whose key equals `key` (empty if none). `arena`/`arity` must
    /// come from the owning relation.
    #[inline]
    fn rows_in<'i>(&'i self, arena: &[ElemId], arity: usize, key: &[ElemId]) -> &'i [u32] {
        debug_assert_eq!(key.len(), self.positions.len());
        let hash = hash_elems(key.iter().copied());
        self.table
            .find(hash, |b| {
                self.key_of_row(arena, arity, self.buckets[b as usize][0])
                    .eq(key.iter().copied())
            })
            .map_or(&[], |b| self.buckets[b as usize].as_slice())
    }

    /// Registers `row` (whose tuple lives at `row·arity` in `arena`).
    fn add(&mut self, arena: &[ElemId], arity: usize, row: u32) {
        let hash = hash_elems(self.key_of_row(arena, arity, row));
        let row_base = row as usize * arity;
        let found = self.table.find(hash, |b| {
            let base = self.buckets[b as usize][0] as usize * arity;
            self.positions
                .iter()
                .all(|&p| arena[base + p] == arena[row_base + p])
        });
        match found {
            Some(b) => self.buckets[b as usize].push(row),
            None => {
                let b = self.buckets.len() as u32;
                self.buckets.push(vec![row]);
                let (buckets, positions) = (&self.buckets, &self.positions);
                self.table.insert_new(hash, b, |bb| {
                    let base = buckets[bb as usize][0] as usize * arity;
                    hash_elems(positions.iter().map(|&p| arena[base + p]))
                });
            }
        }
    }

    /// Unregisters `row` and renumbers `last` to `row` — the arena
    /// swap-remove protocol of [`Relation::retract`]. Must run *before*
    /// the arena move: both rows' key cells are read from the pre-move
    /// `arena`. Any bucket member works as its representative (they all
    /// share the key), so removing a representative needs no special case;
    /// an emptied bucket is itself swap-removed, with the moved bucket's
    /// table entry renumbered in place.
    fn remove_row(&mut self, arena: &[ElemId], arity: usize, row: u32, last: u32) {
        let hash = hash_elems(self.key_of_row(arena, arity, row));
        let row_base = row as usize * arity;
        let b = self
            .table
            .find(hash, |b| {
                let base = self.buckets[b as usize][0] as usize * arity;
                self.positions
                    .iter()
                    .all(|&p| arena[base + p] == arena[row_base + p])
            })
            .expect("retracted row is indexed");
        let bucket = &mut self.buckets[b as usize];
        let pos = bucket
            .iter()
            .position(|&r| r == row)
            .expect("retracted row is in its key bucket");
        bucket.swap_remove(pos);
        if self.buckets[b as usize].is_empty() {
            let (buckets, positions) = (&self.buckets, &self.positions);
            self.table.remove(
                hash,
                |bb| bb == b,
                |bb| {
                    let base = buckets[bb as usize][0] as usize * arity;
                    hash_elems(positions.iter().map(|&p| arena[base + p]))
                },
            );
            let moved = (self.buckets.len() - 1) as u32;
            self.buckets.swap_remove(b as usize);
            if b != moved {
                // Bucket `moved` now lives at index `b`: patch its entry.
                let mhash = hash_elems(self.key_of_row(arena, arity, self.buckets[b as usize][0]));
                self.table.replace(mhash, moved, b);
            }
        }
        if row != last {
            // The arena swap renames row id `last` to `row`.
            let lhash = hash_elems(self.key_of_row(arena, arity, last));
            let last_base = last as usize * arity;
            let lb = self
                .table
                .find(lhash, |bb| {
                    let base = self.buckets[bb as usize][0] as usize * arity;
                    self.positions
                        .iter()
                        .all(|&p| arena[base + p] == arena[last_base + p])
                })
                .expect("surviving row is indexed");
            let bucket = &mut self.buckets[lb as usize];
            let pos = bucket
                .iter()
                .position(|&r| r == last)
                .expect("surviving row is in its key bucket");
            bucket[pos] = row;
        }
    }
}

/// One relation `R^𝒜 ⊆ A^α`: a deduplicated set of tuples with stable
/// insertion order (order matters for reproducible iteration), plus a
/// cache of lazily built secondary indexes keyed by argument positions.
///
/// Tuples live in a flat arena addressed by `u32` row ids (see the module
/// docs); no per-tuple heap allocation happens on insert, membership
/// tests, or index probes. A `Relation` is a plain value — the
/// evaluators' delta/staging/IDB stores own theirs outright, so the hot
/// derive path performs no atomic operations. Sharing happens one level
/// up: a [`Structure`] holds `Arc<Relation>`s and copies a relation only
/// on its first write ([`Structure::extended`], `Structure::clone`).
#[derive(Debug, Default)]
pub struct Relation {
    arity: usize,
    /// Number of rows (kept separately: `arena.len()/arity` is undefined
    /// for zero-ary relations).
    rows: usize,
    /// Flat tuple storage: row `r` occupies cells `r·arity..(r+1)·arity`.
    arena: Vec<ElemId>,
    /// Deduplication table mapping tuple content to row ids.
    table: RowTable,
    /// Bumped by every mutation of the tuple set (see
    /// [`Relation::generation`]).
    generation: u64,
    /// Secondary indexes by key positions. Behind a lock so `index_on`
    /// can build and cache through `&self` (probes happen mid-join, where
    /// the relation is shared); `Arc` so probers hold the index without
    /// holding the lock — and so deep-cloning a relation copies only
    /// `Arc` handles, deferring each index copy until it is touched.
    secondary: RwLock<FxHashMap<Box<[usize]>, Arc<PosIndex>>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Self {
            arity: self.arity,
            rows: self.rows,
            arena: self.arena.clone(),
            table: self.table.clone(),
            generation: self.generation,
            secondary: RwLock::new(self.secondary.read().expect("index cache lock").clone()),
        }
    }
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            ..Self::default()
        }
    }

    /// The arity of the relation.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// True if `self` and `other` are the *same* relation object — i.e.
    /// two structures hand out the same `Arc`'d allocation because one is
    /// a copy-on-write clone/extension of the other with no intervening
    /// write to this predicate. This is the observable that pins
    /// [`Structure::extended`] to O(#new predicates).
    #[inline]
    pub fn shares_storage(&self, other: &Relation) -> bool {
        std::ptr::eq(self, other)
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple length differs from the relation arity.
    #[inline]
    pub fn insert(&mut self, tuple: &[ElemId]) -> bool {
        self.insert_row(tuple).1
    }

    /// Inserts a tuple, returning its row id and whether it was new.
    ///
    /// # Panics
    /// Panics if the tuple length differs from the relation arity.
    pub fn insert_row(&mut self, tuple: &[ElemId]) -> (u32, bool) {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity mismatch: got {}, relation has arity {}",
            tuple.len(),
            self.arity
        );
        let hash = hash_elems(tuple.iter().copied());
        let (arena, arity) = (&self.arena, self.arity);
        if let Some(row) = self
            .table
            .find(hash, |r| &arena[r as usize * arity..][..arity] == tuple)
        {
            return (row, false);
        }
        let row = self.rows as u32;
        self.arena.extend_from_slice(tuple);
        self.rows += 1;
        let (arena, arity) = (&self.arena, self.arity);
        self.table.insert_new(hash, row, |r| {
            hash_elems(arena[r as usize * arity..][..arity].iter().copied())
        });
        // Keep cached secondary indexes current so they never have to be
        // rebuilt. `make_mut` copies only if a prober still holds the Arc
        // (it then keeps a consistent snapshot of the pre-insert relation).
        for idx in self
            .secondary
            .get_mut()
            .expect("index cache lock")
            .values_mut()
        {
            Arc::make_mut(idx).add(arena, arity, row);
        }
        self.generation += 1;
        (row, true)
    }

    /// Removes a tuple; returns `true` if it was present.
    ///
    /// The removed row is filled by *swap-remove*: the last row's cells
    /// move into its arena slot, the dedup-table entry is deleted
    /// by backward-shift (no tombstones) and the moved row's entry is
    /// renumbered, and every cached secondary index is patched the same
    /// way — so cached indexes stay warm across retractions. Row ids
    /// remain dense, but the *identity* of the last row changes; unlike
    /// inserts, a retract therefore invalidates `Arc<PosIndex>` snapshots
    /// taken earlier (the same caveat as [`Relation::clear`]).
    ///
    /// # Panics
    /// Panics if the tuple length differs from the relation arity.
    pub fn retract(&mut self, tuple: &[ElemId]) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity mismatch: got {}, relation has arity {}",
            tuple.len(),
            self.arity
        );
        let hash = hash_elems(tuple.iter().copied());
        let (arena, arity) = (&self.arena, self.arity);
        let Some(row) = self
            .table
            .find(hash, |r| &arena[r as usize * arity..][..arity] == tuple)
        else {
            return false;
        };
        let last = (self.rows - 1) as u32;
        // Indexes first: they read both rows' key cells from the pre-move
        // arena.
        for idx in self
            .secondary
            .get_mut()
            .expect("index cache lock")
            .values_mut()
        {
            Arc::make_mut(idx).remove_row(arena, arity, row, last);
        }
        self.table.remove(
            hash,
            |r| r == row,
            |r| hash_elems(arena[r as usize * arity..][..arity].iter().copied()),
        );
        if row != last {
            let last_hash =
                hash_elems(self.arena[last as usize * arity..][..arity].iter().copied());
            let (rb, lb) = (row as usize * arity, last as usize * arity);
            for k in 0..arity {
                self.arena[rb + k] = self.arena[lb + k];
            }
            self.table.replace(last_hash, last, row);
        }
        self.arena.truncate(self.arena.len() - arity);
        self.rows -= 1;
        self.generation += 1;
        true
    }

    /// A counter bumped by every mutation of the tuple set (each new
    /// insert, each successful retract, each non-empty
    /// [`clear`](Relation::clear)). Incremental consumers use it to detect
    /// relation churn without diffing contents; it survives deep clones,
    /// so a copy-on-write holder observes its source's history.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Membership test. Hashes the probe tuple's element ids and compares
    /// against the arena; allocates nothing.
    #[inline]
    pub fn contains(&self, tuple: &[ElemId]) -> bool {
        self.row_of(tuple).is_some()
    }

    /// The row id of `tuple` if present.
    #[inline]
    pub fn row_of(&self, tuple: &[ElemId]) -> Option<u32> {
        debug_assert_eq!(tuple.len(), self.arity);
        let (arena, arity) = (&self.arena, self.arity);
        self.table.find(hash_elems(tuple.iter().copied()), |r| {
            &arena[r as usize * arity..][..arity] == tuple
        })
    }

    /// Iterates over tuples in insertion (row) order.
    pub fn iter(&self) -> impl Iterator<Item = &[ElemId]> {
        (0..self.rows as u32).map(|r| self.tuple(r))
    }

    /// The tuple stored at `row` (rows come from [`Relation::rows_matching`]).
    #[inline]
    pub fn tuple(&self, row: u32) -> &[ElemId] {
        &self.arena[row as usize * self.arity..][..self.arity]
    }

    /// Removes all tuples and drops every cached secondary index (their
    /// row ids would dangle). Capacity is retained, so a cleared relation
    /// can be refilled without reallocating — the semi-naive evaluator
    /// recycles its per-round delta relations this way (and clearing an
    /// already-empty relation is O(1) regardless of retained capacity).
    pub fn clear(&mut self) {
        if self.rows > 0 {
            self.generation += 1;
        }
        self.rows = 0;
        self.arena.clear();
        self.table.clear();
        self.secondary.get_mut().expect("index cache lock").clear();
    }

    /// The secondary index keyed by `positions`, built on first request
    /// and cached (subsequent calls are a lock + hash lookup). Positions
    /// must be distinct and `< arity`.
    ///
    /// # Panics
    /// Panics if a position is out of range or `positions` is empty.
    pub fn index_on(&self, positions: &[usize]) -> Arc<PosIndex> {
        assert!(!positions.is_empty(), "index on zero positions is a scan");
        for &p in positions {
            assert!(
                p < self.arity,
                "index position {p} out of arity {}",
                self.arity
            );
        }
        if let Some(idx) = self
            .secondary
            .read()
            .expect("index cache lock")
            .get(positions)
        {
            return Arc::clone(idx);
        }
        let mut cache = self.secondary.write().expect("index cache lock");
        // Re-check: another prober may have built it between the locks.
        if let Some(idx) = cache.get(positions) {
            return Arc::clone(idx);
        }
        let mut idx = PosIndex {
            positions: positions.into(),
            ..PosIndex::default()
        };
        for row in 0..self.rows as u32 {
            idx.add(&self.arena, self.arity, row);
        }
        let idx = Arc::new(idx);
        cache.insert(positions.into(), Arc::clone(&idx));
        idx
    }

    /// Rows of all tuples whose values at `index`'s key positions equal
    /// `key` (empty if none). The slice borrows from `index`, so an
    /// `Arc<PosIndex>` snapshot keeps serving its pre-insert rows.
    #[inline]
    pub fn rows_matching<'i>(&self, index: &'i PosIndex, key: &[ElemId]) -> &'i [u32] {
        index.rows_in(&self.arena, self.arity, key)
    }

    /// Number of distinct values at `positions`: the exact
    /// [`PosIndex::key_count`] when the index is already cached, otherwise
    /// a one-shot count that does **not** build or cache an index —
    /// planners can weigh candidate access paths without saddling the
    /// relation with index maintenance for paths they reject. For one or
    /// two positions the count packs keys exactly; for wider keys it
    /// dedups by 64-bit hash, so it is an estimate (a collision
    /// undercounts by one).
    ///
    /// # Panics
    /// Panics if a position is out of range or `positions` is empty.
    pub fn distinct_key_count(&self, positions: &[usize]) -> usize {
        assert!(!positions.is_empty(), "zero positions have a single key");
        for &p in positions {
            assert!(
                p < self.arity,
                "key position {p} out of arity {}",
                self.arity
            );
        }
        if let Some(idx) = self
            .secondary
            .read()
            .expect("index cache lock")
            .get(positions)
        {
            return idx.key_count();
        }
        let arena = &self.arena;
        let mut seen: crate::fx::FxHashSet<u64> = crate::fx::FxHashSet::default();
        for row in 0..self.rows {
            let base = row * self.arity;
            let packed = match positions {
                [p] => u64::from(arena[base + p].0),
                [p, q] => (u64::from(arena[base + p].0) << 32) | u64::from(arena[base + q].0),
                _ => hash_elems(positions.iter().map(|&p| arena[base + p])),
            };
            seen.insert(packed);
        }
        seen.len()
    }

    /// Iterates over the tuples matching `key` on `index`'s positions.
    pub fn matching<'a>(
        &'a self,
        index: &'a PosIndex,
        key: &[ElemId],
    ) -> impl Iterator<Item = &'a [ElemId]> {
        self.rows_matching(index, key)
            .iter()
            .map(move |&r| self.tuple(r))
    }
}

/// A finite structure 𝒜 over a signature τ.
///
/// The signature is shared (`Arc`) because derived structures — induced
/// substructures, decomposition encodings — reuse it unchanged. The
/// relations are shared **copy-on-write**: `clone` and
/// [`extended`](Structure::extended) bump one `Arc` per predicate, and a
/// relation is deep-copied only on its first write through a sharing
/// holder ([`Relation::shares_storage`] observes the sharing). Reads and
/// duplicate inserts never un-share.
#[derive(Debug, Clone)]
pub struct Structure {
    sig: Arc<Signature>,
    domain: Domain,
    relations: Vec<Arc<Relation>>,
}

impl Structure {
    /// Creates a structure with the given signature and domain and all
    /// relations empty.
    pub fn new(sig: Arc<Signature>, domain: Domain) -> Self {
        let relations = sig
            .preds()
            .map(|p| Arc::new(Relation::new(sig.arity(p))))
            .collect();
        Self {
            sig,
            domain,
            relations,
        }
    }

    /// The signature τ.
    #[inline]
    pub fn signature(&self) -> &Arc<Signature> {
        &self.sig
    }

    /// The domain A.
    #[inline]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Mutable access to the domain (used by builders that extend the
    /// universe, e.g. the τ_td encoding which adds tree nodes).
    #[inline]
    pub fn domain_mut(&mut self) -> &mut Domain {
        &mut self.domain
    }

    /// The relation interpreting `pred`.
    #[inline]
    pub fn relation(&self, pred: PredId) -> &Relation {
        &self.relations[pred.index()]
    }

    /// Inserts a ground tuple into `pred`'s relation; returns `true` if new.
    ///
    /// On a relation still shared with a copy-on-write clone, a duplicate
    /// insert is answered by a read-only membership probe, so only a
    /// *genuinely new* tuple deep-copies the relation.
    ///
    /// # Panics
    /// Panics on arity mismatch or if any argument is outside the domain.
    pub fn insert(&mut self, pred: PredId, tuple: &[ElemId]) -> bool {
        for &e in tuple {
            assert!(
                self.domain.contains(e),
                "tuple argument {e} outside the domain"
            );
        }
        let rel = &mut self.relations[pred.index()];
        if Arc::get_mut(rel).is_none() && rel.contains(tuple) {
            return false;
        }
        Arc::make_mut(rel).insert(tuple)
    }

    /// Removes a ground tuple from `pred`'s relation; returns `true` if
    /// it was present ([`Relation::retract`] describes the swap-remove
    /// mechanics).
    ///
    /// Mirrors [`Structure::insert`]'s copy-on-write discipline: on a
    /// relation still shared with a clone, an *absent* tuple is answered
    /// by a read-only membership probe, so only a genuine removal
    /// deep-copies the relation.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn retract(&mut self, pred: PredId, tuple: &[ElemId]) -> bool {
        let rel = &mut self.relations[pred.index()];
        if Arc::get_mut(rel).is_none() && !rel.contains(tuple) {
            return false;
        }
        Arc::make_mut(rel).retract(tuple)
    }

    /// Membership test for a ground atom.
    #[inline]
    pub fn holds(&self, pred: PredId, tuple: &[ElemId]) -> bool {
        self.relations[pred.index()].contains(tuple)
    }

    /// Total number of ground atoms (the size of the EDB `E(𝒜)`).
    pub fn atom_count(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// A rough size measure `|𝒜|`: domain size plus total tuple cells.
    /// This is the `|A|` of the paper's complexity bounds.
    pub fn size(&self) -> usize {
        self.domain.len()
            + self
                .relations
                .iter()
                .map(|r| r.len() * r.arity().max(1))
                .sum::<usize>()
    }

    /// Iterates over all ground atoms of the EDB.
    pub fn atoms(&self) -> impl Iterator<Item = GroundAtom> + '_ {
        self.sig.preds().flat_map(move |p| {
            self.relation(p)
                .iter()
                .map(move |t| GroundAtom::new(p, t.to_vec()))
        })
    }

    /// Renders a ground atom using domain and signature names.
    pub fn render_atom(&self, atom: &GroundAtom) -> String {
        let args: Vec<&str> = atom.args.iter().map(|&e| self.domain.name(e)).collect();
        format!("{}({})", self.sig.name(atom.pred), args.join(","))
    }

    /// A structure over `self`'s signature extended with the fresh
    /// predicates in `extra`: the domain is shared, existing relations
    /// are shared **copy-on-write** (each an `Arc` bump — arena, dedup
    /// table and warm secondary indexes included, so probes stay warm and
    /// extension costs O(#new predicates), not O(|𝒜|)), and the new
    /// relations start empty. Returns the extended structure and the ids
    /// of the new predicates, in `extra` order.
    ///
    /// This is the materialization substrate of the stratified datalog
    /// evaluator: each stratum's derived relations are inserted into the
    /// extension so higher strata read them as ordinary extensional
    /// relations — and since only the *fresh* relations are written, the
    /// base relations are never deep-copied (pinned by
    /// [`Relation::shares_storage`]).
    ///
    /// # Panics
    /// Panics if a name in `extra` collides with an existing predicate.
    pub fn extended<I, S>(&self, extra: I) -> (Structure, Vec<PredId>)
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let sig = self.sig.extend_with(extra);
        // `declare` appends, so the fresh predicates are exactly the ids
        // past the base signature's length.
        let ids: Vec<PredId> = (self.sig.len()..sig.len())
            .map(|i| PredId(i as u32))
            .collect();
        let mut relations = self.relations.clone();
        relations.extend(ids.iter().map(|&id| Arc::new(Relation::new(sig.arity(id)))));
        (
            Structure {
                sig: Arc::new(sig),
                domain: self.domain.clone(),
                relations,
            },
            ids,
        )
    }

    /// Like [`Structure::extended`], but against a *pre-extended* signature
    /// `Arc` — one produced earlier by [`Signature::extend_with`] on this
    /// structure's signature. The existing relations are shared
    /// copy-on-write and one empty relation is appended per extension
    /// predicate; the signature `Arc` itself is reused, so callers that
    /// extend the same structure repeatedly (e.g. a stratified evaluator
    /// session re-evaluating per structure) skip rebuilding the signature
    /// every time.
    ///
    /// # Panics
    /// Panics if `sig` is not an extension of this structure's signature
    /// (fewer predicates, or a mismatched name/arity on the shared prefix).
    pub fn extended_shared(&self, sig: &Arc<Signature>) -> Structure {
        assert!(
            sig.len() >= self.sig.len(),
            "extended signature has fewer predicates than the base"
        );
        for p in self.sig.preds() {
            assert!(
                sig.name(p) == self.sig.name(p) && sig.arity(p) == self.sig.arity(p),
                "signature is not an extension of the structure's signature \
                 (mismatch at predicate `{}`)",
                self.sig.name(p)
            );
        }
        let mut relations = self.relations.clone();
        relations.extend(
            (self.sig.len()..sig.len())
                .map(|i| Arc::new(Relation::new(sig.arity(PredId(i as u32))))),
        );
        Structure {
            sig: Arc::clone(sig),
            domain: self.domain.clone(),
            relations,
        }
    }

    /// The inverse of [`Structure::extended_shared`]: a structure over the
    /// *prefix* signature `sig`, sharing the domain and the first
    /// `sig.len()` relations copy-on-write (each an `Arc` bump) and
    /// dropping the rest. A materialized-view server uses this to recover
    /// the base-signature view of an extended structure — e.g. to hand a
    /// post-update EDB back to a from-scratch evaluation.
    ///
    /// # Panics
    /// Panics if `sig` is not a prefix of this structure's signature
    /// (more predicates, or a mismatched name/arity on the shared prefix).
    pub fn restricted(&self, sig: &Arc<Signature>) -> Structure {
        assert!(
            sig.len() <= self.sig.len(),
            "restriction signature has more predicates than the base"
        );
        for p in sig.preds() {
            assert!(
                sig.name(p) == self.sig.name(p) && sig.arity(p) == self.sig.arity(p),
                "signature is not a prefix of the structure's signature \
                 (mismatch at predicate `{}`)",
                sig.name(p)
            );
        }
        Structure {
            sig: Arc::clone(sig),
            domain: self.domain.clone(),
            relations: self.relations[..sig.len()].to_vec(),
        }
    }

    /// The substructure of `self` induced by the element set `keep`
    /// (Definition 3.2): the domain is restricted to `keep` and a tuple
    /// survives iff all its arguments lie in `keep`.
    ///
    /// Element ids are preserved — the induced structure shares the parent
    /// domain's id space so distinguished tuples remain valid. `keep` is a
    /// membership predicate over the parent domain.
    pub fn induced(&self, keep: &dyn Fn(ElemId) -> bool) -> InducedStructure<'_> {
        let mut live = vec![false; self.domain.len()];
        for e in self.domain.elems() {
            live[e.index()] = keep(e);
        }
        InducedStructure::new(self, live)
    }

    /// Equality of two argument tuples under Definition 3.4: `(a₀,…,a_w)`
    /// and `(b₀,…,b_w)` are *equivalent* iff every predicate holds on
    /// corresponding index patterns simultaneously in `self` and `other`.
    pub fn bags_equivalent(&self, a: &[ElemId], other: &Structure, b: &[ElemId]) -> bool {
        assert_eq!(a.len(), b.len(), "bags of different length");
        debug_assert_eq!(self.sig.len(), other.sig.len());
        let w1 = a.len();
        let mut pattern = Vec::new();
        for p in self.sig.preds() {
            let arity = self.sig.arity(p);
            if arity > 0 && w1 == 0 {
                continue; // no index patterns over an empty tuple
            }
            // Enumerate all index patterns {0..w}^arity.
            pattern.clear();
            pattern.resize(arity, 0usize);
            loop {
                let ta: Vec<ElemId> = pattern.iter().map(|&i| a[i]).collect();
                let tb: Vec<ElemId> = pattern.iter().map(|&i| b[i]).collect();
                if self.holds(p, &ta) != other.holds(p, &tb) {
                    return false;
                }
                // Next pattern (odometer).
                let mut k = 0;
                loop {
                    if k == arity {
                        break;
                    }
                    pattern[k] += 1;
                    if pattern[k] < w1 {
                        break;
                    }
                    pattern[k] = 0;
                    k += 1;
                }
                if k == arity {
                    break;
                }
            }
        }
        true
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "structure with {} elements:", self.domain.len())?;
        for atom in self.atoms() {
            writeln!(f, "  {}", self.render_atom(&atom))?;
        }
        Ok(())
    }
}

/// A view of a structure restricted to a live subset of its domain
/// (the induced substructure of Definition 3.2, without copying tuples).
#[derive(Debug)]
pub struct InducedStructure<'a> {
    parent: &'a Structure,
    live: Vec<bool>,
}

impl<'a> InducedStructure<'a> {
    fn new(parent: &'a Structure, live: Vec<bool>) -> Self {
        Self { parent, live }
    }

    /// True if `e` survives the restriction.
    #[inline]
    pub fn contains_elem(&self, e: ElemId) -> bool {
        self.live.get(e.index()).copied().unwrap_or(false)
    }

    /// The number of surviving elements.
    pub fn len(&self) -> usize {
        self.live.iter().filter(|&&b| b).count()
    }

    /// True if no elements survive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over surviving elements.
    pub fn elems(&self) -> impl Iterator<Item = ElemId> + '_ {
        self.parent
            .domain()
            .elems()
            .filter(move |&e| self.live[e.index()])
    }

    /// Atom membership in the induced structure: all arguments must be live
    /// and the atom must hold in the parent.
    pub fn holds(&self, pred: PredId, tuple: &[ElemId]) -> bool {
        tuple.iter().all(|&e| self.contains_elem(e)) && self.parent.holds(pred, tuple)
    }

    /// Materializes the view as an owned [`Structure`] over a fresh compact
    /// domain. Returns the structure and the map from parent ids to new ids.
    pub fn materialize(&self) -> (Structure, FxHashMap<ElemId, ElemId>) {
        let mut dom = Domain::new();
        let mut map: FxHashMap<ElemId, ElemId> = FxHashMap::default();
        for e in self.elems() {
            let name = self.parent.domain().name(e).to_owned();
            map.insert(e, dom.insert(name));
        }
        let mut s = Structure::new(Arc::clone(self.parent.signature()), dom);
        for p in self.parent.signature().preds() {
            for t in self.parent.relation(p).iter() {
                if t.iter().all(|&e| self.contains_elem(e)) {
                    let mapped: Vec<ElemId> = t.iter().map(|e| map[e]).collect();
                    s.insert(p, &mapped);
                }
            }
        }
        (s, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_sig() -> Arc<Signature> {
        Arc::new(Signature::from_pairs([("e", 2)]))
    }

    fn triangle() -> (Structure, Vec<ElemId>) {
        let sig = graph_sig();
        let mut dom = Domain::new();
        let v: Vec<ElemId> = ["a", "b", "c"].iter().map(|n| dom.insert(*n)).collect();
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        for (x, y) in [(0, 1), (1, 2), (2, 0)] {
            s.insert(e, &[v[x], v[y]]);
            s.insert(e, &[v[y], v[x]]);
        }
        (s, v)
    }

    #[test]
    fn insert_and_holds() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        assert!(s.holds(e, &[v[0], v[1]]));
        assert!(s.holds(e, &[v[1], v[0]]));
        assert!(!s.holds(e, &[v[0], v[0]]));
        assert_eq!(s.atom_count(), 6);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let (mut s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        assert!(!s.insert(e, &[v[0], v[1]]));
        assert_eq!(s.atom_count(), 6);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let (mut s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        s.insert(e, &[v[0]]);
    }

    #[test]
    fn induced_substructure_drops_crossing_tuples() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let keep = |x: ElemId| x == v[0] || x == v[1];
        let ind = s.induced(&keep);
        assert_eq!(ind.len(), 2);
        assert!(ind.holds(e, &[v[0], v[1]]));
        assert!(!ind.holds(e, &[v[1], v[2]]));
        let (owned, map) = ind.materialize();
        assert_eq!(owned.domain().len(), 2);
        assert_eq!(owned.atom_count(), 2);
        assert!(owned.holds(e, &[map[&v[0]], map[&v[1]]]));
    }

    #[test]
    fn extended_structure_shares_tuples_and_adds_empty_relations() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let _ = s.relation(e).index_on(&[0]); // warm an index pre-extension
        let (mut ext, ids) = s.extended([("reach", 1)]);
        let reach = ids[0];
        assert_eq!(ext.signature().len(), 2);
        assert_eq!(ext.signature().name(reach), "reach");
        // Existing tuples (and their indexes) survive the extension.
        assert!(ext.holds(e, &[v[0], v[1]]));
        assert_eq!(ext.atom_count(), 6);
        let idx = ext.relation(e).index_on(&[0]);
        assert_eq!(ext.relation(e).rows_matching(&idx, &[v[0]]).len(), 2);
        // The new relation starts empty and accepts inserts.
        assert!(ext.relation(reach).is_empty());
        assert!(ext.insert(reach, &[v[2]]));
        assert!(ext.holds(reach, &[v[2]]));
        // The original structure is untouched.
        assert_eq!(s.signature().len(), 1);
        assert_eq!(s.atom_count(), 6);
    }

    #[test]
    fn atoms_iterates_everything() {
        let (s, _) = triangle();
        assert_eq!(s.atoms().count(), 6);
        let rendered: Vec<String> = s.atoms().map(|a| s.render_atom(&a)).collect();
        assert!(rendered.contains(&"e(a,b)".to_string()));
    }

    #[test]
    fn bag_equivalence_definition_3_4() {
        // Two structures; bags equivalent iff same atoms on index patterns.
        let (s1, v1) = triangle();
        let (s2, v2) = triangle();
        assert!(s1.bags_equivalent(&[v1[0], v1[1]], &s2, &[v2[1], v2[2]]));
        // Remove one direction of an edge in a copy: no longer equivalent.
        let sig = graph_sig();
        let mut dom = Domain::new();
        let a = dom.insert("a");
        let b = dom.insert("b");
        let mut s3 = Structure::new(sig, dom);
        let e = s3.signature().lookup("e").unwrap();
        s3.insert(e, &[a, b]);
        assert!(!s1.bags_equivalent(&[v1[0], v1[1]], &s3, &[a, b]));
        assert!(!s3.bags_equivalent(&[a, b], &s3, &[b, a]));
    }

    #[test]
    fn size_counts_domain_and_cells() {
        let (s, _) = triangle();
        assert_eq!(s.size(), 3 + 6 * 2);
    }

    #[test]
    fn secondary_index_probes_match_scan() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let rel = s.relation(e);
        let idx = rel.index_on(&[0]);
        for &src in &v {
            let probed: Vec<&[ElemId]> = rel.matching(&idx, &[src]).collect();
            let scanned: Vec<&[ElemId]> = rel.iter().filter(|t| t[0] == src).collect();
            assert_eq!(probed, scanned);
        }
        assert_eq!(rel.rows_matching(&idx, &[v[0]]).len(), 2);
        assert_eq!(idx.key_count(), 3);
        assert_eq!(idx.buckets().map(<[u32]>::len).sum::<usize>(), rel.len());
    }

    #[test]
    fn secondary_index_is_cached_and_maintained_on_insert() {
        let (mut s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let before = s.relation(e).index_on(&[1]);
        // Same positions → same cached index object.
        assert!(Arc::ptr_eq(&before, &s.relation(e).index_on(&[1])));
        // Insert a new tuple: the cached index must see it.
        s.insert(e, &[v[0], v[0]]);
        let rel = s.relation(e);
        let after = rel.index_on(&[1]);
        assert_eq!(rel.rows_matching(&after, &[v[0]]).len(), 3);
        let hits: Vec<&[ElemId]> = rel.matching(&after, &[v[0]]).collect();
        assert!(hits.contains(&&[v[0], v[0]][..]));
        // The pre-insert Arc still held by the caller is a consistent
        // snapshot of the old relation contents (rows are append-only).
        assert_eq!(rel.rows_matching(&before, &[v[0]]).len(), 2);
    }

    #[test]
    fn multi_position_index() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let rel = s.relation(e);
        let idx = rel.index_on(&[0, 1]);
        assert_eq!(rel.rows_matching(&idx, &[v[0], v[1]]).len(), 1);
        assert_eq!(rel.rows_matching(&idx, &[v[0], v[0]]).len(), 0);
    }

    #[test]
    fn cloned_relation_keeps_index_cache_consistent() {
        let (mut s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let _ = s.relation(e).index_on(&[0]);
        let cloned = s.clone();
        s.insert(e, &[v[0], v[0]]);
        // The clone is unaffected by the original's insert.
        let crel = cloned.relation(e);
        let cidx = crel.index_on(&[0]);
        assert_eq!(crel.rows_matching(&cidx, &[v[0]]).len(), 2);
        let rel = s.relation(e);
        let idx = rel.index_on(&[0]);
        assert_eq!(rel.rows_matching(&idx, &[v[0]]).len(), 3);
    }

    #[test]
    fn row_ids_are_stable_and_dense() {
        let mut rel = Relation::new(2);
        let (r0, fresh0) = rel.insert_row(&[ElemId(4), ElemId(5)]);
        let (r1, fresh1) = rel.insert_row(&[ElemId(5), ElemId(4)]);
        assert!(fresh0 && fresh1);
        assert_eq!((r0, r1), (0, 1));
        // Re-inserting an existing tuple returns its original row.
        let (again, fresh) = rel.insert_row(&[ElemId(4), ElemId(5)]);
        assert_eq!(again, r0);
        assert!(!fresh);
        assert_eq!(rel.tuple(r0), &[ElemId(4), ElemId(5)]);
        // Rows are dense 0..len, matching iteration order.
        for (i, t) in rel.iter().enumerate() {
            assert_eq!(rel.row_of(t), Some(i as u32));
        }
    }

    #[test]
    fn clear_resets_rows_and_drops_indexes() {
        let mut rel = Relation::new(2);
        for i in 0..100u32 {
            rel.insert(&[ElemId(i), ElemId(i % 7)]);
        }
        let idx = rel.index_on(&[1]);
        assert_eq!(idx.key_count(), 7);
        rel.clear();
        assert!(rel.is_empty());
        assert!(!rel.contains(&[ElemId(3), ElemId(3)]));
        // Refilling after clear rebuilds dedup and indexes from scratch.
        rel.insert(&[ElemId(1), ElemId(2)]);
        rel.insert(&[ElemId(1), ElemId(2)]);
        assert_eq!(rel.len(), 1);
        let idx = rel.index_on(&[1]);
        assert_eq!(rel.rows_matching(&idx, &[ElemId(2)]), &[0]);
    }

    #[test]
    fn zero_ary_relation_holds_one_empty_tuple() {
        let mut rel = Relation::new(0);
        assert!(!rel.contains(&[]));
        assert!(rel.insert(&[]));
        assert!(!rel.insert(&[]));
        assert!(rel.contains(&[]));
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.iter().collect::<Vec<_>>(), vec![&[] as &[ElemId]]);
    }

    #[test]
    fn distinct_key_count_matches_index_key_count() {
        let (s, _) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let rel = s.relation(e);
        // One-shot counts (no index built yet): 3 sources, 6 edges.
        assert_eq!(rel.distinct_key_count(&[0]), 3);
        assert_eq!(rel.distinct_key_count(&[1]), 3);
        assert_eq!(rel.distinct_key_count(&[0, 1]), 6);
        // Once an index exists, the exact key_count is served.
        let idx = rel.index_on(&[0]);
        assert_eq!(rel.distinct_key_count(&[0]), idx.key_count());
    }

    #[test]
    fn dedup_survives_table_growth() {
        // Enough tuples to force several RowTable growths; every duplicate
        // insert must still be detected after rehashing.
        let mut rel = Relation::new(2);
        for i in 0..5_000u32 {
            assert!(rel.insert(&[ElemId(i), ElemId(i.wrapping_mul(31) % 997)]));
        }
        assert_eq!(rel.len(), 5_000);
        for i in 0..5_000u32 {
            assert!(!rel.insert(&[ElemId(i), ElemId(i.wrapping_mul(31) % 997)]));
            assert!(rel.contains(&[ElemId(i), ElemId(i.wrapping_mul(31) % 997)]));
        }
        assert_eq!(rel.len(), 5_000);
    }

    #[test]
    #[should_panic(expected = "out of arity")]
    fn index_position_out_of_range_panics() {
        let (s, _) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let _ = s.relation(e).index_on(&[2]);
    }

    #[test]
    fn extended_structure_shares_base_relations_copy_on_write() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let _ = s.relation(e).index_on(&[0]); // warm an index pre-extension
        let (mut ext, ids) = s.extended([("reach", 1)]);
        // Extension must not deep-copy the untouched base relation.
        assert!(ext.relation(e).shares_storage(s.relation(e)));
        // Reads and index probes leave the sharing intact.
        let idx = ext.relation(e).index_on(&[0]);
        assert_eq!(ext.relation(e).rows_matching(&idx, &[v[0]]).len(), 2);
        assert!(ext.holds(e, &[v[1], v[2]]));
        assert!(ext.relation(e).shares_storage(s.relation(e)));
        // Writing only the fresh relation keeps the base shared.
        assert!(ext.insert(ids[0], &[v[2]]));
        assert!(ext.relation(e).shares_storage(s.relation(e)));
        // The first write to the base relation un-shares exactly it.
        ext.insert(e, &[v[0], v[0]]);
        assert!(!ext.relation(e).shares_storage(s.relation(e)));
        assert!(ext.holds(e, &[v[0], v[0]]));
        assert!(!s.holds(e, &[v[0], v[0]]), "original untouched");
        assert_eq!(s.atom_count(), 6);
    }

    #[test]
    fn duplicate_insert_does_not_unshare() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let (mut ext, _) = s.extended([("reach", 1)]);
        assert!(!ext.insert(e, &[v[0], v[1]]), "already present");
        assert!(
            ext.relation(e).shares_storage(s.relation(e)),
            "a duplicate insert is a read and must not deep-copy"
        );
    }

    #[test]
    fn cloned_structure_shares_until_first_write() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let mut copy = s.clone();
        assert!(copy.relation(e).shares_storage(s.relation(e)));
        // The first genuine write un-shares; the original keeps its rows.
        copy.insert(e, &[v[0], v[0]]);
        assert!(!copy.relation(e).shares_storage(s.relation(e)));
        assert!(copy.holds(e, &[v[0], v[0]]));
        assert!(!s.holds(e, &[v[0], v[0]]));
        assert_eq!(s.atom_count(), 6);
        assert_eq!(copy.atom_count(), 7);
    }

    #[test]
    fn retract_swaps_last_row_in_and_stays_deduplicated() {
        let mut rel = Relation::new(2);
        for i in 0..5u32 {
            rel.insert(&[ElemId(i), ElemId(i + 10)]);
        }
        // Retract a middle row: the last row (4, 14) must move into slot 1.
        assert!(rel.retract(&[ElemId(1), ElemId(11)]));
        assert_eq!(rel.len(), 4);
        assert!(!rel.contains(&[ElemId(1), ElemId(11)]));
        assert_eq!(rel.tuple(1), &[ElemId(4), ElemId(14)]);
        assert_eq!(rel.row_of(&[ElemId(4), ElemId(14)]), Some(1));
        // Retracting the (new) last row needs no swap.
        assert!(rel.retract(&[ElemId(3), ElemId(13)]));
        assert_eq!(rel.len(), 3);
        // An absent tuple is a no-op, and the retracted tuples reinsert
        // as genuinely new rows.
        assert!(!rel.retract(&[ElemId(1), ElemId(11)]));
        assert!(rel.insert(&[ElemId(1), ElemId(11)]));
        assert_eq!(rel.len(), 4);
        for (i, t) in rel.iter().enumerate() {
            assert_eq!(rel.row_of(t), Some(i as u32), "row ids stay dense");
        }
    }

    #[test]
    fn retract_maintains_cached_secondary_indexes() {
        let mut rel = Relation::new(2);
        for i in 0..30u32 {
            rel.insert(&[ElemId(i), ElemId(i % 3)]);
        }
        let _ = rel.index_on(&[1]);
        let _ = rel.index_on(&[0]);
        // Remove every tuple with key 1 on position 1, one by one.
        for i in (0..30u32).filter(|i| i % 3 == 1) {
            assert!(rel.retract(&[ElemId(i), ElemId(1)]));
        }
        let idx = rel.index_on(&[1]);
        assert_eq!(rel.rows_matching(&idx, &[ElemId(1)]).len(), 0);
        assert_eq!(idx.key_count(), 2, "emptied key bucket is dropped");
        for key in [0u32, 2] {
            // Renumbering perturbs bucket order relative to row order, so
            // compare the probe and the scan as sets.
            let mut probed: Vec<Vec<ElemId>> = rel
                .matching(&idx, &[ElemId(key)])
                .map(<[ElemId]>::to_vec)
                .collect();
            let mut scanned: Vec<Vec<ElemId>> = rel
                .iter()
                .filter(|t| t[1] == ElemId(key))
                .map(<[ElemId]>::to_vec)
                .collect();
            probed.sort();
            scanned.sort();
            assert_eq!(probed, scanned);
        }
        let by0 = rel.index_on(&[0]);
        for t in rel.iter() {
            assert_eq!(rel.rows_matching(&by0, &[t[0]]).len(), 1);
        }
        assert_eq!(by0.buckets().map(<[u32]>::len).sum::<usize>(), rel.len());
    }

    #[test]
    fn retract_survives_table_growth_and_refill() {
        // Interleave enough churn to exercise backward-shift deletion
        // across several RowTable growths.
        let mut rel = Relation::new(2);
        for i in 0..2_000u32 {
            assert!(rel.insert(&[ElemId(i), ElemId(i.wrapping_mul(31) % 97)]));
        }
        for i in (0..2_000u32).step_by(2) {
            assert!(rel.retract(&[ElemId(i), ElemId(i.wrapping_mul(31) % 97)]));
        }
        assert_eq!(rel.len(), 1_000);
        for i in 0..2_000u32 {
            let tuple = [ElemId(i), ElemId(i.wrapping_mul(31) % 97)];
            assert_eq!(rel.contains(&tuple), i % 2 == 1, "tuple {i}");
            assert_eq!(rel.insert(&tuple), i % 2 == 0, "reinsert {i}");
        }
        assert_eq!(rel.len(), 2_000);
    }

    #[test]
    fn zero_ary_retract() {
        let mut rel = Relation::new(0);
        assert!(!rel.retract(&[]));
        assert!(rel.insert(&[]));
        assert!(rel.retract(&[]));
        assert!(rel.is_empty());
        assert!(!rel.contains(&[]));
        assert!(rel.insert(&[]));
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn generation_counts_tuple_set_mutations() {
        let mut rel = Relation::new(1);
        assert_eq!(rel.generation(), 0);
        rel.insert(&[ElemId(1)]);
        rel.insert(&[ElemId(1)]); // duplicate: no mutation
        assert_eq!(rel.generation(), 1);
        rel.retract(&[ElemId(7)]); // absent: no mutation
        assert_eq!(rel.generation(), 1);
        rel.retract(&[ElemId(1)]);
        assert_eq!(rel.generation(), 2);
        rel.clear(); // already empty: no mutation
        assert_eq!(rel.generation(), 2);
        rel.insert(&[ElemId(2)]);
        rel.clear();
        assert_eq!(rel.generation(), 4);
        assert_eq!(rel.clone().generation(), 4, "clones keep the history");
    }

    #[test]
    fn structure_retract_is_copy_on_write() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let mut copy = s.clone();
        // Retracting an absent tuple is a read: sharing stays intact.
        assert!(!copy.retract(e, &[v[0], v[0]]));
        assert!(copy.relation(e).shares_storage(s.relation(e)));
        // A genuine retract un-shares exactly the written relation.
        assert!(copy.retract(e, &[v[0], v[1]]));
        assert!(!copy.relation(e).shares_storage(s.relation(e)));
        assert!(!copy.holds(e, &[v[0], v[1]]));
        assert!(s.holds(e, &[v[0], v[1]]), "original untouched");
        assert_eq!(s.atom_count(), 6);
        assert_eq!(copy.atom_count(), 5);
    }

    #[test]
    fn restricted_is_the_inverse_of_extended_shared() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let ext_sig = Arc::new(s.signature().extend_with([("reach", 1)]));
        let mut ext = s.extended_shared(&ext_sig);
        let reach = ext.signature().lookup("reach").unwrap();
        ext.insert(reach, &[v[0]]);
        let base = ext.restricted(s.signature());
        assert!(Arc::ptr_eq(base.signature(), s.signature()));
        assert_eq!(base.signature().len(), 1);
        assert_eq!(base.atom_count(), 6);
        assert!(
            base.relation(e).shares_storage(ext.relation(e)),
            "restriction shares the prefix relations copy-on-write"
        );
    }

    #[test]
    #[should_panic(expected = "not a prefix")]
    fn restricted_rejects_non_prefix_signatures() {
        let (s, _) = triangle();
        let other = Arc::new(Signature::from_pairs([("f", 2)]));
        let _ = s.restricted(&other);
    }

    #[test]
    fn indexes_built_through_either_holder_serve_shared_rows() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let (ext, _) = s.extended([("reach", 1)]);
        // Build the index through the extension only: the shared core
        // caches it, so the base structure's probes are warm too.
        let idx = ext.relation(e).index_on(&[1]);
        assert_eq!(s.relation(e).rows_matching(&idx, &[v[1]]).len(), 2);
        assert!(ext.relation(e).shares_storage(s.relation(e)));
    }
}
