//! Finite τ-structures: a domain plus one relation per predicate symbol.

use crate::domain::{Domain, ElemId};
use crate::fx::FxHashMap;
use crate::signature::{PredId, Signature};
use std::fmt;
use std::sync::{Arc, RwLock};

/// A ground atom `R(a₁, …, a_α)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundAtom {
    /// The predicate symbol.
    pub pred: PredId,
    /// The argument tuple.
    pub args: Box<[ElemId]>,
}

impl GroundAtom {
    /// Creates a ground atom.
    pub fn new(pred: PredId, args: impl Into<Box<[ElemId]>>) -> Self {
        Self {
            pred,
            args: args.into(),
        }
    }
}

/// A secondary hash index over a [`Relation`]: maps the values at a fixed
/// set of argument positions (the *key positions*) to the rows of every
/// tuple carrying those values. Built lazily by [`Relation::index_on`] and
/// kept current by [`Relation::insert`], so join engines can probe
/// `R(…, a, …)` without scanning `R`.
#[derive(Debug, Clone, Default)]
pub struct PosIndex {
    positions: Box<[usize]>,
    map: FxHashMap<Box<[ElemId]>, Vec<u32>>,
}

impl PosIndex {
    /// The indexed argument positions, in key order.
    #[inline]
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Rows of all tuples whose key-position values equal `key`
    /// (empty if none). Resolve rows with [`Relation::tuple`].
    #[inline]
    pub fn rows(&self, key: &[ElemId]) -> &[u32] {
        debug_assert_eq!(key.len(), self.positions.len());
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    fn add(&mut self, row: u32, tuple: &[ElemId]) {
        let key: Box<[ElemId]> = self.positions.iter().map(|&p| tuple[p]).collect();
        self.map.entry(key).or_default().push(row);
    }
}

/// One relation `R^𝒜 ⊆ A^α`: a deduplicated set of tuples with stable
/// insertion order (order matters for reproducible iteration), plus a
/// cache of lazily built secondary indexes keyed by argument positions.
#[derive(Debug, Default)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Box<[ElemId]>>,
    index: FxHashMap<Box<[ElemId]>, u32>,
    /// Secondary indexes by key positions. Behind a lock so `index_on`
    /// can build and cache through `&self` (probes happen mid-join, where
    /// the relation is shared); `Arc` so probers hold the index without
    /// holding the lock.
    secondary: RwLock<FxHashMap<Box<[usize]>, Arc<PosIndex>>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Self {
            arity: self.arity,
            tuples: self.tuples.clone(),
            index: self.index.clone(),
            secondary: RwLock::new(self.secondary.read().expect("index cache lock").clone()),
        }
    }
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            tuples: Vec::new(),
            index: FxHashMap::default(),
            secondary: RwLock::new(FxHashMap::default()),
        }
    }

    /// The arity of the relation.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple length differs from the relation arity.
    pub fn insert(&mut self, tuple: &[ElemId]) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity mismatch: got {}, relation has arity {}",
            tuple.len(),
            self.arity
        );
        if self.index.contains_key(tuple) {
            return false;
        }
        let row = self.tuples.len() as u32;
        let boxed: Box<[ElemId]> = tuple.into();
        self.index.insert(boxed.clone(), row);
        // Keep cached secondary indexes current so they never have to be
        // rebuilt. `make_mut` copies only if a prober still holds the Arc
        // (it then keeps a consistent snapshot of the pre-insert relation).
        for idx in self
            .secondary
            .get_mut()
            .expect("index cache lock")
            .values_mut()
        {
            Arc::make_mut(idx).add(row, &boxed);
        }
        self.tuples.push(boxed);
        true
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, tuple: &[ElemId]) -> bool {
        self.index.contains_key(tuple)
    }

    /// Iterates over tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[ElemId]> {
        self.tuples.iter().map(|t| &t[..])
    }

    /// The tuple stored at `row` (rows come from [`PosIndex::rows`]).
    #[inline]
    pub fn tuple(&self, row: u32) -> &[ElemId] {
        &self.tuples[row as usize]
    }

    /// The secondary index keyed by `positions`, built on first request
    /// and cached (subsequent calls are a lock + hash lookup). Positions
    /// must be distinct and `< arity`.
    ///
    /// # Panics
    /// Panics if a position is out of range or `positions` is empty.
    pub fn index_on(&self, positions: &[usize]) -> Arc<PosIndex> {
        assert!(!positions.is_empty(), "index on zero positions is a scan");
        for &p in positions {
            assert!(
                p < self.arity,
                "index position {p} out of arity {}",
                self.arity
            );
        }
        if let Some(idx) = self
            .secondary
            .read()
            .expect("index cache lock")
            .get(positions)
        {
            return Arc::clone(idx);
        }
        let mut cache = self.secondary.write().expect("index cache lock");
        // Re-check: another prober may have built it between the locks.
        if let Some(idx) = cache.get(positions) {
            return Arc::clone(idx);
        }
        let mut idx = PosIndex {
            positions: positions.into(),
            map: FxHashMap::default(),
        };
        for (row, t) in self.tuples.iter().enumerate() {
            idx.add(row as u32, t);
        }
        let idx = Arc::new(idx);
        cache.insert(positions.into(), Arc::clone(&idx));
        idx
    }

    /// Iterates over the tuples matching `key` on `index`'s positions.
    pub fn matching<'a>(
        &'a self,
        index: &'a PosIndex,
        key: &[ElemId],
    ) -> impl Iterator<Item = &'a [ElemId]> {
        index.rows(key).iter().map(move |&r| self.tuple(r))
    }
}

/// A finite structure 𝒜 over a signature τ.
///
/// The signature is shared (`Arc`) because derived structures — induced
/// substructures, decomposition encodings — reuse it unchanged.
#[derive(Debug, Clone)]
pub struct Structure {
    sig: Arc<Signature>,
    domain: Domain,
    relations: Vec<Relation>,
}

impl Structure {
    /// Creates a structure with the given signature and domain and all
    /// relations empty.
    pub fn new(sig: Arc<Signature>, domain: Domain) -> Self {
        let relations = sig.preds().map(|p| Relation::new(sig.arity(p))).collect();
        Self {
            sig,
            domain,
            relations,
        }
    }

    /// The signature τ.
    #[inline]
    pub fn signature(&self) -> &Arc<Signature> {
        &self.sig
    }

    /// The domain A.
    #[inline]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Mutable access to the domain (used by builders that extend the
    /// universe, e.g. the τ_td encoding which adds tree nodes).
    #[inline]
    pub fn domain_mut(&mut self) -> &mut Domain {
        &mut self.domain
    }

    /// The relation interpreting `pred`.
    #[inline]
    pub fn relation(&self, pred: PredId) -> &Relation {
        &self.relations[pred.index()]
    }

    /// Inserts a ground tuple into `pred`'s relation; returns `true` if new.
    ///
    /// # Panics
    /// Panics on arity mismatch or if any argument is outside the domain.
    pub fn insert(&mut self, pred: PredId, tuple: &[ElemId]) -> bool {
        for &e in tuple {
            assert!(
                self.domain.contains(e),
                "tuple argument {e} outside the domain"
            );
        }
        self.relations[pred.index()].insert(tuple)
    }

    /// Membership test for a ground atom.
    #[inline]
    pub fn holds(&self, pred: PredId, tuple: &[ElemId]) -> bool {
        self.relations[pred.index()].contains(tuple)
    }

    /// Total number of ground atoms (the size of the EDB `E(𝒜)`).
    pub fn atom_count(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// A rough size measure `|𝒜|`: domain size plus total tuple cells.
    /// This is the `|A|` of the paper's complexity bounds.
    pub fn size(&self) -> usize {
        self.domain.len()
            + self
                .relations
                .iter()
                .map(|r| r.len() * r.arity().max(1))
                .sum::<usize>()
    }

    /// Iterates over all ground atoms of the EDB.
    pub fn atoms(&self) -> impl Iterator<Item = GroundAtom> + '_ {
        self.sig.preds().flat_map(move |p| {
            self.relation(p)
                .iter()
                .map(move |t| GroundAtom::new(p, t.to_vec()))
        })
    }

    /// Renders a ground atom using domain and signature names.
    pub fn render_atom(&self, atom: &GroundAtom) -> String {
        let args: Vec<&str> = atom.args.iter().map(|&e| self.domain.name(e)).collect();
        format!("{}({})", self.sig.name(atom.pred), args.join(","))
    }

    /// The substructure of `self` induced by the element set `keep`
    /// (Definition 3.2): the domain is restricted to `keep` and a tuple
    /// survives iff all its arguments lie in `keep`.
    ///
    /// Element ids are preserved — the induced structure shares the parent
    /// domain's id space so distinguished tuples remain valid. `keep` is a
    /// membership predicate over the parent domain.
    pub fn induced(&self, keep: &dyn Fn(ElemId) -> bool) -> InducedStructure<'_> {
        let mut live = vec![false; self.domain.len()];
        for e in self.domain.elems() {
            live[e.index()] = keep(e);
        }
        InducedStructure::new(self, live)
    }

    /// Equality of two argument tuples under Definition 3.4: `(a₀,…,a_w)`
    /// and `(b₀,…,b_w)` are *equivalent* iff every predicate holds on
    /// corresponding index patterns simultaneously in `self` and `other`.
    pub fn bags_equivalent(&self, a: &[ElemId], other: &Structure, b: &[ElemId]) -> bool {
        assert_eq!(a.len(), b.len(), "bags of different length");
        debug_assert_eq!(self.sig.len(), other.sig.len());
        let w1 = a.len();
        let mut pattern = Vec::new();
        for p in self.sig.preds() {
            let arity = self.sig.arity(p);
            if arity > 0 && w1 == 0 {
                continue; // no index patterns over an empty tuple
            }
            // Enumerate all index patterns {0..w}^arity.
            pattern.clear();
            pattern.resize(arity, 0usize);
            loop {
                let ta: Vec<ElemId> = pattern.iter().map(|&i| a[i]).collect();
                let tb: Vec<ElemId> = pattern.iter().map(|&i| b[i]).collect();
                if self.holds(p, &ta) != other.holds(p, &tb) {
                    return false;
                }
                // Next pattern (odometer).
                let mut k = 0;
                loop {
                    if k == arity {
                        break;
                    }
                    pattern[k] += 1;
                    if pattern[k] < w1 {
                        break;
                    }
                    pattern[k] = 0;
                    k += 1;
                }
                if k == arity {
                    break;
                }
            }
        }
        true
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "structure with {} elements:", self.domain.len())?;
        for atom in self.atoms() {
            writeln!(f, "  {}", self.render_atom(&atom))?;
        }
        Ok(())
    }
}

/// A view of a structure restricted to a live subset of its domain
/// (the induced substructure of Definition 3.2, without copying tuples).
#[derive(Debug)]
pub struct InducedStructure<'a> {
    parent: &'a Structure,
    live: Vec<bool>,
}

impl<'a> InducedStructure<'a> {
    fn new(parent: &'a Structure, live: Vec<bool>) -> Self {
        Self { parent, live }
    }

    /// True if `e` survives the restriction.
    #[inline]
    pub fn contains_elem(&self, e: ElemId) -> bool {
        self.live.get(e.index()).copied().unwrap_or(false)
    }

    /// The number of surviving elements.
    pub fn len(&self) -> usize {
        self.live.iter().filter(|&&b| b).count()
    }

    /// True if no elements survive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over surviving elements.
    pub fn elems(&self) -> impl Iterator<Item = ElemId> + '_ {
        self.parent
            .domain()
            .elems()
            .filter(move |&e| self.live[e.index()])
    }

    /// Atom membership in the induced structure: all arguments must be live
    /// and the atom must hold in the parent.
    pub fn holds(&self, pred: PredId, tuple: &[ElemId]) -> bool {
        tuple.iter().all(|&e| self.contains_elem(e)) && self.parent.holds(pred, tuple)
    }

    /// Materializes the view as an owned [`Structure`] over a fresh compact
    /// domain. Returns the structure and the map from parent ids to new ids.
    pub fn materialize(&self) -> (Structure, FxHashMap<ElemId, ElemId>) {
        let mut dom = Domain::new();
        let mut map: FxHashMap<ElemId, ElemId> = FxHashMap::default();
        for e in self.elems() {
            let name = self.parent.domain().name(e).to_owned();
            map.insert(e, dom.insert(name));
        }
        let mut s = Structure::new(Arc::clone(self.parent.signature()), dom);
        for p in self.parent.signature().preds() {
            for t in self.parent.relation(p).iter() {
                if t.iter().all(|&e| self.contains_elem(e)) {
                    let mapped: Vec<ElemId> = t.iter().map(|e| map[e]).collect();
                    s.insert(p, &mapped);
                }
            }
        }
        (s, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_sig() -> Arc<Signature> {
        Arc::new(Signature::from_pairs([("e", 2)]))
    }

    fn triangle() -> (Structure, Vec<ElemId>) {
        let sig = graph_sig();
        let mut dom = Domain::new();
        let v: Vec<ElemId> = ["a", "b", "c"].iter().map(|n| dom.insert(*n)).collect();
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        for (x, y) in [(0, 1), (1, 2), (2, 0)] {
            s.insert(e, &[v[x], v[y]]);
            s.insert(e, &[v[y], v[x]]);
        }
        (s, v)
    }

    #[test]
    fn insert_and_holds() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        assert!(s.holds(e, &[v[0], v[1]]));
        assert!(s.holds(e, &[v[1], v[0]]));
        assert!(!s.holds(e, &[v[0], v[0]]));
        assert_eq!(s.atom_count(), 6);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let (mut s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        assert!(!s.insert(e, &[v[0], v[1]]));
        assert_eq!(s.atom_count(), 6);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let (mut s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        s.insert(e, &[v[0]]);
    }

    #[test]
    fn induced_substructure_drops_crossing_tuples() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let keep = |x: ElemId| x == v[0] || x == v[1];
        let ind = s.induced(&keep);
        assert_eq!(ind.len(), 2);
        assert!(ind.holds(e, &[v[0], v[1]]));
        assert!(!ind.holds(e, &[v[1], v[2]]));
        let (owned, map) = ind.materialize();
        assert_eq!(owned.domain().len(), 2);
        assert_eq!(owned.atom_count(), 2);
        assert!(owned.holds(e, &[map[&v[0]], map[&v[1]]]));
    }

    #[test]
    fn atoms_iterates_everything() {
        let (s, _) = triangle();
        assert_eq!(s.atoms().count(), 6);
        let rendered: Vec<String> = s.atoms().map(|a| s.render_atom(&a)).collect();
        assert!(rendered.contains(&"e(a,b)".to_string()));
    }

    #[test]
    fn bag_equivalence_definition_3_4() {
        // Two structures; bags equivalent iff same atoms on index patterns.
        let (s1, v1) = triangle();
        let (s2, v2) = triangle();
        assert!(s1.bags_equivalent(&[v1[0], v1[1]], &s2, &[v2[1], v2[2]]));
        // Remove one direction of an edge in a copy: no longer equivalent.
        let sig = graph_sig();
        let mut dom = Domain::new();
        let a = dom.insert("a");
        let b = dom.insert("b");
        let mut s3 = Structure::new(sig, dom);
        let e = s3.signature().lookup("e").unwrap();
        s3.insert(e, &[a, b]);
        assert!(!s1.bags_equivalent(&[v1[0], v1[1]], &s3, &[a, b]));
        assert!(!s3.bags_equivalent(&[a, b], &s3, &[b, a]));
    }

    #[test]
    fn size_counts_domain_and_cells() {
        let (s, _) = triangle();
        assert_eq!(s.size(), 3 + 6 * 2);
    }

    #[test]
    fn secondary_index_probes_match_scan() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let rel = s.relation(e);
        let idx = rel.index_on(&[0]);
        for &src in &v {
            let probed: Vec<&[ElemId]> = rel.matching(&idx, &[src]).collect();
            let scanned: Vec<&[ElemId]> = rel.iter().filter(|t| t[0] == src).collect();
            assert_eq!(probed, scanned);
        }
        assert_eq!(idx.rows(&[v[0]]).len(), 2);
        assert_eq!(idx.key_count(), 3);
    }

    #[test]
    fn secondary_index_is_cached_and_maintained_on_insert() {
        let (mut s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let before = s.relation(e).index_on(&[1]);
        // Same positions → same cached index object.
        assert!(Arc::ptr_eq(&before, &s.relation(e).index_on(&[1])));
        // Insert a new tuple: the cached index must see it.
        s.insert(e, &[v[0], v[0]]);
        let after = s.relation(e).index_on(&[1]);
        assert_eq!(after.rows(&[v[0]]).len(), 3);
        let hits: Vec<&[ElemId]> = s.relation(e).matching(&after, &[v[0]]).collect();
        assert!(hits.contains(&&[v[0], v[0]][..]));
        // The pre-insert Arc still held by the caller is a consistent
        // snapshot of the old relation contents.
        assert_eq!(before.rows(&[v[0]]).len(), 2);
    }

    #[test]
    fn multi_position_index() {
        let (s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let idx = s.relation(e).index_on(&[0, 1]);
        assert_eq!(idx.rows(&[v[0], v[1]]).len(), 1);
        assert_eq!(idx.rows(&[v[0], v[0]]).len(), 0);
    }

    #[test]
    fn cloned_relation_keeps_index_cache_consistent() {
        let (mut s, v) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let _ = s.relation(e).index_on(&[0]);
        let cloned = s.clone();
        s.insert(e, &[v[0], v[0]]);
        // The clone is unaffected by the original's insert.
        assert_eq!(cloned.relation(e).index_on(&[0]).rows(&[v[0]]).len(), 2);
        assert_eq!(s.relation(e).index_on(&[0]).rows(&[v[0]]).len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of arity")]
    fn index_position_out_of_range_panics() {
        let (s, _) = triangle();
        let e = s.signature().lookup("e").unwrap();
        let _ = s.relation(e).index_on(&[2]);
    }
}
