//! Relational signatures: named predicate symbols with fixed arities.

use crate::fx::FxHashMap;
use std::fmt;

/// Identifier of a predicate symbol within a [`Signature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

impl PredId {
    /// The index of this predicate inside its signature.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A relational signature τ = {R₁, …, R_K}: an ordered set of predicate
/// symbols, each with a name and an arity.
///
/// Signatures are append-only; predicates are addressed by [`PredId`].
#[derive(Debug, Clone, Default)]
pub struct Signature {
    names: Vec<String>,
    arities: Vec<usize>,
    by_name: FxHashMap<String, PredId>,
}

impl Signature {
    /// Creates an empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a signature from `(name, arity)` pairs.
    ///
    /// # Panics
    /// Panics if a name is declared twice.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let mut sig = Self::new();
        for (name, arity) in pairs {
            sig.declare(name, arity);
        }
        sig
    }

    /// Declares a new predicate symbol, returning its id.
    ///
    /// # Panics
    /// Panics if `name` is already declared (signatures are sets).
    pub fn declare(&mut self, name: impl Into<String>, arity: usize) -> PredId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "predicate `{name}` declared twice"
        );
        let id = PredId(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.arities.push(arity);
        id
    }

    /// Looks a predicate up by name.
    pub fn lookup(&self, name: &str) -> Option<PredId> {
        self.by_name.get(name).copied()
    }

    /// The arity of `pred`.
    #[inline]
    pub fn arity(&self, pred: PredId) -> usize {
        self.arities[pred.index()]
    }

    /// The name of `pred`.
    #[inline]
    pub fn name(&self, pred: PredId) -> &str {
        &self.names[pred.index()]
    }

    /// Number of predicate symbols.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no predicates are declared.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all predicate ids in declaration order.
    pub fn preds(&self) -> impl Iterator<Item = PredId> + '_ {
        (0..self.names.len() as u32).map(PredId)
    }

    /// The maximum arity over all predicates (0 for an empty signature).
    pub fn max_arity(&self) -> usize {
        self.arities.iter().copied().max().unwrap_or(0)
    }

    /// Returns a new signature extending `self` with the τ_td predicates of
    /// the paper (Section 4): `root/1`, `leaf/1`, `child1/2`, `child2/2` and
    /// `bag/(w+2)` for decomposition width `w`.
    ///
    /// Two auxiliary predicates are added beyond the paper's five:
    /// `branch/1` (the node has two children) and `same/2` (the identity
    /// relation on the domain). Both are derivable in linear time during
    /// encoding; the generic rules of Theorem 4.5 need them as guards to
    /// be *executable* datalog — the proof's rule schemas implicitly
    /// assume the node kind (permutation / replacement / branch) is known,
    /// which plain `child1`/`bag` atoms cannot discriminate.
    pub fn extend_td(&self, width: usize) -> Signature {
        self.extend_with([
            ("root".to_owned(), 1),
            ("leaf".to_owned(), 1),
            ("child1".to_owned(), 2),
            ("child2".to_owned(), 2),
            ("bag".to_owned(), width + 2),
            ("branch".to_owned(), 1),
            ("same".to_owned(), 2),
        ])
    }

    /// Returns a new signature extending `self` with the given
    /// `(name, arity)` pairs (existing predicates keep their ids). Used by
    /// the τ_td encoding and by the stratified datalog evaluator, which
    /// materializes lower strata as fresh extensional predicates.
    ///
    /// # Panics
    /// Panics if a name is already declared (signatures are sets).
    pub fn extend_with<I, S>(&self, pairs: I) -> Signature
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let mut sig = self.clone();
        for (name, arity) in pairs {
            sig.declare(name, arity);
        }
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut sig = Signature::new();
        let e = sig.declare("e", 2);
        let v = sig.declare("v", 1);
        assert_eq!(sig.lookup("e"), Some(e));
        assert_eq!(sig.lookup("v"), Some(v));
        assert_eq!(sig.lookup("missing"), None);
        assert_eq!(sig.arity(e), 2);
        assert_eq!(sig.name(v), "v");
        assert_eq!(sig.len(), 2);
        assert_eq!(sig.max_arity(), 2);
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_declaration_panics() {
        let mut sig = Signature::new();
        sig.declare("e", 2);
        sig.declare("e", 2);
    }

    #[test]
    fn from_pairs_preserves_order() {
        let sig = Signature::from_pairs([("fd", 1), ("att", 1), ("lh", 2), ("rh", 2)]);
        assert_eq!(sig.name(PredId(0)), "fd");
        assert_eq!(sig.name(PredId(3)), "rh");
        assert_eq!(sig.preds().count(), 4);
    }

    #[test]
    fn extend_with_appends_fresh_predicates() {
        let sig = Signature::from_pairs([("e", 2)]);
        let ext = sig.extend_with([("reach", 1), ("pair", 2)]);
        assert_eq!(ext.len(), 3);
        assert_eq!(ext.lookup("e"), sig.lookup("e"));
        assert_eq!(ext.arity(ext.lookup("reach").unwrap()), 1);
        assert_eq!(ext.arity(ext.lookup("pair").unwrap()), 2);
        assert_eq!(sig.len(), 1);
    }

    #[test]
    fn extend_td_adds_td_predicates() {
        let sig = Signature::from_pairs([("e", 2)]);
        let td = sig.extend_td(3);
        assert_eq!(td.len(), 8);
        assert_eq!(td.arity(td.lookup("bag").unwrap()), 5);
        assert_eq!(td.arity(td.lookup("child1").unwrap()), 2);
        assert_eq!(td.arity(td.lookup("branch").unwrap()), 1);
        assert_eq!(td.arity(td.lookup("same").unwrap()), 2);
        // Base predicates keep their ids.
        assert_eq!(td.lookup("e"), sig.lookup("e"));
        // The original signature is untouched.
        assert_eq!(sig.len(), 1);
    }
}
