//! A small Fx-style hasher for hot maps keyed by small integers.
//!
//! The workspace avoids external hashing crates; this is the well-known
//! multiply-xor hash used by rustc (`FxHasher`), which is weak against
//! adversarial inputs but very fast for the interned integer ids that key
//! almost every map in this code base. HashDoS is not a concern: all inputs
//! are produced by this library itself.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc multiply-xor hasher.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&2), Some(&"two"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        // Not a strong guarantee, but the hasher must at least separate a
        // contiguous range of small integers (the common key shape here).
        let mut seen = FxHashSet::default();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_incremental_width() {
        // Hashing the same logical data must be deterministic per call path.
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
