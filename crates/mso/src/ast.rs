//! Monadic second-order logic over τ-structures (paper §2.3).
//!
//! Individual variables range over domain elements, set variables over
//! sets of elements. Atoms are predicate atoms `R(x₁, …)`, equalities and
//! memberships `x ∈ X`; `X ⊆ Y` and `X ⊂ Y` are kept as primitives for
//! readability (as in the paper's Example 2.6).

use std::fmt;

/// An individual (first-order) variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndVar(pub u32);

/// A set (monadic second-order) variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetVar(pub u32);

/// An MSO formula over predicate *names* (resolved against a structure's
/// signature at evaluation time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mso {
    /// `R(x₁, …, x_α)`.
    Pred(String, Vec<IndVar>),
    /// `x = y`.
    Eq(IndVar, IndVar),
    /// `x ∈ X`.
    In(IndVar, SetVar),
    /// `X ⊆ Y`.
    Subset(SetVar, SetVar),
    /// `X ⊂ Y` (proper).
    ProperSubset(SetVar, SetVar),
    /// Negation.
    Not(Box<Mso>),
    /// Conjunction.
    And(Box<Mso>, Box<Mso>),
    /// Disjunction.
    Or(Box<Mso>, Box<Mso>),
    /// Implication.
    Implies(Box<Mso>, Box<Mso>),
    /// Biconditional.
    Iff(Box<Mso>, Box<Mso>),
    /// `∃x φ`.
    Exists(IndVar, Box<Mso>),
    /// `∀x φ`.
    Forall(IndVar, Box<Mso>),
    /// `∃X φ`.
    ExistsSet(SetVar, Box<Mso>),
    /// `∀X φ`.
    ForallSet(SetVar, Box<Mso>),
}

impl Mso {
    /// The quantifier depth (individual and set quantifiers both count),
    /// as in §2.3.
    pub fn quantifier_depth(&self) -> usize {
        match self {
            Mso::Pred(..) | Mso::Eq(..) | Mso::In(..) | Mso::Subset(..) | Mso::ProperSubset(..) => {
                0
            }
            Mso::Not(f) => f.quantifier_depth(),
            Mso::And(a, b) | Mso::Or(a, b) | Mso::Implies(a, b) | Mso::Iff(a, b) => {
                a.quantifier_depth().max(b.quantifier_depth())
            }
            Mso::Exists(_, f) | Mso::Forall(_, f) | Mso::ExistsSet(_, f) | Mso::ForallSet(_, f) => {
                1 + f.quantifier_depth()
            }
        }
    }

    /// Free individual variables, in ascending order.
    pub fn free_ind_vars(&self) -> Vec<IndVar> {
        let mut free = Vec::new();
        let mut bound = Vec::new();
        self.walk_ind(&mut bound, &mut free);
        free.sort_unstable();
        free.dedup();
        free
    }

    fn walk_ind(&self, bound: &mut Vec<IndVar>, free: &mut Vec<IndVar>) {
        match self {
            Mso::Pred(_, vars) => {
                for v in vars {
                    if !bound.contains(v) {
                        free.push(*v);
                    }
                }
            }
            Mso::Eq(a, b) => {
                for v in [a, b] {
                    if !bound.contains(v) {
                        free.push(*v);
                    }
                }
            }
            Mso::In(x, _) => {
                if !bound.contains(x) {
                    free.push(*x);
                }
            }
            Mso::Subset(..) | Mso::ProperSubset(..) => {}
            Mso::Not(f) => f.walk_ind(bound, free),
            Mso::And(a, b) | Mso::Or(a, b) | Mso::Implies(a, b) | Mso::Iff(a, b) => {
                a.walk_ind(bound, free);
                b.walk_ind(bound, free);
            }
            Mso::Exists(v, f) | Mso::Forall(v, f) => {
                bound.push(*v);
                f.walk_ind(bound, free);
                bound.pop();
            }
            Mso::ExistsSet(_, f) | Mso::ForallSet(_, f) => f.walk_ind(bound, free),
        }
    }

    /// Free set variables, in ascending order.
    pub fn free_set_vars(&self) -> Vec<SetVar> {
        let mut free = Vec::new();
        let mut bound = Vec::new();
        self.walk_set(&mut bound, &mut free);
        free.sort_unstable();
        free.dedup();
        free
    }

    fn walk_set(&self, bound: &mut Vec<SetVar>, free: &mut Vec<SetVar>) {
        match self {
            Mso::Pred(..) | Mso::Eq(..) => {}
            Mso::In(_, s) => {
                if !bound.contains(s) {
                    free.push(*s);
                }
            }
            Mso::Subset(a, b) | Mso::ProperSubset(a, b) => {
                for s in [a, b] {
                    if !bound.contains(s) {
                        free.push(*s);
                    }
                }
            }
            Mso::Not(f) => f.walk_set(bound, free),
            Mso::And(a, b) | Mso::Or(a, b) | Mso::Implies(a, b) | Mso::Iff(a, b) => {
                a.walk_set(bound, free);
                b.walk_set(bound, free);
            }
            Mso::Exists(_, f) | Mso::Forall(_, f) => f.walk_set(bound, free),
            Mso::ExistsSet(s, f) | Mso::ForallSet(s, f) => {
                bound.push(*s);
                f.walk_set(bound, free);
                bound.pop();
            }
        }
    }

    /// The number of distinct variables (used to size assignment tables):
    /// `(max individual id + 1, max set id + 1)`.
    pub fn var_bounds(&self) -> (usize, usize) {
        let mut ind = 0usize;
        let mut set = 0usize;
        self.visit(&mut |f| match f {
            Mso::Pred(_, vs) => {
                for v in vs {
                    ind = ind.max(v.0 as usize + 1);
                }
            }
            Mso::Eq(a, b) => ind = ind.max(a.0 as usize + 1).max(b.0 as usize + 1),
            Mso::In(x, s) => {
                ind = ind.max(x.0 as usize + 1);
                set = set.max(s.0 as usize + 1);
            }
            Mso::Subset(a, b) | Mso::ProperSubset(a, b) => {
                set = set.max(a.0 as usize + 1).max(b.0 as usize + 1);
            }
            Mso::Exists(v, _) | Mso::Forall(v, _) => ind = ind.max(v.0 as usize + 1),
            Mso::ExistsSet(s, _) | Mso::ForallSet(s, _) => set = set.max(s.0 as usize + 1),
            _ => {}
        });
        (ind, set)
    }

    /// True if the formula mentions set variables or set quantifiers (a
    /// pure first-order formula admits the cheaper FO-type machinery in
    /// the Theorem 4.5 compiler).
    pub fn uses_sets(&self) -> bool {
        let mut found = false;
        self.visit(&mut |f| {
            if matches!(
                f,
                Mso::In(..)
                    | Mso::Subset(..)
                    | Mso::ProperSubset(..)
                    | Mso::ExistsSet(..)
                    | Mso::ForallSet(..)
            ) {
                found = true;
            }
        });
        found
    }

    fn visit(&self, f: &mut impl FnMut(&Mso)) {
        f(self);
        match self {
            Mso::Not(a) => a.visit(f),
            Mso::And(a, b) | Mso::Or(a, b) | Mso::Implies(a, b) | Mso::Iff(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Mso::Exists(_, a) | Mso::Forall(_, a) | Mso::ExistsSet(_, a) | Mso::ForallSet(_, a) => {
                a.visit(f);
            }
            _ => {}
        }
    }
}

// Convenience constructors (builder style).
impl Mso {
    /// `R(vars…)`.
    pub fn pred(name: impl Into<String>, vars: impl Into<Vec<IndVar>>) -> Self {
        Mso::Pred(name.into(), vars.into())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Mso::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: Self) -> Self {
        Mso::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Self) -> Self {
        Mso::Or(Box::new(self), Box::new(other))
    }

    /// Implication.
    pub fn implies(self, other: Self) -> Self {
        Mso::Implies(Box::new(self), Box::new(other))
    }

    /// `∃x φ`.
    pub fn exists(v: IndVar, f: Self) -> Self {
        Mso::Exists(v, Box::new(f))
    }

    /// `∀x φ`.
    pub fn forall(v: IndVar, f: Self) -> Self {
        Mso::Forall(v, Box::new(f))
    }

    /// `∃X φ`.
    pub fn exists_set(v: SetVar, f: Self) -> Self {
        Mso::ExistsSet(v, Box::new(f))
    }

    /// `∀X φ`.
    pub fn forall_set(v: SetVar, f: Self) -> Self {
        Mso::ForallSet(v, Box::new(f))
    }

    /// Conjunction of many formulas (true for an empty list is not
    /// representable; requires at least one conjunct).
    pub fn all(mut fs: Vec<Self>) -> Self {
        let mut acc = fs.pop().expect("at least one conjunct");
        while let Some(f) = fs.pop() {
            acc = f.and(acc);
        }
        acc
    }
}

impl fmt::Display for Mso {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mso::Pred(name, vs) => {
                let args: Vec<String> = vs.iter().map(|v| format!("x{}", v.0)).collect();
                write!(f, "{name}({})", args.join(","))
            }
            Mso::Eq(a, b) => write!(f, "x{} = x{}", a.0, b.0),
            Mso::In(x, s) => write!(f, "x{} in X{}", x.0, s.0),
            Mso::Subset(a, b) => write!(f, "X{} subseteq X{}", a.0, b.0),
            Mso::ProperSubset(a, b) => write!(f, "X{} subset X{}", a.0, b.0),
            Mso::Not(a) => write!(f, "!({a})"),
            Mso::And(a, b) => write!(f, "({a} & {b})"),
            Mso::Or(a, b) => write!(f, "({a} | {b})"),
            Mso::Implies(a, b) => write!(f, "({a} -> {b})"),
            Mso::Iff(a, b) => write!(f, "({a} <-> {b})"),
            Mso::Exists(v, a) => write!(f, "exists x{} ({a})", v.0),
            Mso::Forall(v, a) => write!(f, "forall x{} ({a})", v.0),
            Mso::ExistsSet(s, a) => write!(f, "exists X{} ({a})", s.0),
            Mso::ForallSet(s, a) => write!(f, "forall X{} ({a})", s.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantifier_depth() {
        let x = IndVar(0);
        let y = IndVar(1);
        let s = SetVar(0);
        // ∃X ∀y (y ∈ X ∨ e(x, y)): depth 2.
        let f = Mso::exists_set(
            s,
            Mso::forall(y, Mso::In(y, s).or(Mso::pred("e", vec![x, y]))),
        );
        assert_eq!(f.quantifier_depth(), 2);
    }

    #[test]
    fn free_variables() {
        let x = IndVar(0);
        let y = IndVar(1);
        let f = Mso::exists(y, Mso::pred("e", vec![x, y]));
        assert_eq!(f.free_ind_vars(), vec![x]);
        assert!(f.free_set_vars().is_empty());
        let s = SetVar(3);
        let g = Mso::In(x, s);
        assert_eq!(g.free_set_vars(), vec![s]);
    }

    #[test]
    fn var_bounds() {
        let f = Mso::exists(
            IndVar(4),
            Mso::In(IndVar(4), SetVar(2)).and(Mso::Eq(IndVar(0), IndVar(4))),
        );
        assert_eq!(f.var_bounds(), (5, 3));
    }

    #[test]
    fn display_roundtrip_shape() {
        let f = Mso::exists(IndVar(1), Mso::pred("e", vec![IndVar(0), IndVar(1)]));
        assert_eq!(format!("{f}"), "exists x1 (e(x0,x1))");
    }
}
